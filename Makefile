.PHONY: install test lint lint-ratchet lint-bench bench classify-bench serve-bench telemetry examples all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

lint:
	PYTHONPATH=src python -m repro.lint src tests examples benchmarks scripts

lint-ratchet:
	PYTHONPATH=src python -m repro.lint src tests examples benchmarks scripts \
		--ratchet --baseline lint-baseline.json

lint-bench:
	PYTHONPATH=src:benchmarks python -m pytest benchmarks/bench_lint_flow.py -q -s

bench:
	pytest benchmarks/ --benchmark-only -s

classify-bench:
	PYTHONPATH=src:benchmarks python -m pytest \
		benchmarks/bench_classify_throughput.py -q -s

serve-bench:
	PYTHONPATH=src python -m repro serve-bench --out BENCH_serve.json

telemetry:
	PYTHONPATH=src python -m repro campaign --days 1 --target 60 \
		--train-samples 80 --export-dir telemetry-out
	python scripts/validate_telemetry.py telemetry-out/telemetry.json

examples:
	python examples/quickstart.py
	python examples/evasive_attacks.py
	python examples/browser_extension.py
	python examples/feature_importance.py
	python examples/historical_analysis.py
	python examples/measurement_campaign.py --days 2 --target 150

all: install lint test bench
