"""Comparison detectors for the model-selection experiment (Table 2).

Re-implementations, at simulation scale, of the four models the paper
benchmarked before choosing its base:

* :mod:`repro.baselines.urlnet` — URLNet (Le et al. 2018): character-level
  CNN over the URL string only. Fastest, weakest on FWB data.
* :mod:`repro.baselines.visualphishnet` — VisualPhishNet (Abdelnabi et al.
  2020): visual-similarity matching against a protected-brand gallery.
* :mod:`repro.baselines.phishintention` — PhishIntention (Liu et al. 2022):
  two-phase static + dynamic analysis of the page workflow. Most accurate,
  slowest.
* :mod:`repro.baselines.stackmodel` — the base StackModel (Li et al. 2019)
  on the original 20-feature set, before the paper's FWB augmentation.

All expose the same interface: ``fit_pages(pages, labels)`` and
``predict_page(page) -> int``.
"""

from .stackmodel import BaseStackModelDetector
from .urlnet import URLNetDetector
from .visualphishnet import VisualPhishNetDetector
from .phishintention import PhishIntentionDetector

__all__ = [
    "BaseStackModelDetector",
    "URLNetDetector",
    "VisualPhishNetDetector",
    "PhishIntentionDetector",
]
