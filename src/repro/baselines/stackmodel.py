"""The base StackModel (Li et al. 2019) on the original feature set.

Identical architecture to the paper's final model but trained on the
original 20 features — including the two that are uninformative on FWB data
(https presence, multi-TLD count) and excluding the FWB-specific pair. The
gap between this detector and :class:`repro.core.FreePhishClassifier` is
the paper's feature-augmentation contribution (0.88 → 0.97 accuracy).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.features import BASE_FEATURE_NAMES
from ..core.preprocess import ProcessedPage
from ..errors import NotFittedError
from ..ml import StackModel


class BaseStackModelDetector:
    """Two-layer stacking on the pre-augmentation feature set."""

    feature_names = BASE_FEATURE_NAMES

    def __init__(
        self,
        n_estimators: int = 60,
        n_splits: int = 5,
        random_state: Optional[int] = 7,
    ) -> None:
        self.model = StackModel(
            n_estimators=n_estimators,
            n_splits=n_splits,
            random_state=random_state,
        )
        self._fitted = False

    def fit_pages(
        self, pages: Sequence[ProcessedPage], labels: Sequence[int]
    ) -> "BaseStackModelDetector":
        X = np.vstack([page.base_vector for page in pages])
        self.model.fit(X, np.asarray(labels))
        self._fitted = True
        return self

    def predict_page(self, page: ProcessedPage) -> int:
        if not self._fitted:
            raise NotFittedError("BaseStackModelDetector is not fitted")
        probability = self.model.predict_proba(page.base_vector.reshape(1, -1))[0, 1]
        return int(probability >= 0.5)

    def predict_pages(self, pages: Sequence[ProcessedPage]) -> np.ndarray:
        X = np.vstack([page.base_vector for page in pages])
        return self.model.predict(X)
