"""VisualPhishNet: visual-similarity matching against a brand gallery.

Abdelnabi et al. (2020) train a triplet network so that screenshots of
phishing pages land near their target brand's screenshots in embedding
space. Our substrate renders pages into visual signatures
(:mod:`repro.webdoc.render`), so the detector becomes:

1. **Gallery building** — render a canonical login page for every
   protected brand (the equivalent of the trusted-brand screenshot set).
2. **Matching** — a page is phishing if its signature sits within a learned
   distance of some brand profile while being served from a host that is
   *not* that brand's legitimate domain.
3. **Threshold fitting** — the decision distance is tuned on the training
   set (the lightweight analogue of triplet-loss training).

Builder boilerplate shifts FWB pages' signatures away from the clean brand
profiles, which is why the paper measures only 0.72 recall here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.preprocess import ProcessedPage
from ..errors import NotFittedError
from ..sitegen.brands import Brand, BrandCatalog, default_brand_catalog
from ..sitegen.templates import ContentBlock, PageSpec, TemplateLibrary
from ..webdoc import VisualSignature, render_signature
from ..webdoc.render import region_signatures


def _brand_login_markup(brand: Brand, templates: TemplateLibrary,
                        rng: np.random.Generator) -> str:
    """The brand's canonical (legitimate) login page."""
    spec = PageSpec(
        title=brand.login_title(),
        blocks=[
            ContentBlock("image", text=f"{brand.name} logo", href="/logo.png"),
            ContentBlock("heading", text=brand.name),
            ContentBlock(
                "form",
                text="Sign In",
                fields=["email", "password", *brand.extra_fields],
                href="/login",
            ),
        ],
        primary_color=brand.primary_color,
    )
    return templates.render(None, spec, rng)


class VisualPhishNetDetector:
    """Nearest-brand-profile matcher over visual signatures."""

    def __init__(
        self,
        catalog: Optional[BrandCatalog] = None,
        random_state: Optional[int] = 7,
    ) -> None:
        self.catalog = catalog if catalog is not None else default_brand_catalog()
        self.random_state = random_state
        self._gallery: List[Tuple[str, str, VisualSignature]] = []
        self._benign_refs: List[VisualSignature] = []
        self._phish_refs: List[VisualSignature] = []
        #: Reference-set size: the real model's gallery covers a bounded
        #: set of screenshots; small reference pools keep the matcher's
        #: capacity comparable.
        self.n_references = 25
        self._threshold: Optional[float] = None

    # -- gallery -----------------------------------------------------------------

    def build_gallery(self) -> None:
        """Render one profile signature per protected brand."""
        templates = TemplateLibrary()
        rng = np.random.default_rng(self.random_state)
        self._gallery = []
        for brand in self.catalog:
            markup = _brand_login_markup(brand, templates, rng)
            self._gallery.append(
                (brand.slug, brand.legitimate_domain, render_signature(markup))
            )

    def _nearest_brand(self, signature: VisualSignature) -> Tuple[str, str, float]:
        """(brand_slug, legit_domain, distance) of the closest profile."""
        best = ("", "", np.inf)
        for slug, domain, profile in self._gallery:
            distance = signature.distance(profile)
            if distance < best[2]:
                best = (slug, domain, distance)
        return best

    # -- training (threshold fitting) ----------------------------------------------

    def _margin(self, signature: VisualSignature) -> float:
        """Triplet-style margin: distance-to-benign minus distance-to-brand.

        Positive = the page looks more like the brand side of the training
        embedding (gallery screenshots plus known phishing exemplars) than
        like the benign reference set.
        """
        _slug, _domain, brand_distance = self._nearest_brand(signature)
        if self._phish_refs:
            brand_distance = min(
                brand_distance,
                min(signature.distance(ref) for ref in self._phish_refs),
            )
        if not self._benign_refs:
            return -brand_distance
        benign_distance = min(
            signature.distance(reference) for reference in self._benign_refs
        )
        return benign_distance - brand_distance

    def fit_pages(
        self, pages: Sequence[ProcessedPage], labels: Sequence[int]
    ) -> "VisualPhishNetDetector":
        if not self._gallery:
            self.build_gallery()
        labels = np.asarray(labels)
        rng = np.random.default_rng(self.random_state)
        # Benign reference screenshots, the triplet negatives.
        benign_indices = np.flatnonzero(labels == 0)
        if benign_indices.size:
            chosen = rng.choice(
                benign_indices,
                size=min(self.n_references, benign_indices.size),
                replace=False,
            )
            self._benign_refs = [pages[int(i)].snapshot.signature for i in chosen]
        phish_indices = np.flatnonzero(labels == 1)
        if phish_indices.size:
            chosen = rng.choice(
                phish_indices,
                size=min(self.n_references, phish_indices.size),
                replace=False,
            )
            self._phish_refs = [pages[int(i)].snapshot.signature for i in chosen]
        margins = np.array([self.page_margin(page) for page in pages])
        # Pick the margin threshold maximizing training accuracy.
        candidates = np.unique(np.quantile(margins, np.linspace(0.02, 0.98, 49)))
        best_threshold, best_accuracy = float(np.median(margins)), -1.0
        for candidate in candidates:
            predictions = (margins >= candidate).astype(np.int64)
            accuracy = float(np.mean(predictions == labels))
            if accuracy > best_accuracy:
                best_accuracy, best_threshold = accuracy, float(candidate)
        self._threshold = best_threshold
        return self

    # -- prediction -------------------------------------------------------------------

    def page_margin(self, page: ProcessedPage) -> float:
        """Best margin over the full page and its salient regions.

        Multi-region matching: the embedding network scans the whole
        screenshot plus salient crops; this scan dominates inference cost,
        as in the original model.
        """
        margins = [self._margin(page.snapshot.signature)]
        for region in region_signatures(page.snapshot.document, max_regions=12):
            margins.append(self._margin(region))
        return max(margins)

    def predict_page(self, page: ProcessedPage) -> int:
        if self._threshold is None:
            raise NotFittedError("VisualPhishNetDetector is not fitted")
        if self.page_margin(page) < self._threshold:
            return 0
        # Visually inside a protected brand's neighbourhood: phishing unless
        # actually served from the brand's own domain.
        _slug, legit_domain, _distance = self._nearest_brand(page.snapshot.signature)
        legit_core = legit_domain.split(".")[0]
        if legit_core and legit_core in page.url.registered_domain:
            return 0
        return 1

    def predict_pages(self, pages: Sequence[ProcessedPage]) -> np.ndarray:
        return np.asarray([self.predict_page(p) for p in pages], dtype=np.int64)
