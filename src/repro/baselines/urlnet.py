"""URLNet: character-level convolutional network over raw URL strings.

Le et al. (2018) learn a URL representation with character- and word-level
CNNs. This is a compact numpy re-implementation of the character branch:

* learned character embeddings over a fixed alphabet;
* a bank of 1-D convolution filters (width 3) with ReLU;
* global max pooling per filter;
* a logistic output layer;
* trained end-to-end with mini-batch SGD and backpropagation.

Because it never sees page content, it is structurally blind to everything
that distinguishes FWB phishing (same host as benign sites, often gibberish
subdomains) — the paper measures it at 0.68 accuracy on the FWB ground
truth, the weakest of the four candidates, though also the fastest.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.preprocess import ProcessedPage
from ..errors import NotFittedError, TrainingError

_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789./:-_?=&%@~"
_CHAR_INDEX = {ch: i + 1 for i, ch in enumerate(_ALPHABET)}  # 0 = pad/unk
VOCAB_SIZE = len(_ALPHABET) + 1


def encode_url(text: str, max_len: int) -> np.ndarray:
    """Map a URL string to a fixed-length index sequence."""
    indices = np.zeros(max_len, dtype=np.int64)
    for position, ch in enumerate(text.lower()[:max_len]):
        indices[position] = _CHAR_INDEX.get(ch, 0)
    return indices


class URLNetDetector:
    """Character-CNN URL classifier trained with SGD."""

    def __init__(
        self,
        max_len: int = 80,
        embed_dim: int = 12,
        n_filters: int = 24,
        filter_width: int = 3,
        epochs: int = 18,
        batch_size: int = 32,
        learning_rate: float = 0.1,
        random_state: Optional[int] = 7,
    ) -> None:
        self.max_len = max_len
        self.embed_dim = embed_dim
        self.n_filters = n_filters
        self.filter_width = filter_width
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.random_state = random_state
        self._fitted = False
        # Parameters, initialized at fit time.
        self.embeddings: Optional[np.ndarray] = None   # (vocab, embed)
        self.filters: Optional[np.ndarray] = None      # (n_filters, width, embed)
        self.filter_bias: Optional[np.ndarray] = None  # (n_filters,)
        self.out_weights: Optional[np.ndarray] = None  # (n_filters,)
        self.out_bias: float = 0.0

    # -- forward/backward ----------------------------------------------------

    def _forward(self, batch_indices: np.ndarray):
        """Forward pass; returns intermediates needed by backprop."""
        embedded = self.embeddings[batch_indices]  # (B, L, E)
        B, L, E = embedded.shape
        W = self.filter_width
        n_windows = L - W + 1
        # (B, n_windows, W*E) sliding windows.
        windows = np.stack(
            [embedded[:, i : i + W, :].reshape(B, -1) for i in range(n_windows)],
            axis=1,
        )
        flat_filters = self.filters.reshape(self.n_filters, -1)  # (F, W*E)
        conv = windows @ flat_filters.T + self.filter_bias  # (B, n_windows, F)
        relu = np.maximum(conv, 0.0)
        pooled = relu.max(axis=1)  # (B, F)
        argmax = relu.argmax(axis=1)  # (B, F) winning window per filter
        logits = pooled @ self.out_weights + self.out_bias  # (B,)
        probabilities = 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))
        return embedded, windows, conv, pooled, argmax, probabilities

    def _backward(
        self, batch_indices, labels, embedded, windows, conv, pooled, argmax, probs
    ) -> None:
        B = labels.shape[0]
        lr = self.learning_rate
        d_logits = (probs - labels) / B  # (B,)

        grad_out_w = pooled.T @ d_logits
        grad_out_b = d_logits.sum()
        d_pooled = np.outer(d_logits, self.out_weights)  # (B, F)

        flat_filters = self.filters.reshape(self.n_filters, -1)
        grad_filters = np.zeros_like(flat_filters)
        grad_filter_bias = np.zeros_like(self.filter_bias)
        grad_embedded = np.zeros_like(embedded)
        W = self.filter_width

        batch_rows = np.arange(B)
        for f in range(self.n_filters):
            win = argmax[:, f]                        # (B,)
            active = conv[batch_rows, win, f] > 0     # ReLU gate
            coeff = d_pooled[:, f] * active           # (B,)
            selected = windows[batch_rows, win, :]    # (B, W*E)
            grad_filters[f] = coeff @ selected
            grad_filter_bias[f] = coeff.sum()
            # Route gradients back into the winning windows' embeddings.
            contribution = np.outer(coeff, flat_filters[f]).reshape(B, W, -1)
            for b in range(B):
                if coeff[b] != 0.0:
                    grad_embedded[b, win[b] : win[b] + W, :] += contribution[b]

        # Embedding-table scatter-add.
        np.add.at(
            self.embeddings,
            batch_indices.reshape(-1),
            grad_embedded.reshape(-1, self.embed_dim) * -lr,
        )
        self.filters -= lr * grad_filters.reshape(self.filters.shape)
        self.filter_bias -= lr * grad_filter_bias
        self.out_weights -= lr * grad_out_w
        self.out_bias -= lr * grad_out_b

    # -- API --------------------------------------------------------------------

    def fit_urls(self, urls: Sequence[str], labels: Sequence[int]) -> "URLNetDetector":
        labels = np.asarray(labels, dtype=np.float64)
        if len(urls) != labels.shape[0]:
            raise TrainingError("urls/labels length mismatch")
        rng = np.random.default_rng(self.random_state)
        self.embeddings = rng.normal(0, 0.1, size=(VOCAB_SIZE, self.embed_dim))
        self.embeddings[0] = 0.0
        self.filters = rng.normal(
            0, 0.1, size=(self.n_filters, self.filter_width, self.embed_dim)
        )
        self.filter_bias = np.zeros(self.n_filters)
        self.out_weights = rng.normal(0, 0.1, size=self.n_filters)
        self.out_bias = 0.0

        encoded = np.stack([encode_url(u, self.max_len) for u in urls])
        n = encoded.shape[0]
        for _epoch in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                outs = self._forward(encoded[batch])
                self._backward(encoded[batch], labels[batch], *outs)
        self._fitted = True
        return self

    def fit_pages(
        self, pages: Sequence[ProcessedPage], labels: Sequence[int]
    ) -> "URLNetDetector":
        return self.fit_urls([str(p.url) for p in pages], labels)

    def predict_proba_urls(self, urls: Sequence[str]) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("URLNetDetector is not fitted")
        encoded = np.stack([encode_url(u, self.max_len) for u in urls])
        return self._forward(encoded)[-1]

    def predict_page(self, page: ProcessedPage) -> int:
        return int(self.predict_proba_urls([str(page.url)])[0] >= 0.5)

    def predict_pages(self, pages: Sequence[ProcessedPage]) -> np.ndarray:
        return (
            self.predict_proba_urls([str(p.url) for p in pages]) >= 0.5
        ).astype(np.int64)
