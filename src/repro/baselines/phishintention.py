"""PhishIntention: static + dynamic two-phase intention analysis.

Liu et al. (2022) combine (1) visual brand identification with (2) a
*credential-requiring-interface* check that, crucially, follows the page's
interaction workflow — clicking through call-to-action buttons and
resolving embedded frames. That dynamic phase is why the paper measures it
at the highest recall (0.94) of the candidate models — it is the only one
that sees through two-step and iframe evasion — and also why it is the
slowest (11.3 s median per URL).

Our re-implementation mirrors both phases over the simulated browser:

* **Phase 1 (static)**: nearest-brand visual match + brand tokens in the
  page heading/title.
* **Phase 2 (dynamic)**: credential interface on the page itself, inside
  resolved iframes, or on any page reached via
  :meth:`~repro.simnet.browser.Browser.follow_workflow`; drive-by download
  payloads also count as malicious intention.

A page is flagged only when both brand intent and a credential/payload
interface are found — the design that gives PhishIntention its precision.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.preprocess import ProcessedPage
from ..errors import NotFittedError
from ..simnet.browser import Browser
from ..sitegen.brands import BrandCatalog, default_brand_catalog
from ..webdoc import parse_html
from .visualphishnet import VisualPhishNetDetector


class PhishIntentionDetector:
    """Two-phase brand-intention + credential-interface analyzer."""

    def __init__(
        self,
        browser: Browser,
        catalog: Optional[BrandCatalog] = None,
        random_state: Optional[int] = 7,
        max_hops: int = 3,
    ) -> None:
        self.browser = browser
        self.catalog = catalog if catalog is not None else default_brand_catalog()
        self.max_hops = max_hops
        #: Reuse VisualPhishNet's gallery machinery for phase 1.
        self._visual = VisualPhishNetDetector(
            catalog=self.catalog, random_state=random_state
        )
        self._brand_tokens = [
            (token, brand.legitimate_domain)
            for brand in self.catalog
            for token in brand.tokens()
            if len(token) >= 4
        ]
        self._visual_threshold: Optional[float] = None

    # -- phase 1: brand intention ---------------------------------------------------

    def _brand_intent(self, page: ProcessedPage) -> bool:
        document = page.snapshot.document
        # Title, headings, and logo identification (the real system's OCR/
        # logo-matcher analogue: image alt text names the depicted brand).
        text = (
            document.title
            + " "
            + " ".join(h.text_content() for h in document.find_all("h1"))
            + " "
            + " ".join(img.get("alt") for img in document.find_all("img"))
        ).lower()
        for token, legit_domain in self._brand_tokens:
            if token in text:
                legit_core = legit_domain.split(".")[0]
                if legit_core not in page.url.registered_domain:
                    return True
        # Visual fallback: logo/region detection. The real system runs an
        # object detector over the screenshot and a siamese matcher per
        # detected region against every protected logo — reproduced here as
        # a full region scan against the gallery (its dominant cost), with
        # a threshold much stricter than whole-page similarity.
        if self._visual_threshold is not None and self._visual._gallery:
            from ..webdoc.render import region_signatures

            candidates = [page.snapshot.signature]
            candidates += region_signatures(
                page.snapshot.document, max_regions=40, min_subtree_size=1
            )
            for signature in candidates:
                slug, legit_domain, distance = self._visual._nearest_brand(signature)
                if distance <= 0.55 * self._visual_threshold:
                    legit_core = legit_domain.split(".")[0]
                    if legit_core and legit_core not in page.url.registered_domain:
                        return True
        return False

    # -- phase 2: credential-requiring interface (dynamic) ---------------------------

    @staticmethod
    def _has_credential_interface(markup: str) -> bool:
        if not markup:
            return False
        document = parse_html(markup)
        return bool(document.password_inputs()) or len(document.credential_inputs()) >= 2

    def _credential_interface(self, page: ProcessedPage, now: int) -> bool:
        snapshot = page.snapshot
        if self._has_credential_interface(snapshot.markup):
            return True
        # Client-side rendered frames: PhishIntention's CRP-transition check.
        for _src, framed_markup in snapshot.iframe_contents:
            if self._has_credential_interface(framed_markup):
                return True
        if snapshot.downloads and any(a.malicious for a in snapshot.downloads):
            return True
        # Dynamic analysis: click through the primary call-to-action chain.
        chain = self.browser.follow_workflow(page.url, now, max_hops=self.max_hops)
        for hop in chain[1:]:
            if self._has_credential_interface(hop.markup):
                return True
            if hop.downloads and any(a.malicious for a in hop.downloads):
                return True
        return False

    # -- API ------------------------------------------------------------------------

    def fit_pages(
        self, pages: Sequence[ProcessedPage], labels: Sequence[int]
    ) -> "PhishIntentionDetector":
        """Fit the phase-1 visual threshold (phase 2 is rule-based)."""
        self._visual.build_gallery()
        self._visual.fit_pages(pages, labels)
        self._visual_threshold = self._visual._threshold
        return self

    def predict_page(self, page: ProcessedPage, now: Optional[int] = None) -> int:
        if self._visual_threshold is None:
            raise NotFittedError("PhishIntentionDetector is not fitted")
        moment = page.snapshot.fetched_at if now is None else now
        if not self._brand_intent(page):
            return 0
        return int(self._credential_interface(page, moment))

    def predict_pages(self, pages: Sequence[ProcessedPage]) -> np.ndarray:
        return np.asarray([self.predict_page(p) for p in pages], dtype=np.int64)
