"""Exception hierarchy for the FreePhish reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Submodules raise the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigError(ReproError):
    """Invalid simulation or model configuration."""


class URLError(ReproError):
    """A URL string could not be parsed or is structurally invalid."""


class DNSError(ReproError):
    """Domain resolution or registration failure in the simulated DNS."""


class DomainTakenError(DNSError):
    """Attempted to register a domain or subdomain that already exists."""


class UnknownDomainError(DNSError):
    """Lookup of a domain that was never registered."""


class CertificateError(ReproError):
    """Certificate issuance or validation failure."""


class FetchError(ReproError):
    """The simulated browser could not fetch a resource."""


class SiteRemovedError(FetchError):
    """The requested website has been taken down by its host."""


class ParseError(ReproError):
    """Malformed HTML that the tolerant parser still could not handle."""


class NotFittedError(ReproError):
    """A model was used for prediction before being trained."""


class TrainingError(ReproError):
    """Model training failed (degenerate labels, bad shapes, ...)."""


class FeatureError(ReproError):
    """Feature extraction received an unsupported input."""


class StreamError(ReproError):
    """The social-media streaming interface was misused."""


class ReportingError(ReproError):
    """A phishing report could not be filed."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ObservabilityError(ReproError):
    """Misuse of the metrics/tracing/event instrumentation layer."""
