"""Shared serve-benchmark runner behind ``repro serve-bench`` and
``benchmarks/bench_serve_throughput.py``.

The benchmark answers the serving subsystem's headline questions with one
world and one replayed workload:

* how much faster is the batched + cached request path than the naive
  per-navigation ``process`` + ``classify_page`` loop the extension used
  to run (the ≥ 3× acceptance bar);
* where do verdicts come from (per-tier cache hit rates, feed, model,
  degraded fast path);
* what does overload do (degraded-mode fraction, queue depth).

Wall-clock numbers come from :func:`repro.obs.tracing.wall_clock` — the
library's one sanctioned real-time reader — and only shape the benchmark
payload, never verdicts. Run with ``mode="sim"`` and the payload's
``telemetry`` is a pure function of the seed.
"""

from __future__ import annotations

from typing import List, Tuple

from ..config import SeedBank
from ..core.classifier import FreePhishClassifier
from ..core.preprocess import Preprocessor
from ..ml import RandomForestClassifier
from ..obs.instrument import Instrumentation
from ..obs.tracing import wall_clock
from ..sim.groundtruth import build_ground_truth
from ..simnet.url import URL
from ..simnet.web import Web
from .admission import FastPathModel
from .service import ServedFrom, VerdictService
from .workload import NavigationWorkload

#: Payload schema identifier for ``BENCH_serve.json``.
BENCH_SCHEMA = "repro.serve/bench.v1"


def _build_serving_world(
    seed: int, n_sites_per_class: int
) -> Tuple[Web, List[URL], SeedBank, FastPathModel, FreePhishClassifier]:
    """Ground-truth world + trained full and fast-path models."""
    seeds = SeedBank(seed)
    dataset = build_ground_truth(
        n_per_class=n_sites_per_class, seed=seeds.child_seed("serve.groundtruth")
    )
    classifier = FreePhishClassifier(
        model=RandomForestClassifier(
            n_estimators=30, random_state=seeds.child_seed("serve.model")
        )
    )
    classifier.fit_pages(dataset.pages, dataset.labels)
    fast_path = FastPathModel().fit_urls(
        [page.url for page in dataset.pages], dataset.labels
    )
    population = [page.url for page in dataset.pages]
    return dataset.web, population, seeds, fast_path, classifier


def run_serve_bench(
    seed: int = 20231024,
    n_sites_per_class: int = 60,
    n_minutes: int = 120,
    requests_per_minute: float = 60.0,
    zipf_exponent: float = 1.1,
    diurnal_amplitude: float = 0.6,
    max_batch_size: int = 32,
    max_wait_minutes: int = 2,
    max_queue_depth: int = 256,
    max_batches_per_tick: int = 4,
    baseline_requests: int = 200,
    mode: str = "wall",
    include_telemetry: bool = False,
) -> dict:
    """Replay one seeded workload through the serving stack; report.

    ``mode="wall"`` (the default) profiles real seconds for the
    throughput/latency numbers. ``mode="sim"`` skips wall timing entirely
    so the returned telemetry is byte-reproducible across same-seed runs
    (the determinism tests use this).
    """
    web, population, seeds, fast_path, classifier = _build_serving_world(
        seed, n_sites_per_class
    )
    workload = NavigationWorkload(
        population,
        seeds,
        zipf_exponent=zipf_exponent,
        requests_per_minute=requests_per_minute,
        diurnal_amplitude=diurnal_amplitude,
    )
    stream = list(workload.iter_minutes(0, n_minutes))
    n_requests = sum(len(requests) for _minute, requests in stream)
    clock = wall_clock()  # reprolint: disable=RP105 — the serve bench measures real latency; verdicts stay seed-pure

    # -- baseline: the pre-serve extension hot path, one URL at a time ------
    flat = [url for _minute, requests in stream for url in requests]
    baseline_sample = flat[: min(baseline_requests, len(flat))]
    baseline_pre = Preprocessor(web)
    baseline_start = clock()
    for url in baseline_sample:
        page = baseline_pre.process(url, 0, keep=False)
        if page is not None:
            classifier.classify_page(page)
    baseline_elapsed = clock() - baseline_start
    baseline_rps = (
        len(baseline_sample) / baseline_elapsed if baseline_elapsed > 0 else 0.0
    )

    # -- served: batched + cached + admission-controlled --------------------
    instrumentation = (
        Instrumentation.profiling() if mode == "wall" else Instrumentation(mode=mode)
    )
    service = VerdictService(
        web,
        classifier,
        fast_path=fast_path,
        max_batch_size=max_batch_size,
        max_wait_minutes=max_wait_minutes,
        max_queue_depth=max_queue_depth,
        max_batches_per_tick=max_batches_per_tick,
        instrumentation=instrumentation,
    )
    n_immediate = n_degraded = n_blocked = 0
    served_start = clock()
    for minute, requests in stream:
        instrumentation.set_time(minute)
        for url in requests:
            verdict = service.submit(url, minute)
            if verdict is not None:
                n_immediate += 1
                n_blocked += int(verdict.blocked)
        for verdict in service.pump(minute):
            n_degraded += int(verdict.degraded)
            n_blocked += int(verdict.blocked)
    for verdict in service.drain(n_minutes):
        n_degraded += int(verdict.degraded)
        n_blocked += int(verdict.blocked)
    served_elapsed = clock() - served_start
    served_rps = n_requests / served_elapsed if served_elapsed > 0 else 0.0

    counters = instrumentation.metrics.snapshot()["counters"]
    hits = {
        tier: counters.get(f"serve.cache.hit.{tier}", 0)
        for tier in ("exact", "domain", "negative")
    }
    n_lookups = sum(hits.values()) + counters.get("serve.cache.miss", 0)
    latency = instrumentation.metrics.histogram(
        "serve.request.wall_seconds"
    ).snapshot()
    batch_sizes = instrumentation.metrics.histogram("serve.batch.size").snapshot()
    sim_latency = instrumentation.metrics.histogram(
        "serve.latency_minutes"
    ).snapshot()
    preprocess_hits = counters.get("preprocess.cache.hit", 0)
    preprocess_misses = counters.get("preprocess.cache.miss", 0)
    preprocess_lookups = preprocess_hits + preprocess_misses

    payload = {
        "schema": BENCH_SCHEMA,
        "config": {
            "seed": seed,
            "mode": mode,
            "n_sites_per_class": n_sites_per_class,
            "n_minutes": n_minutes,
            "requests_per_minute": requests_per_minute,
            "zipf_exponent": zipf_exponent,
            "diurnal_amplitude": diurnal_amplitude,
            "max_batch_size": max_batch_size,
            "max_wait_minutes": max_wait_minutes,
            "max_queue_depth": max_queue_depth,
            "max_batches_per_tick": max_batches_per_tick,
        },
        "workload": {
            "n_requests": n_requests,
            "n_unique_urls": len(population),
        },
        "baseline": {
            "n_requests": len(baseline_sample),
            "elapsed_seconds": baseline_elapsed,
            "requests_per_second": baseline_rps,
        },
        "served": {
            "n_requests": n_requests,
            "elapsed_seconds": served_elapsed,
            "requests_per_second": served_rps,
            "n_blocked": n_blocked,
            "latency_wall_seconds": {
                "p50": latency["p50"],
                "p99": latency["p99"],
            },
            "latency_sim_minutes": {
                "p50": sim_latency["p50"],
                "p99": sim_latency["p99"],
            },
        },
        "cache": {
            "lookups": n_lookups,
            "hit_rate": {
                tier: (count / n_lookups if n_lookups else 0.0)
                for tier, count in hits.items()
            },
            "stale_allow": counters.get("serve.cache.stale_allow", 0),
            "stale_block": counters.get("serve.cache.stale_block", 0),
        },
        "admission": {
            "admitted": counters.get("serve.admission.admitted", 0),
            "degraded": counters.get("serve.admission.degraded", 0),
            "degraded_fraction": (
                n_degraded / n_requests if n_requests else 0.0
            ),
        },
        "batching": {
            "flushes": counters.get("serve.batch.flushes", 0),
            "dedup_saved": counters.get("serve.batch.dedup_saved", 0),
            "mean_batch_size": (
                batch_sizes["sum"] / batch_sizes["count"]
                if batch_sizes["count"]
                else 0.0
            ),
        },
        "feature_cache": {
            "hits": preprocess_hits,
            "misses": preprocess_misses,
            "evicted": counters.get("preprocess.cache.evicted", 0),
            "hit_rate": (
                preprocess_hits / preprocess_lookups
                if preprocess_lookups
                else 0.0
            ),
            "extractor_hits": counters.get("features.cache.hit", 0),
            "extractor_misses": counters.get("features.cache.miss", 0),
        },
        "speedup_vs_single_url": (
            served_rps / baseline_rps if baseline_rps > 0 else 0.0
        ),
    }
    if include_telemetry:
        payload["telemetry"] = instrumentation.telemetry(include_events=False)
    return payload


def smoke_parameters() -> dict:
    """Small-but-representative settings for the CI smoke run."""
    return {
        "n_sites_per_class": 24,
        "n_minutes": 45,
        "requests_per_minute": 40.0,
        "max_queue_depth": 48,
        "max_batches_per_tick": 2,
        "baseline_requests": 60,
    }
