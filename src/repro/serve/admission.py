"""Admission control: bounded queueing with graceful degradation.

The serving layer bounds how much work it will queue for the full
snapshot + StackModel path. When the backlog exceeds
``max_queue_depth`` the service does **not** drop requests (a dropped
verdict is an unprotected navigation) and does not return errors; it
*sheds load by degrading fidelity*: overflow requests are answered by
:class:`FastPathModel`, a URL-features-only random forest that needs no
page fetch. Degraded verdicts are recorded distinctly
(``serve.admission.degraded`` and the ``model_degraded`` serve tag) so an
operator — and the benchmark report — can see exactly what fraction of
traffic got the cheaper answer.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional, Sequence

import numpy as np

from ..core.extension import NavigationVerdict
from ..core.features import URL_FEATURE_NAMES, FeatureExtractor
from ..errors import ConfigError
from ..ml import RandomForestClassifier
from ..obs.instrument import NULL_INSTRUMENTATION, Instrumentation
from ..simnet.url import URL


class AdmissionDecision(str, Enum):
    #: Queue the request for the full batched snapshot + StackModel path.
    ADMIT = "admit"
    #: Backlog full: answer from the URL-only fast path instead.
    DEGRADE = "degrade"


class AdmissionController:
    """Backpressure policy over the batcher's queue depth."""

    def __init__(
        self,
        max_queue_depth: int = 256,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        if max_queue_depth <= 0:
            raise ConfigError("max_queue_depth must be positive")
        self.max_queue_depth = max_queue_depth
        instr = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        self._c_admitted = instr.counter("serve.admission.admitted")
        self._c_degraded = instr.counter("serve.admission.degraded")
        self._g_depth = instr.gauge("serve.queue.depth")

    def admit(self, queue_depth: int) -> AdmissionDecision:
        """Decide the path for one arriving request given current backlog."""
        self._g_depth.set(queue_depth)
        if queue_depth >= self.max_queue_depth:
            self._c_degraded.inc()
            return AdmissionDecision.DEGRADE
        self._c_admitted.inc()
        return AdmissionDecision.ADMIT


class FastPathModel:
    """URL-features-only classifier for degraded-mode verdicts.

    Scores requests on :data:`~repro.core.features.URL_FEATURE_NAMES` — the
    eight features computable from the URL string alone — so it needs no
    page snapshot and costs microseconds per request. Until :meth:`fit_urls`
    has been called the fast path **fails open** (``ALLOWED``): a guess from
    an unfitted model would block legitimate traffic under exactly the load
    conditions where users are least able to reach support.
    """

    feature_names = URL_FEATURE_NAMES

    def __init__(
        self,
        extractor: Optional[FeatureExtractor] = None,
        n_estimators: int = 20,
        max_depth: int = 8,
        random_state: int = 13,
        threshold: float = 0.5,
        model=None,
    ) -> None:
        self.extractor = extractor if extractor is not None else FeatureExtractor()
        self.model = model if model is not None else RandomForestClassifier(
            n_estimators=n_estimators,
            max_depth=max_depth,
            random_state=random_state,
        )
        self.threshold = threshold
        self._fitted = False

    @property
    def fitted(self) -> bool:
        return self._fitted

    def _matrix(self, urls: Sequence[URL]) -> np.ndarray:
        return np.vstack(
            [
                self.extractor.extract_url_only(url).vector(self.feature_names)
                for url in urls
            ]
        )

    def fit_urls(self, urls: Sequence[URL], labels: Sequence[int]) -> "FastPathModel":
        """Train on labelled URLs (e.g. the campaign's ground-truth corpus)."""
        self.model.fit(self._matrix(urls), np.asarray(labels))
        self._fitted = True
        return self

    def verdicts(self, urls: Sequence[URL]) -> List[NavigationVerdict]:
        """Batch-score URLs; fail-open ``ALLOWED`` when unfitted."""
        if not urls:
            return []
        if not self._fitted:
            return [NavigationVerdict.ALLOWED for _ in urls]
        probabilities = self.model.predict_proba(self._matrix(urls))[:, 1]
        return [
            NavigationVerdict.BLOCKED_CLASSIFIER
            if probability >= self.threshold
            else NavigationVerdict.ALLOWED
            for probability in probabilities
        ]
