"""Sim-clock request micro-batching for the serving layer.

Single-URL serving pays the full snapshot + ``classify_page`` cost per
request. The :class:`MicroBatcher` instead accumulates requests within a
simulated tick and flushes when either trigger fires:

* the batch reaches ``max_batch_size``, or
* the oldest pending request has waited ``max_wait_minutes`` of *simulated*
  time (the latency deadline).

A flush runs the whole batch through
:meth:`~repro.core.preprocess.Preprocessor.process_batch_report`, stacks
one :meth:`~repro.core.preprocess.Preprocessor.feature_matrix`, and makes a
**single** ``predict_proba`` call — duplicate URLs in a batch are scored
once and fanned back out to every waiting request.

Determinism: flush order is a pure function of arrival order and batch
configuration. The batcher never reads the wall clock for control flow
(reprolint RP101); real seconds are *measured* only when the attached
instrumentation is in ``"wall"`` (profiling) mode, and even then they only
shape benchmark output, never verdicts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from ..core.classifier import FreePhishClassifier
from ..core.extension import NavigationVerdict
from ..core.preprocess import Preprocessor
from ..errors import ConfigError
from ..obs.instrument import NULL_INSTRUMENTATION, Instrumentation
from ..obs.tracing import wall_clock
from ..simnet.url import URL
from .cache import cache_key


@dataclass(frozen=True)
class PendingRequest:
    """One request waiting in the batcher."""

    url: URL
    key: str
    enqueued_at: int


@dataclass(frozen=True)
class BatchVerdict:
    """The scored outcome for one pending request."""

    url: URL
    key: str
    verdict: NavigationVerdict
    #: Model probability; ``None`` for unreachable pages.
    probability: Optional[float]
    #: Simulated minutes the request waited in the batcher.
    queued_minutes: int


class MicroBatcher:
    """Accumulates verdict requests and scores them in one model call."""

    def __init__(
        self,
        preprocessor: Preprocessor,
        classifier: FreePhishClassifier,
        max_batch_size: int = 32,
        max_wait_minutes: int = 2,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        if max_batch_size <= 0:
            raise ConfigError("max_batch_size must be positive")
        if max_wait_minutes < 0:
            raise ConfigError("max_wait_minutes must be >= 0")
        self.preprocessor = preprocessor
        self.classifier = classifier
        self.max_batch_size = max_batch_size
        self.max_wait_minutes = max_wait_minutes
        self._instr = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        self._queue: Deque[PendingRequest] = deque()
        self._h_batch_size = self._instr.histogram("serve.batch.size")
        self._c_flushes = self._instr.counter("serve.batch.flushes")
        self._c_dedup = self._instr.counter("serve.batch.dedup_saved")
        # Real seconds are only measured under profiling instrumentation;
        # in sim mode the clock is never read, keeping telemetry seed-pure.
        self._wall = wall_clock() if self._instr.mode == "wall" else None  # reprolint: disable=RP105 — guarded by the profiling opt-in; sim mode never reads the clock

    # -- queue ----------------------------------------------------------------

    @property
    def pending(self) -> int:
        return len(self._queue)

    def oldest_wait(self, now: int) -> int:
        """Simulated minutes the head request has been waiting (0 if empty)."""
        if not self._queue:
            return 0
        return now - self._queue[0].enqueued_at

    def submit(self, url: URL, now: int) -> None:
        self._queue.append(
            PendingRequest(url=url, key=cache_key(url), enqueued_at=now)
        )

    def due(self, now: int) -> bool:
        """Should a batch flush at ``now``? (size or deadline trigger)."""
        if len(self._queue) >= self.max_batch_size:
            return True
        return bool(self._queue) and self.oldest_wait(now) >= self.max_wait_minutes

    # -- scoring --------------------------------------------------------------

    def flush(self, now: int) -> List[BatchVerdict]:
        """Score the oldest ``max_batch_size`` pending requests.

        Returns one :class:`BatchVerdict` per flushed request, in arrival
        order. Unreachable URLs become ``UNREACHABLE`` verdicts rather than
        aborting the batch.
        """
        if not self._queue:
            return []
        batch = [
            self._queue.popleft()
            for _ in range(min(self.max_batch_size, len(self._queue)))
        ]
        self._c_flushes.inc()
        self._h_batch_size.observe(len(batch))

        # Unique-key worklist: each distinct page is snapshot + scored once.
        unique: Dict[str, URL] = {}
        for request in batch:
            unique.setdefault(request.key, request.url)
        self._c_dedup.inc(len(batch) - len(unique))

        started = self._wall() if self._wall is not None else 0.0
        with self._instr.span("serve.batch.classify"):
            outcomes = self._score_unique(unique, now)
        if self._wall is not None:
            elapsed = self._wall() - started
            self._instr.observe("serve.batch.wall_seconds", elapsed)
            per_request = elapsed / len(batch)
            for _ in batch:
                self._instr.observe("serve.request.wall_seconds", per_request)

        return [
            BatchVerdict(
                url=request.url,
                key=request.key,
                verdict=outcomes[request.key][0],
                probability=outcomes[request.key][1],
                queued_minutes=now - request.enqueued_at,
            )
            for request in batch
        ]

    def score_single(self, url: URL, now: int) -> BatchVerdict:
        """Score one URL immediately, bypassing the queue.

        The synchronous :meth:`~repro.serve.service.VerdictService.check`
        path uses this: a navigation waiting on its verdict cannot sit out
        a batching deadline. The scoring code is identical to the batched
        path, so sync and batched verdicts for the same page agree.
        """
        key = cache_key(url)
        started = self._wall() if self._wall is not None else 0.0
        with self._instr.span("serve.single.classify"):
            verdict, probability = self._score_unique({key: url}, now)[key]
        if self._wall is not None:
            self._instr.observe(
                "serve.request.wall_seconds", self._wall() - started
            )
        return BatchVerdict(
            url=url, key=key, verdict=verdict,
            probability=probability, queued_minutes=0,
        )

    def _score_unique(
        self, unique: Dict[str, URL], now: int
    ) -> Dict[str, "tuple[NavigationVerdict, Optional[float]]"]:
        """One snapshot pass + one ``predict_proba`` call for the batch."""
        keys = list(unique.keys())
        report = self.preprocessor.process_batch_report(
            [unique[key] for key in keys], now, keep=False
        )
        outcomes: Dict[str, "tuple[NavigationVerdict, Optional[float]]"] = {
            cache_key(skip.url): (NavigationVerdict.UNREACHABLE, None)
            for skip in report.skipped
        }
        if report.pages:
            matrix = self.preprocessor.feature_matrix(report.pages)
            probabilities = self.classifier.predict_proba(matrix)[:, 1]
            for page, probability in zip(report.pages, probabilities):
                verdict = (
                    NavigationVerdict.BLOCKED_CLASSIFIER
                    if probability >= self.classifier.threshold
                    else NavigationVerdict.ALLOWED
                )
                outcomes[cache_key(page.url)] = (verdict, float(probability))
        return outcomes
