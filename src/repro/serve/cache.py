"""Tiered verdict cache for the online serving layer.

Three tiers, cheapest-to-invalidate first:

* **exact** — normalized-URL → verdict, LRU with TTL. Holds *blocked*
  verdicts (feed or classifier).
* **domain** — FWB-subdomain host → blocked verdict. One phishing page on
  ``scam.weebly.com`` condemns every path on that host, which is how real
  blocklists treat FWB subdomains (the whole free site is the attacker's).
* **negative** — normalized-URL → ``ALLOWED``, a short-TTL benign cache so
  popular legitimate pages do not re-enter the snapshot pipeline every
  request.

Cache keys are **always** produced by :func:`cache_key` / :func:`domain_key`
over a parsed :class:`~repro.simnet.url.URL` — reprolint RP304 statically
rejects raw-string keys in the serve layer, because two spellings of the
same page (``HTTP://Site.Weebly.com`` vs ``http://site.weebly.com/``) must
hit the same cache line.

Invalidation is event-driven, and staleness is a *measured* outcome:

* :meth:`TieredVerdictCache.invalidate_blocked` — a blocklist / backend
  feed ingested the URL. A benign entry it displaces was a **stale allow**
  (the cache was letting users through to a now-confirmed attack).
* :meth:`TieredVerdictCache.invalidate_takedown` — an FWB abuse desk took
  the site down. Blocked entries it evicts were **stale blocks** (the
  cache kept charging for a site that no longer exists).

Both are counted separately (``serve.cache.stale_allow`` /
``serve.cache.stale_block``) so the SERVING.md staleness budget is
observable in telemetry.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple, Union

from ..core.extension import NavigationVerdict
from ..errors import ConfigError
from ..obs.instrument import NULL_INSTRUMENTATION, Instrumentation
from ..simnet.url import URL, parse_url

#: Tier tags, also used in metric names (``serve.cache.hit.<tier>``).
TIER_EXACT = "exact"
TIER_DOMAIN = "domain"
TIER_NEGATIVE = "negative"

_BLOCKED = (NavigationVerdict.BLOCKED_FEED, NavigationVerdict.BLOCKED_CLASSIFIER)


def cache_key(url: Union[URL, str]) -> str:
    """The canonical cache key for a URL: its *parsed* normalized string.

    Every key entering the serve layer goes through ``simnet.url`` parsing
    (lowercased host, ``/`` path default, stripped fragment/credentials),
    so look-alike spellings of one page share a cache line. Raw strings are
    parsed first; already-parsed URLs render directly.
    """
    if isinstance(url, URL):
        return str(url)
    return str(parse_url(url))


def domain_key(url: Union[URL, str]) -> str:
    """The domain-tier key: the full (FWB-subdomain) host."""
    if not isinstance(url, URL):
        url = parse_url(url)
    return url.host


@dataclass(frozen=True)
class CacheHit:
    """A verdict served from the cache, tagged with the tier that held it."""

    verdict: NavigationVerdict
    tier: str


class _LruTtlTier:
    """One cache tier: ordered dict with LRU eviction and per-entry TTL."""

    def __init__(self, name: str, capacity: int, ttl_minutes: int) -> None:
        if capacity <= 0:
            raise ConfigError(f"tier {name!r} capacity must be positive")
        if ttl_minutes <= 0:
            raise ConfigError(f"tier {name!r} ttl_minutes must be positive")
        self.name = name
        self.capacity = capacity
        self.ttl_minutes = ttl_minutes
        self._entries: "OrderedDict[str, Tuple[NavigationVerdict, int]]" = OrderedDict()
        self.n_expired = 0
        self.n_evicted = 0

    def get(self, key: str, now: int) -> Optional[NavigationVerdict]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        verdict, stored_at = entry
        if now - stored_at >= self.ttl_minutes:
            del self._entries[key]
            self.n_expired += 1
            return None
        self._entries.move_to_end(key)
        return verdict

    def put(self, key: str, verdict: NavigationVerdict, now: int) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (verdict, now)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.n_evicted += 1

    def evict(self, key: str) -> Optional[NavigationVerdict]:
        entry = self._entries.pop(key, None)
        return None if entry is None else entry[0]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries


class TieredVerdictCache:
    """Exact + domain + negative verdict tiers with event-driven invalidation."""

    def __init__(
        self,
        exact_capacity: int = 50_000,
        exact_ttl_minutes: int = 24 * 60,
        domain_capacity: int = 20_000,
        domain_ttl_minutes: int = 7 * 24 * 60,
        negative_capacity: int = 100_000,
        negative_ttl_minutes: int = 6 * 60,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        instr = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        self.exact = _LruTtlTier(TIER_EXACT, exact_capacity, exact_ttl_minutes)
        self.domain = _LruTtlTier(TIER_DOMAIN, domain_capacity, domain_ttl_minutes)
        self.negative = _LruTtlTier(
            TIER_NEGATIVE, negative_capacity, negative_ttl_minutes
        )
        #: host → exact/negative keys stored for it (invalidation index).
        self._host_keys: Dict[str, Set[str]] = {}
        self._c_hit = {
            TIER_EXACT: instr.counter(f"serve.cache.hit.{TIER_EXACT}"),
            TIER_DOMAIN: instr.counter(f"serve.cache.hit.{TIER_DOMAIN}"),
            TIER_NEGATIVE: instr.counter(f"serve.cache.hit.{TIER_NEGATIVE}"),
        }
        self._c_miss = instr.counter("serve.cache.miss")
        self._c_stale_allow = instr.counter("serve.cache.stale_allow")
        self._c_stale_block = instr.counter("serve.cache.stale_block")
        self._c_invalidations = instr.counter("serve.cache.invalidations")

    # -- request path ---------------------------------------------------------

    def lookup(self, url: URL, now: int) -> Optional[CacheHit]:
        """Tiered lookup: exact, then domain, then negative."""
        key = cache_key(url)
        verdict = self.exact.get(key, now)
        if verdict is not None:
            self._c_hit[TIER_EXACT].inc()
            return CacheHit(verdict=verdict, tier=TIER_EXACT)
        host_verdict = self.domain.get(domain_key(url), now)
        if host_verdict is not None:
            self._c_hit[TIER_DOMAIN].inc()
            return CacheHit(verdict=host_verdict, tier=TIER_DOMAIN)
        benign = self.negative.get(key, now)
        if benign is not None:
            self._c_hit[TIER_NEGATIVE].inc()
            return CacheHit(verdict=benign, tier=TIER_NEGATIVE)
        self._c_miss.inc()
        return None

    def store(self, url: URL, verdict: NavigationVerdict, now: int) -> None:
        """Record a freshly computed verdict in the appropriate tiers.

        ``UNREACHABLE`` is never cached: a site that was down for one
        request may resolve on the next, and a stale unreachable entry
        would mask both outcomes.
        """
        key = cache_key(url)
        host = domain_key(url)
        if verdict in _BLOCKED:
            self.exact.put(key, verdict, now)
            self.domain.put(host, verdict, now)
            self._host_keys.setdefault(host, set()).add(key)
        elif verdict is NavigationVerdict.ALLOWED:
            self.negative.put(key, verdict, now)
            self._host_keys.setdefault(host, set()).add(key)

    # -- event-driven invalidation -------------------------------------------

    def invalidate_blocked(self, url: Union[URL, str]) -> int:
        """A blocklist / backend feed ingested ``url``: purge benign entries.

        Returns the number of **stale allows** detected — cached benign
        entries that were letting users through to a now-confirmed attack.
        The next lookup misses and re-resolves through the feed.
        """
        key = cache_key(url)
        stale = 0
        if self.negative.evict(key) is not None:
            stale += 1
        evicted = self.exact.evict(key)
        if evicted is NavigationVerdict.ALLOWED:
            stale += 1
        self._c_stale_allow.inc(stale)
        self._c_invalidations.inc()
        return stale

    def invalidate_takedown(self, url: Union[URL, str]) -> int:
        """An FWB abuse desk took the site down: purge its host's entries.

        Returns the number of **stale blocks** — blocked verdicts the
        cache would have kept serving for a site that no longer exists.
        Benign entries for the host are dropped too (the pages are gone)
        but are not counted as stale blocks.
        """
        host = domain_key(url)
        stale = 0
        if self.domain.evict(host) in _BLOCKED:
            stale += 1
        for key in sorted(self._host_keys.pop(host, ())):
            if self.exact.evict(key) in _BLOCKED:
                stale += 1
            self.negative.evict(key)
        self._c_stale_block.inc(stale)
        self._c_invalidations.inc()
        return stale

    # -- introspection --------------------------------------------------------

    def sizes(self) -> Dict[str, int]:
        return {
            TIER_EXACT: len(self.exact),
            TIER_DOMAIN: len(self.domain),
            TIER_NEGATIVE: len(self.negative),
        }
