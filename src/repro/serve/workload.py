"""Synthetic navigation traffic for exercising the serving layer.

Real extension traffic has two dominant regularities the serving stack
must be measured against:

* **Zipfian URL popularity** — a few pages absorb most navigations, which
  is exactly what makes a verdict cache effective;
* **a diurnal load curve** — request rate swings over the simulated day,
  which is what pushes the admission controller in and out of overload.

:class:`NavigationWorkload` samples both from named
:class:`~repro.config.SeedBank` child streams, so a workload is a pure
function of ``(urls, seed, parameters)``: two same-seed runs replay the
identical request sequence. Per-minute sampling is vectorized
(``poisson`` + weighted ``choice``), so a day of millions of requests is
generated in seconds.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from ..config import MINUTES_PER_DAY, SeedBank
from ..errors import ConfigError
from ..simnet.url import URL


class NavigationWorkload:
    """Seeded Zipf-over-URLs traffic with a diurnal rate curve."""

    def __init__(
        self,
        urls: Sequence[URL],
        seeds: SeedBank,
        zipf_exponent: float = 1.1,
        requests_per_minute: float = 120.0,
        diurnal_amplitude: float = 0.6,
        name: str = "serve.workload",
    ) -> None:
        if not urls:
            raise ConfigError("workload needs a non-empty URL population")
        if zipf_exponent <= 0:
            raise ConfigError("zipf_exponent must be positive")
        if requests_per_minute <= 0:
            raise ConfigError("requests_per_minute must be positive")
        if not 0.0 <= diurnal_amplitude < 1.0:
            raise ConfigError("diurnal_amplitude must lie in [0, 1)")
        self.urls: List[URL] = list(urls)
        self.requests_per_minute = requests_per_minute
        self.diurnal_amplitude = diurnal_amplitude
        self.zipf_exponent = zipf_exponent
        # Which URL gets which popularity rank is itself seeded: rank 0
        # (the hot head) lands on a different URL per seed, not always on
        # whichever URL happened to be listed first.
        rank_rng = seeds.child(f"{name}.rank")
        order = rank_rng.permutation(len(self.urls))
        weights = np.empty(len(self.urls), dtype=np.float64)
        ranks = np.arange(1, len(self.urls) + 1, dtype=np.float64)
        weights[order] = ranks ** -zipf_exponent
        self._weights = weights / weights.sum()
        self._sample_rng = seeds.child(f"{name}.sample")

    # -- rate curve ------------------------------------------------------------

    def rate_at(self, minute: int) -> float:
        """Expected requests in simulated minute ``minute``.

        A cosine day: trough at minute 0 (simulated midnight), peak twelve
        hours later, mean equal to ``requests_per_minute``.
        """
        phase = 2.0 * math.pi * (minute % MINUTES_PER_DAY) / MINUTES_PER_DAY
        return self.requests_per_minute * (
            1.0 - self.diurnal_amplitude * math.cos(phase)
        )

    # -- sampling --------------------------------------------------------------

    def minute_requests(self, minute: int) -> List[URL]:
        """The navigations arriving during one simulated minute."""
        n_arrivals = int(self._sample_rng.poisson(self.rate_at(minute)))
        if n_arrivals == 0:
            return []
        indices = self._sample_rng.choice(
            len(self.urls), size=n_arrivals, p=self._weights
        )
        return [self.urls[int(index)] for index in indices]

    def iter_minutes(
        self, start_minute: int, n_minutes: int
    ) -> Iterator[Tuple[int, List[URL]]]:
        """Yield ``(minute, requests)`` for each minute of the window."""
        for minute in range(start_minute, start_minute + n_minutes):
            yield minute, self.minute_requests(minute)

    def expected_total(self, n_minutes: int) -> float:
        """Mean request count over ``n_minutes`` (amplitude averages out
        only over whole days; partial days keep the cosine term)."""
        return sum(self.rate_at(minute) for minute in range(n_minutes))
