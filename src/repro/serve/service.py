"""`VerdictService`: the online request path behind the FreePhish extension.

One request resolves through the layers cheapest-first::

    tiered cache  →  backend feed  →  FWB gate  →  batched model scoring
         │                │              │                 │
    cache_exact /      feed         non_fwb          model / model_degraded
    cache_domain /
    cache_negative

Two entry points share that path:

* :meth:`VerdictService.check` — synchronous, one verdict per call; the
  compat path :class:`~repro.core.extension.FreePhishExtension` routes
  through. Misses are scored immediately (a batch of one).
* :meth:`VerdictService.submit` + :meth:`VerdictService.pump` — the
  high-throughput path: submissions that reach the model layer queue into
  the micro-batcher (or, past the admission limit, the degraded fast
  path), and ``pump(now)`` flushes due batches each simulated tick.

Every verdict leaves tagged with the layer that produced it
(:class:`ServedFrom`), and each tag has a ``serve.served.<tag>`` counter —
degraded-mode verdicts are therefore separately countable, an acceptance
requirement of the serving design.

Degraded verdicts are **never cached**: they are low-fidelity answers
produced under pressure, and letting them linger in the tiers would keep
serving guesses after the overload has passed.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, List, Optional, Set

from ..core.classifier import FreePhishClassifier
from ..core.extension import NavigationVerdict
from ..core.preprocess import Preprocessor
from ..obs.instrument import NULL_INSTRUMENTATION, Instrumentation
from ..simnet.browser import Browser
from ..simnet.url import URL
from ..simnet.web import Web
from .admission import AdmissionController, AdmissionDecision, FastPathModel
from .batching import BatchVerdict, MicroBatcher, PendingRequest
from .cache import TieredVerdictCache, cache_key


class ServedFrom(str, Enum):
    """Which layer of the serving stack produced a verdict."""

    #: Client-side user override ("continue anyway"); emitted by the
    #: extension, never by the service itself.
    ALLOWLIST = "allowlist"
    CACHE_EXACT = "cache_exact"
    CACHE_DOMAIN = "cache_domain"
    CACHE_NEGATIVE = "cache_negative"
    FEED = "feed"
    NON_FWB = "non_fwb"
    MODEL = "model"
    MODEL_DEGRADED = "model_degraded"


_TIER_TO_SERVED = {
    "exact": ServedFrom.CACHE_EXACT,
    "domain": ServedFrom.CACHE_DOMAIN,
    "negative": ServedFrom.CACHE_NEGATIVE,
}


@dataclass(frozen=True)
class ServedVerdict:
    """A navigation verdict plus its provenance within the serving stack."""

    url: URL
    verdict: NavigationVerdict
    served_from: ServedFrom
    #: Simulated minutes spent queued (0 for front-line layers).
    queued_minutes: int = 0
    #: Model probability, when a model produced the verdict.
    probability: Optional[float] = None

    @property
    def blocked(self) -> bool:
        return self.verdict in (
            NavigationVerdict.BLOCKED_FEED,
            NavigationVerdict.BLOCKED_CLASSIFIER,
        )

    @property
    def degraded(self) -> bool:
        return self.served_from is ServedFrom.MODEL_DEGRADED


class VerdictService:
    """Cache + feed + batched-model verdict serving over one simulated web."""

    def __init__(
        self,
        web: Web,
        classifier: FreePhishClassifier,
        browser: Optional[Browser] = None,
        feed: Optional[Iterable] = None,
        cache: Optional[TieredVerdictCache] = None,
        fast_path: Optional[FastPathModel] = None,
        max_batch_size: int = 32,
        max_wait_minutes: int = 2,
        max_queue_depth: int = 256,
        max_batches_per_tick: int = 4,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.web = web
        self.classifier = classifier
        self.browser = browser if browser is not None else Browser(web)
        instr = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        self._instr = instr
        self.preprocessor = Preprocessor(web, self.browser, instrumentation=instr)
        self.cache = cache if cache is not None else TieredVerdictCache(
            instrumentation=instr
        )
        self.batcher = MicroBatcher(
            self.preprocessor,
            classifier,
            max_batch_size=max_batch_size,
            max_wait_minutes=max_wait_minutes,
            instrumentation=instr,
        )
        self.admission = AdmissionController(
            max_queue_depth=max_queue_depth, instrumentation=instr
        )
        self.fast_path = fast_path if fast_path is not None else FastPathModel()
        #: Batches the model layer may score per simulated tick; the knob
        #: that turns sustained demand into backlog (and thus degradation).
        self.max_batches_per_tick = max_batches_per_tick
        #: Normalized URL keys the backend framework has confirmed.
        self.feed: Set[str] = set()
        if feed:
            self.update_feed(feed)
        self._degraded_pending: List[PendingRequest] = []
        self._c_requests = instr.counter("serve.requests")
        self._c_served = {
            tag: instr.counter(f"serve.served.{tag.value}") for tag in ServedFrom
        }
        self._h_latency = instr.histogram("serve.latency_minutes")
        self._g_depth = instr.gauge("serve.queue.depth")

    # -- feed & invalidation ---------------------------------------------------

    def update_feed(self, urls: Iterable) -> int:
        """Ingest confirmed-phishing URLs from the backend framework.

        Each newly ingested URL fires the blocklist invalidation hook, so a
        cached benign verdict cannot outlive the detection that refutes it.
        Returns the number of stale allows purged.
        """
        stale = 0
        for url in urls:
            key = cache_key(url)
            if key in self.feed:
                continue
            self.feed.add(key)
            stale += self.cache.invalidate_blocked(key)
        return stale

    def on_takedown(self, url) -> int:
        """Invalidation hook for an FWB abuse-desk takedown of ``url``'s site.

        Returns the number of stale blocks purged.
        """
        return self.cache.invalidate_takedown(url)

    # -- shared front line -----------------------------------------------------

    def _front_line(self, url: URL, now: int) -> Optional[ServedVerdict]:
        """Cache → feed → FWB-scope gate; ``None`` means the model must run."""
        hit = self.cache.lookup(url, now)
        if hit is not None:
            return self._serve(
                ServedVerdict(
                    url=url, verdict=hit.verdict,
                    served_from=_TIER_TO_SERVED[hit.tier],
                )
            )
        if cache_key(url) in self.feed:
            self.cache.store(url, NavigationVerdict.BLOCKED_FEED, now)
            return self._serve(
                ServedVerdict(
                    url=url, verdict=NavigationVerdict.BLOCKED_FEED,
                    served_from=ServedFrom.FEED,
                )
            )
        if self.web.fwb_for(url) is None:
            # Out of FreePhish's scope: ordinary Safe-Browsing covers the
            # non-FWB web. Cached as benign so repeats skip the gate too.
            self.cache.store(url, NavigationVerdict.ALLOWED, now)
            return self._serve(
                ServedVerdict(
                    url=url, verdict=NavigationVerdict.ALLOWED,
                    served_from=ServedFrom.NON_FWB,
                )
            )
        return None

    def _serve(self, served: ServedVerdict) -> ServedVerdict:
        self._c_served[served.served_from].inc()
        self._h_latency.observe(served.queued_minutes)
        return served

    def _serve_model(self, scored: BatchVerdict, now: int) -> ServedVerdict:
        self.cache.store(scored.url, scored.verdict, now)
        return self._serve(
            ServedVerdict(
                url=scored.url,
                verdict=scored.verdict,
                served_from=ServedFrom.MODEL,
                queued_minutes=scored.queued_minutes,
                probability=scored.probability,
            )
        )

    # -- synchronous path ------------------------------------------------------

    def check(self, url: URL, now: int) -> ServedVerdict:
        """Resolve one verdict immediately (the extension's request path)."""
        self._c_requests.inc()
        resolved = self._front_line(url, now)
        if resolved is not None:
            return resolved
        return self._serve_model(self.batcher.score_single(url, now), now)

    # -- batched path ----------------------------------------------------------

    def submit(self, url: URL, now: int) -> Optional[ServedVerdict]:
        """Submit one request; front-line verdicts return immediately.

        Returns ``None`` when the request entered the model layer (batched
        or degraded); its verdict is delivered by a later :meth:`pump` /
        :meth:`drain` call.
        """
        self._c_requests.inc()
        resolved = self._front_line(url, now)
        if resolved is not None:
            return resolved
        decision = self.admission.admit(self.batcher.pending)
        if decision is AdmissionDecision.ADMIT:
            self.batcher.submit(url, now)
        else:
            self._degraded_pending.append(
                PendingRequest(url=url, key=cache_key(url), enqueued_at=now)
            )
        return None

    def pump(self, now: int) -> List[ServedVerdict]:
        """Advance the model layer one tick; return verdicts completed now."""
        served: List[ServedVerdict] = []
        flushed = 0
        while flushed < self.max_batches_per_tick and self.batcher.due(now):
            served.extend(
                self._serve_model(scored, now) for scored in self.batcher.flush(now)
            )
            flushed += 1
        served.extend(self._shed_degraded(now))
        self._g_depth.set(self.batcher.pending)
        return served

    def drain(self, now: int) -> List[ServedVerdict]:
        """Flush everything still queued, ignoring per-tick capacity."""
        served: List[ServedVerdict] = []
        while self.batcher.pending:
            served.extend(
                self._serve_model(scored, now) for scored in self.batcher.flush(now)
            )
        served.extend(self._shed_degraded(now))
        self._g_depth.set(0)
        return served

    def _shed_degraded(self, now: int) -> List[ServedVerdict]:
        """Answer every degraded-mode request from the URL-only fast path."""
        if not self._degraded_pending:
            return []
        pending, self._degraded_pending = self._degraded_pending, []
        verdicts = self.fast_path.verdicts([request.url for request in pending])
        return [
            self._serve(
                ServedVerdict(
                    url=request.url,
                    verdict=verdict,
                    served_from=ServedFrom.MODEL_DEGRADED,
                    queued_minutes=now - request.enqueued_at,
                )
            )
            for request, verdict in zip(pending, verdicts)
        ]
