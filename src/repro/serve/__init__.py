"""repro.serve — the online verdict-serving subsystem.

Wraps the core detection pipeline (``Preprocessor`` +
``FreePhishClassifier``) in the shapes of a production inference stack:

* :mod:`repro.serve.cache` — tiered verdict cache (exact / FWB-subdomain
  domain / negative) with event-driven invalidation;
* :mod:`repro.serve.batching` — deterministic sim-clock request
  micro-batching into single ``predict_proba`` calls;
* :mod:`repro.serve.admission` — bounded queueing that sheds overload to
  a URL-features-only degraded fast path instead of dropping requests;
* :mod:`repro.serve.service` — :class:`VerdictService`, the layered
  request path the :class:`~repro.core.extension.FreePhishExtension`
  routes through;
* :mod:`repro.serve.workload` — seeded Zipf + diurnal synthetic
  navigation traffic;
* :mod:`repro.serve.bench` — the shared ``serve-bench`` runner.

See ``docs/SERVING.md`` for tier semantics, invalidation rules, and the
determinism policy.
"""

from .admission import AdmissionController, AdmissionDecision, FastPathModel
from .batching import BatchVerdict, MicroBatcher, PendingRequest
from .bench import run_serve_bench, smoke_parameters
from .cache import CacheHit, TieredVerdictCache, cache_key, domain_key
from .service import ServedFrom, ServedVerdict, VerdictService
from .workload import NavigationWorkload

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "BatchVerdict",
    "CacheHit",
    "FastPathModel",
    "MicroBatcher",
    "NavigationWorkload",
    "PendingRequest",
    "ServedFrom",
    "ServedVerdict",
    "TieredVerdictCache",
    "VerdictService",
    "cache_key",
    "domain_key",
    "run_serve_bench",
    "smoke_parameters",
]
