"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``campaign``      run a scaled measurement campaign and print Tables 3/4
``historical``    run the §2 pipeline and print the Figure 1 series
``characterize``  run the §3 characterization study
``table1``        regenerate the code-similarity table
``table2``        regenerate the model-comparison table
``demo``          classify one freshly generated phishing page
``report``        render a telemetry report (live campaign or saved JSON)
``serve-bench``   benchmark the repro.serve verdict-serving subsystem

Every command accepts ``--seed``; campaign/table output can be exported
with ``--export-dir`` (which also writes ``telemetry.json``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .config import SimulationConfig


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .analysis import build_fig9, build_table3, build_table4
    from .analysis.export import (
        write_figure_json,
        write_table_json,
        write_timelines_csv,
    )
    from .analysis.report import render_figure, render_table3, render_table4
    from .sim import CampaignWorld

    config = SimulationConfig(
        seed=args.seed,
        duration_days=args.days,
        target_fwb_phishing=args.target,
    )
    world = CampaignWorld(config, train_samples_per_class=args.train_samples)
    result = world.run(verbose=args.verbose)
    print(f"observations={result.observations} detections={result.detections}")
    counters = world.instr.metrics.counters()
    cache_hits = counters.get("preprocess.cache.hit", 0)
    cache_lookups = cache_hits + counters.get("preprocess.cache.miss", 0)
    if cache_lookups:
        print(
            f"feature cache: {cache_hits / cache_lookups * 100:.1f}% hit rate "
            f"({cache_lookups} lookups); "
            f"classify batches: {counters.get('classify.batch.calls', 0)} calls / "
            f"{counters.get('classify.batch.rows', 0)} rows"
        )
    print()
    print(render_table3(build_table3(result.timelines)))
    print()
    print(render_table4(build_table4(result.timelines)))
    print()
    print(render_figure(build_fig9(result.timelines)))
    if args.export_dir:
        from .obs.export import write_telemetry_json

        out = Path(args.export_dir)
        out.mkdir(parents=True, exist_ok=True)
        write_timelines_csv(result.timelines, out / "timelines.csv")
        write_table_json(build_table3(result.timelines), out / "table3.json")
        write_table_json(build_table4(result.timelines), out / "table4.json")
        write_figure_json(build_fig9(result.timelines), out / "fig9.json")
        write_telemetry_json(world.instr, out / "telemetry.json")
        print(f"\nexported to {out}/")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .obs.export import load_telemetry, render_telemetry

    if args.telemetry_file:
        snapshot = load_telemetry(Path(args.telemetry_file))
    else:
        from .sim import CampaignWorld

        config = SimulationConfig(
            seed=args.seed,
            duration_days=args.days,
            target_fwb_phishing=args.target,
        )
        world = CampaignWorld(config, train_samples_per_class=args.train_samples)
        world.run(verbose=args.verbose)
        snapshot = world.instr.telemetry()
    if args.json:
        import json

        print(json.dumps(snapshot, sort_keys=True, indent=2))
    else:
        print(render_telemetry(snapshot))
    return 0


def _cmd_historical(args: argparse.Namespace) -> int:
    from .analysis import build_fig1
    from .analysis.report import render_figure
    from .sim import HistoricalPipeline, HistoricalScenario

    print(render_figure(build_fig1(HistoricalScenario(seed=args.seed)), 0))
    pipeline = HistoricalPipeline(seed=args.seed)
    dataset = pipeline.run(scale=args.scale)
    print(f"\nD1: {len(dataset.fwb_phishing)} FWB phishing URLs "
          f"(Twitter {dataset.n_twitter} / Facebook {dataset.n_facebook}); "
          f"{len(dataset.dyndns_phishing)} dynamic-DNS URLs set aside; "
          f"{dataset.dropped_no_sld} dropped by the SLD filter")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from .analysis import characterize

    report = characterize(n_sample=args.sample, seed=args.seed)
    print(f"sample size                    {report.n_sample}")
    print(f"confirmed phishing             {report.n_confirmed} "
          f"({report.confirmation_rate * 100:.1f}%)")
    print(f"Cohen's kappa                  {report.kappa:.2f}")
    print(f".com-FWB share                 {report.com_share * 100:.1f}%")
    print(f"median FWB domain age          {report.median_fwb_age_years:.1f} years")
    print(f"median self-hosted domain age  "
          f"{report.median_self_hosted_age_days:.0f} days")
    print(f"search-indexed                 {report.indexed_rate * 100:.1f}%")
    print(f"noindex directive              {report.noindex_rate * 100:.1f}%")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from .analysis import build_table1
    from .analysis.report import render_table1

    rows = build_table1(seed=args.seed, sites_per_class=args.sites,
                        max_pairs=args.pairs)
    print(render_table1(rows))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from .analysis import build_table2
    from .analysis.report import render_table2
    from .sim import build_ground_truth

    dataset = build_ground_truth(n_per_class=args.per_class, seed=args.seed)
    rows = build_table2(dataset.pages, dataset.labels, dataset.web,
                        n_estimators=args.estimators, seed=args.seed)
    print(render_table2(rows))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .config import SeedBank
    from .core.classifier import FreePhishClassifier
    from .core.preprocess import Preprocessor
    from .ml import RandomForestClassifier
    from .sim import build_ground_truth
    from .sitegen import PhishingSiteGenerator

    bank = SeedBank(args.seed)
    dataset = build_ground_truth(n_per_class=120, seed=args.seed)
    classifier = FreePhishClassifier(
        model=RandomForestClassifier(n_estimators=40, random_state=args.seed)
    )
    classifier.fit_pages(dataset.pages, dataset.labels)
    rng = bank.fresh("cli.demo")
    web = dataset.web
    provider = web.fwb_providers["weebly"]
    site = PhishingSiteGenerator().create_site(provider, now=0, rng=rng)
    page = Preprocessor(web).process(site.root_url, now=10)
    prediction = classifier.classify_page(page)
    print(f"url:     {site.root_url}")
    print(f"brand:   {site.metadata['brand']}  variant: {site.metadata['variant']}")
    print(f"verdict: {'PHISHING' if prediction.label else 'benign'} "
          f"(p={prediction.probability:.2f})")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import json

    from .serve.bench import run_serve_bench, smoke_parameters

    parameters = dict(
        seed=args.seed,
        n_sites_per_class=args.sites_per_class,
        n_minutes=args.minutes,
        requests_per_minute=args.requests_per_minute,
        max_batch_size=args.max_batch_size,
        max_queue_depth=args.max_queue_depth,
        max_batches_per_tick=args.max_batches_per_tick,
        mode=args.mode,
        include_telemetry=bool(args.export_dir),
    )
    if args.smoke:
        for name, value in smoke_parameters().items():
            parameters[name] = value
    payload = run_serve_bench(**parameters)

    served = payload["served"]
    cache = payload["cache"]
    print(f"requests           {payload['workload']['n_requests']}")
    print(f"baseline           {payload['baseline']['requests_per_second']:.0f} req/s "
          f"(single-URL classify_page)")
    print(f"served             {served['requests_per_second']:.0f} req/s "
          f"({payload['speedup_vs_single_url']:.1f}x)")
    for tier, rate in cache["hit_rate"].items():
        print(f"cache hit {tier:<9}{rate * 100:5.1f}%")
    print(f"degraded fraction  "
          f"{payload['admission']['degraded_fraction'] * 100:.1f}%")
    print(f"mean batch size    {payload['batching']['mean_batch_size']:.1f}")
    feature_cache = payload["feature_cache"]
    print(f"feature cache      {feature_cache['hit_rate'] * 100:5.1f}% hit "
          f"({feature_cache['hits']} hits / {feature_cache['misses']} misses)")

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    telemetry = payload.pop("telemetry", None)
    out.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    print(f"\nwrote {out}")
    if args.export_dir and telemetry is not None:
        export = Path(args.export_dir)
        export.mkdir(parents=True, exist_ok=True)
        telemetry_path = export / "telemetry.json"
        telemetry_path.write_text(
            json.dumps(telemetry, sort_keys=True, indent=2) + "\n"
        )
        print(f"wrote {telemetry_path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FreePhish reproduction CLI"
    )
    parser.add_argument("--seed", type=int, default=20231024)
    sub = parser.add_subparsers(dest="command", required=True)

    campaign = sub.add_parser("campaign", help="run a measurement campaign")
    campaign.add_argument("--days", type=int, default=3)
    campaign.add_argument("--target", type=int, default=300)
    campaign.add_argument("--train-samples", type=int, default=150)
    campaign.add_argument("--export-dir", type=str, default="")
    campaign.add_argument("--verbose", action="store_true")
    campaign.set_defaults(func=_cmd_campaign)

    historical = sub.add_parser("historical", help="run the §2 pipeline")
    historical.add_argument("--scale", type=float, default=0.02)
    historical.set_defaults(func=_cmd_historical)

    characterize = sub.add_parser("characterize", help="run the §3 study")
    characterize.add_argument("--sample", type=int, default=1000)
    characterize.set_defaults(func=_cmd_characterize)

    table1 = sub.add_parser("table1", help="code-similarity table")
    table1.add_argument("--sites", type=int, default=6)
    table1.add_argument("--pairs", type=int, default=20)
    table1.set_defaults(func=_cmd_table1)

    table2 = sub.add_parser("table2", help="model-comparison table")
    table2.add_argument("--per-class", type=int, default=200)
    table2.add_argument("--estimators", type=int, default=30)
    table2.set_defaults(func=_cmd_table2)

    demo = sub.add_parser("demo", help="classify one generated attack")
    demo.set_defaults(func=_cmd_demo)

    report = sub.add_parser(
        "report", help="render a telemetry report (run a campaign, or load "
        "a telemetry.json written by campaign --export-dir)"
    )
    report.add_argument(
        "--telemetry", action="store_true",
        help="render the telemetry section (currently the only section, "
        "so this is the default)",
    )
    report.add_argument(
        "--telemetry-file", type=str, default="",
        help="render a saved telemetry export instead of running a campaign",
    )
    report.add_argument("--days", type=int, default=1)
    report.add_argument("--target", type=int, default=100)
    report.add_argument("--train-samples", type=int, default=120)
    report.add_argument("--json", action="store_true",
                        help="emit the raw telemetry snapshot as JSON")
    report.add_argument("--verbose", action="store_true")
    report.set_defaults(func=_cmd_report)

    serve_bench = sub.add_parser(
        "serve-bench",
        help="benchmark the repro.serve subsystem and write BENCH_serve.json",
    )
    serve_bench.add_argument("--sites-per-class", type=int, default=60)
    serve_bench.add_argument("--minutes", type=int, default=120)
    serve_bench.add_argument("--requests-per-minute", type=float, default=60.0)
    serve_bench.add_argument("--max-batch-size", type=int, default=32)
    serve_bench.add_argument("--max-queue-depth", type=int, default=256)
    serve_bench.add_argument("--max-batches-per-tick", type=int, default=4)
    serve_bench.add_argument(
        "--mode", choices=("wall", "sim"), default="wall",
        help="wall profiles real seconds; sim keeps telemetry seed-pure",
    )
    serve_bench.add_argument(
        "--smoke", action="store_true",
        help="small CI-sized run (overrides the sizing flags)",
    )
    serve_bench.add_argument("--out", type=str, default="BENCH_serve.json")
    serve_bench.add_argument(
        "--export-dir", type=str, default="",
        help="also write the run's telemetry.json here",
    )
    serve_bench.set_defaults(func=_cmd_serve_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
