"""The :class:`Instrumentation` facade threaded through the pipeline.

One object bundles the three observability channels — a
:class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.tracing.Tracer`, and an
:class:`~repro.obs.events.EventLog` — plus the current simulation time,
so instrumented components take a single optional parameter instead of
three.

Two implementations share the surface:

* :class:`Instrumentation` — the real thing, in ``"sim"`` mode
  (deterministic, spans keyed on simulation minutes) or ``"wall"`` mode
  (:meth:`Instrumentation.profiling`, spans keyed on
  ``time.perf_counter`` for benchmark stage timings);
* :class:`NullInstrumentation` — every operation is a no-op returning a
  shared singleton, so the uninstrumented hot path costs one attribute
  lookup and allocates nothing. Use the module-level
  :data:`NULL_INSTRUMENTATION` instead of constructing new ones.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from ..errors import ObservabilityError
from .events import Event, EventLog
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, Number
from .tracing import SimClock, SpanRecord, Tracer, wall_clock

#: Recognised operating modes for the real implementation.
_MODES = ("sim", "wall")


class Instrumentation:
    """Live metrics + tracing + events for one instrumented run."""

    enabled = True

    def __init__(self, mode: str = "sim", max_spans: int = 10_000,
                 max_events: int = 50_000) -> None:
        if mode not in _MODES:
            raise ObservabilityError(
                f"unknown instrumentation mode {mode!r}; expected one of {_MODES}"
            )
        self.mode = mode
        self.metrics = MetricsRegistry()
        self._sim_clock = SimClock()
        clock = self._sim_clock if mode == "sim" else wall_clock()  # reprolint: disable=RP105 — wall mode is an explicit profiling opt-in; sim mode never reads the clock
        self.tracer = Tracer(clock=clock, registry=self.metrics,
                             max_spans=max_spans)
        self.events = EventLog(max_events=max_events)

    @classmethod
    def profiling(cls, max_spans: int = 10_000,
                  max_events: int = 50_000) -> "Instrumentation":
        """Wall-clock mode: span durations are real seconds (benchmarks)."""
        return cls(mode="wall", max_spans=max_spans, max_events=max_events)

    # -- simulation time ------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in minutes."""
        return self._sim_clock.now

    def set_time(self, now: float) -> None:
        """Advance the simulation clock (events and sim-mode spans use it)."""
        self._sim_clock.now = now

    # -- metric conveniences --------------------------------------------------

    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def histogram(self, name: str) -> Histogram:
        return self.metrics.histogram(name)

    def count(self, name: str, amount: int = 1) -> None:
        self.metrics.counter(name).inc(amount)

    def observe(self, name: str, value: Number) -> None:
        self.metrics.histogram(name).observe(value)

    # -- spans & events -------------------------------------------------------

    def span(self, name: str):
        """Context manager timing a nested stage."""
        return self.tracer.span(name)

    def emit(self, kind: str, **fields) -> Optional[Event]:
        """Emit a structured event stamped with the simulation time."""
        return self.events.emit(kind, self._sim_clock.now, **fields)

    # -- export ---------------------------------------------------------------

    def telemetry(self, include_events: bool = True,
                  include_spans: bool = False) -> dict:
        """Full snapshot as a JSON-ready dict.

        In ``"sim"`` mode the snapshot is a pure function of the seed:
        two same-seed campaigns serialize byte-identically.
        """
        events: dict = {
            "emitted": self.events.n_emitted,
            "by_kind": self.events.counts_by_kind(),
        }
        if include_events:
            events["items"] = [event.to_dict() for event in self.events.events()]
        spans: dict = {
            "started": self.tracer.n_started,
            "finished": self.tracer.n_finished,
        }
        if include_spans:
            spans["items"] = [
                {
                    "name": record.name,
                    "index": record.index,
                    "parent": record.parent,
                    "depth": record.depth,
                    "start": record.start,
                    "end": record.end,
                }
                for record in self.tracer.spans()
            ]
        return {
            "schema": "repro.obs/telemetry.v1",
            "mode": self.mode,
            "metrics": self.metrics.snapshot(),
            "events": events,
            "spans": spans,
        }

    def telemetry_json(self, include_events: bool = True,
                       include_spans: bool = False) -> str:
        """Canonical JSON serialization (sorted keys, 2-space indent)."""
        return json.dumps(
            self.telemetry(include_events=include_events,
                           include_spans=include_spans),
            sort_keys=True, indent=2,
        ) + "\n"


class _NullCounter:
    __slots__ = ()
    name = ""
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = ""
    value = 0.0

    def set(self, value: Number) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = ""
    count = 0
    total = 0.0
    min = None
    max = None
    mean = None

    def observe(self, value: Number) -> None:
        pass

    def quantile(self, q: float) -> None:
        return None

    def quantiles(self, qs: Iterable[float]) -> List[None]:
        return [None for _ in qs]

    def snapshot(self) -> Dict[str, Optional[float]]:
        return {"count": 0, "sum": 0.0, "min": None, "max": None,
                "p50": None, "p90": None, "p99": None}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class _NullMetricsRegistry:
    __slots__ = ()

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, growth: float = 1.02,
                  min_value: float = 1e-9) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def counters(self) -> Dict[str, int]:
        return {}

    def gauges(self) -> Dict[str, float]:
        return {}

    def histograms(self) -> Dict[str, Histogram]:
        return {}

    def snapshot(self) -> Dict[str, dict]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def __len__(self) -> int:
        return 0


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _NullTracer:
    __slots__ = ()
    n_started = 0
    n_finished = 0
    active_depth = 0

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def spans(self, name: Optional[str] = None) -> List[SpanRecord]:
        return []


class _NullEventLog:
    __slots__ = ()
    n_emitted = 0

    def subscribe(self, sink):
        return sink

    def unsubscribe(self, sink) -> None:
        pass

    def emit(self, kind: str, time: float, **fields) -> None:
        return None

    def events(self, kind: Optional[str] = None) -> List[Event]:
        return []

    def counts_by_kind(self) -> Dict[str, int]:
        return {}

    def __len__(self) -> int:
        return 0


class NullInstrumentation(Instrumentation):
    """Allocation-free no-op implementation of the facade surface.

    Every accessor returns a shared singleton; ``span`` hands back one
    reusable no-op context manager, so the uninstrumented pipeline path
    performs no per-call allocation. Prefer the module-level
    :data:`NULL_INSTRUMENTATION` over constructing instances.
    """

    enabled = False

    def __init__(self) -> None:
        self.mode = "null"
        self.metrics = _NullMetricsRegistry()
        self.tracer = _NullTracer()
        self.events = _NullEventLog()

    @property
    def now(self) -> float:
        return 0.0

    def set_time(self, now: float) -> None:
        pass

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def count(self, name: str, amount: int = 1) -> None:
        pass

    def observe(self, name: str, value: Number) -> None:
        pass

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def emit(self, kind: str, **fields) -> None:
        return None

    def telemetry(self, include_events: bool = True,
                  include_spans: bool = False) -> dict:
        events: dict = {"emitted": 0, "by_kind": {}}
        if include_events:
            events["items"] = []
        spans: dict = {"started": 0, "finished": 0}
        if include_spans:
            spans["items"] = []
        return {
            "schema": "repro.obs/telemetry.v1",
            "mode": "null",
            "metrics": self.metrics.snapshot(),
            "events": events,
            "spans": spans,
        }


#: Shared no-op instance: the default for every instrumented component.
NULL_INSTRUMENTATION = NullInstrumentation()
