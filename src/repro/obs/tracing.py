"""Nested tracing spans over a pluggable clock.

The default clock is the **simulation clock** — integer minutes advanced
by :meth:`repro.obs.instrument.Instrumentation.set_time` — so span
records are a pure function of the seed and serialize byte-identically
across same-seed runs. An optional **wall-clock profiling mode**
(:func:`wall_clock`) swaps in ``time.perf_counter`` for real stage
timings; it is an explicit opt-in used by the benchmark harness and is
the only sanctioned wall-clock read in the library (see
``docs/OBSERVABILITY.md`` for the policy).

Every finished span feeds its duration into a ``span.<name>`` histogram
of the attached :class:`~repro.obs.metrics.MetricsRegistry`, so stage
timing quantiles survive even after the bounded span ring buffer has
rotated old records out.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from ..errors import ObservabilityError
from .metrics import MetricsRegistry


class SimClock:
    """Mutable holder for the current simulation time (minutes)."""

    __slots__ = ("now",)

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def wall_clock() -> Callable[[], float]:
    """Return a monotonic wall-clock reader for profiling mode."""
    from time import perf_counter  # reprolint: disable=RP101 — wall-clock profiling is an explicit opt-in (benchmarks only); sim-time telemetry never reads it

    return perf_counter


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    name: str
    index: int
    parent: Optional[int]
    depth: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class _ActiveSpan:
    """Context-manager handle for one in-flight span."""

    __slots__ = ("_tracer", "name", "index", "parent", "depth", "start")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self.index = -1
        self.parent: Optional[int] = None
        self.depth = 0
        self.start = 0.0

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._begin(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._finish(self)


class Tracer:
    """Produces nested spans and aggregates their durations.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current time. Defaults to a
        fresh :class:`SimClock` (deterministic simulation minutes).
    registry:
        Optional metrics registry; when given, every finished span
        observes its duration into the ``span.<name>`` histogram.
    max_spans:
        Ring-buffer bound on retained :class:`SpanRecord` objects. The
        aggregate histograms are unaffected by rotation.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        registry: Optional[MetricsRegistry] = None,
        max_spans: int = 10_000,
    ) -> None:
        if max_spans <= 0:
            raise ObservabilityError("max_spans must be positive")
        self.clock: Callable[[], float] = clock if clock is not None else SimClock()
        self.registry = registry
        self.max_spans = max_spans
        self.n_started = 0
        self.n_finished = 0
        self._stack: List[_ActiveSpan] = []
        self._finished: Deque[SpanRecord] = deque(maxlen=max_spans)

    def span(self, name: str) -> _ActiveSpan:
        """Create a span handle; the span starts on ``__enter__``."""
        return _ActiveSpan(self, name)

    def _begin(self, handle: _ActiveSpan) -> None:
        handle.index = self.n_started
        handle.parent = self._stack[-1].index if self._stack else None
        handle.depth = len(self._stack)
        handle.start = self.clock()
        self.n_started += 1
        self._stack.append(handle)

    def _finish(self, handle: _ActiveSpan) -> None:
        if not self._stack or self._stack[-1] is not handle:
            raise ObservabilityError(
                f"span {handle.name!r} closed out of order; spans must "
                "nest strictly (use the context-manager form)"
            )
        self._stack.pop()
        end = self.clock()
        record = SpanRecord(
            name=handle.name,
            index=handle.index,
            parent=handle.parent,
            depth=handle.depth,
            start=handle.start,
            end=end,
        )
        self._finished.append(record)
        self.n_finished += 1
        if self.registry is not None:
            self.registry.histogram(f"span.{handle.name}").observe(
                record.duration
            )

    @property
    def active_depth(self) -> int:
        return len(self._stack)

    def spans(self, name: Optional[str] = None) -> List[SpanRecord]:
        """Retained finished spans, oldest first, optionally by name."""
        if name is None:
            return list(self._finished)
        return [record for record in self._finished if record.name == name]
