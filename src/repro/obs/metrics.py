"""Metric primitives: counters, gauges, and streaming histograms.

A :class:`MetricsRegistry` is the single mutable store every instrumented
component writes into. All three metric kinds are deliberately minimal:

* :class:`Counter` — a monotonically increasing integer;
* :class:`Gauge` — a last-write-wins float;
* :class:`Histogram` — a *streaming* quantile sketch over non-negative
  magnitudes (durations, sizes). Samples land in log-spaced buckets, so
  p50/p90/p99 are answerable at any time without storing samples, with a
  relative error bounded by the bucket growth factor (~1% at the default
  ``growth=1.02``).

Everything here is a pure function of the observations fed in: snapshots
iterate names in sorted order and contain no wall-clock timestamps, so a
registry filled from a seeded simulation serializes byte-identically
across runs.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..errors import ObservabilityError

Number = Union[int, float]


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: Number) -> None:
        self.value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Streaming log-bucketed histogram with bounded-error quantiles.

    Values are assigned to buckets whose bounds grow geometrically by
    ``growth``; bucket ``i`` covers ``(min_value * growth**(i-1),
    min_value * growth**i]``. A quantile query walks the sparse bucket
    table and returns the geometric midpoint of the bucket holding the
    requested rank, clamped to the exact observed ``[min, max]`` — so a
    histogram fed a constant reports that constant exactly, and any
    quantile is within a factor ``sqrt(growth)`` of the true order
    statistic. Memory is O(occupied buckets), never O(samples).

    Values at or below ``min_value`` (including exact zeros, common for
    simulation-time spans inside one tick) share a dedicated zero bucket.
    """

    __slots__ = (
        "name", "growth", "min_value", "count", "total",
        "_log_growth", "_min", "_max", "_zero_count", "_buckets",
    )

    def __init__(self, name: str, growth: float = 1.02,
                 min_value: float = 1e-9) -> None:
        if growth <= 1.0:
            raise ObservabilityError("histogram growth factor must exceed 1")
        if min_value <= 0.0:
            raise ObservabilityError("histogram min_value must be positive")
        self.name = name
        self.growth = growth
        self.min_value = min_value
        self._log_growth = math.log(growth)
        self.count = 0
        self.total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._zero_count = 0
        self._buckets: Dict[int, int] = {}

    def observe(self, value: Number) -> None:
        value = float(value)
        if value < 0.0:
            raise ObservabilityError(
                f"histogram {self.name!r} observes non-negative magnitudes, "
                f"got {value}"
            )
        self.count += 1
        self.total += value
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        if value <= self.min_value:
            self._zero_count += 1
            return
        index = math.ceil(math.log(value / self.min_value) / self._log_growth)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def min(self) -> Optional[float]:
        return self._min

    @property
    def max(self) -> Optional[float]:
        return self._max

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def _bucket_estimate(self, index: int) -> float:
        return self.min_value * self.growth ** (index - 0.5)

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (``0 <= q <= 1``); None when empty."""
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must lie in [0, 1], got {q}")
        if self.count == 0 or self._min is None or self._max is None:
            return None
        # Nearest-rank position over the sorted sample, 0-indexed.
        position = q * (self.count - 1)
        cumulative = self._zero_count
        if cumulative - 1 >= position:
            # Rank falls among the sub-``min_value`` samples; the true
            # order statistic is within ``min_value`` of the observed min.
            return self._min
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative - 1 >= position:
                estimate = self._bucket_estimate(index)
                return min(max(estimate, self._min), self._max)
        return self._max

    def quantiles(self, qs: Iterable[float]) -> List[Optional[float]]:
        return [self.quantile(q) for q in qs]

    def snapshot(self) -> Dict[str, Optional[float]]:
        """Summary dict used by exporters (deterministic key order)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self._min,
            "max": self._max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """Name-keyed store of all metrics produced by one instrumented run.

    Metric names are flat dotted strings (``"framework.detections"``,
    ``"span.framework.classify"``). Accessors are get-or-create, and a
    name registered as one kind can never be re-registered as another.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_kind(self, name: str, kind: str) -> None:
        for existing_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if existing_kind != kind and name in table:
                raise ObservabilityError(
                    f"metric {name!r} already registered as a "
                    f"{existing_kind}, cannot reuse it as a {kind}"
                )

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_kind(name, "counter")
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_kind(name, "gauge")
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str, growth: float = 1.02,
                  min_value: float = 1e-9) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_kind(name, "histogram")
            metric = self._histograms[name] = Histogram(
                name, growth=growth, min_value=min_value
            )
        return metric

    def counters(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges(self) -> Dict[str, float]:
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def histograms(self) -> Dict[str, Histogram]:
        return dict(sorted(self._histograms.items()))

    def snapshot(self) -> Dict[str, dict]:
        """Deterministic full snapshot (sorted names, no timestamps)."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)
