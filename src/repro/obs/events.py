"""Structured event log replacing ad-hoc ``print`` narration.

Components emit :class:`Event` records (a kind, a simulation timestamp,
and flat key/value fields) into an :class:`EventLog`. Consumers either
subscribe a sink — :class:`ConsoleSink` renders events as text the way
``CampaignWorld.run(verbose=True)`` used to ``print`` them — or read the
bounded in-memory buffer afterwards for export.

Events carry *simulation* time only, so the log of a seeded campaign is
deterministic and participates in byte-identical telemetry exports.
"""

from __future__ import annotations

import sys
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, TextIO, Tuple

from ..errors import ObservabilityError

#: Field values are restricted to JSON-scalar types so every event is
#: exportable verbatim.
FieldValue = object

Sink = Callable[["Event"], None]


class Event:
    """One structured event."""

    __slots__ = ("kind", "time", "fields")

    def __init__(self, kind: str, time: float, fields: Dict[str, FieldValue]) -> None:
        self.kind = kind
        self.time = time
        self.fields = fields

    def to_dict(self) -> Dict[str, FieldValue]:
        """JSON-ready dict with deterministic key order."""
        return {
            "kind": self.kind,
            "time": self.time,
            "fields": {key: self.fields[key] for key in sorted(self.fields)},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event({self.kind!r}, t={self.time}, {self.fields!r})"


def render_event(event: Event) -> str:
    """One-line text rendering: ``[t=  1440m] campaign.day day=1 ...``."""
    parts = [f"[t={int(event.time):>7d}m] {event.kind}"]
    for key in sorted(event.fields):
        parts.append(f"{key}={event.fields[key]}")
    return " ".join(parts)


class ConsoleSink:
    """Sink that renders each event as one text line to a stream."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stdout

    def __call__(self, event: Event) -> None:
        self.stream.write(render_event(event) + "\n")


class EventLog:
    """Bounded buffer of events plus a fan-out to subscribed sinks."""

    def __init__(self, max_events: int = 50_000) -> None:
        if max_events <= 0:
            raise ObservabilityError("max_events must be positive")
        self.max_events = max_events
        self.n_emitted = 0
        self._events: Deque[Event] = deque(maxlen=max_events)
        self._sinks: List[Sink] = []

    def subscribe(self, sink: Sink) -> Sink:
        """Attach a sink; returns it for later :meth:`unsubscribe`."""
        self._sinks.append(sink)
        return sink

    def unsubscribe(self, sink: Sink) -> None:
        self._sinks = [existing for existing in self._sinks if existing is not sink]

    def emit(self, kind: str, time: float, **fields: FieldValue) -> Event:
        event = Event(kind, time, fields)
        self._events.append(event)
        self.n_emitted += 1
        for sink in self._sinks:
            sink(event)
        return event

    def events(self, kind: Optional[str] = None) -> List[Event]:
        """Retained events, oldest first, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def counts_by_kind(self) -> Dict[str, int]:
        """Retained-event counts per kind, sorted by kind."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return dict(sorted(counts.items()))

    def __len__(self) -> int:
        return len(self._events)
