"""Telemetry exporters: canonical JSON files and a text report view.

The JSON form is the interchange format — written by
``python -m repro campaign --export-dir`` and the benchmark harness,
validated in CI against ``docs/telemetry.schema.json``. The text form is
the human view behind ``python -m repro report --telemetry``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Union

from .instrument import Instrumentation

PathLike = Union[str, Path]

#: Identifier every v1 telemetry document carries in its ``schema`` key.
TELEMETRY_SCHEMA_ID = "repro.obs/telemetry.v1"


def write_telemetry_json(
    instrumentation: Instrumentation,
    path: PathLike,
    include_events: bool = True,
    include_spans: bool = False,
) -> Path:
    """Serialize a telemetry snapshot to ``path``; returns the path."""
    path = Path(path)
    path.write_text(
        instrumentation.telemetry_json(
            include_events=include_events, include_spans=include_spans
        ),
        encoding="utf-8",
    )
    return path


def load_telemetry(path: PathLike) -> dict:
    """Read a telemetry JSON document previously exported."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def _format_value(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_telemetry(snapshot: dict) -> str:
    """Render a telemetry snapshot dict as a text report.

    Accepts the dict form produced by
    :meth:`~repro.obs.instrument.Instrumentation.telemetry` (or loaded
    back via :func:`load_telemetry`).
    """
    lines: List[str] = []
    mode = snapshot.get("mode", "?")
    lines.append(f"telemetry report (mode={mode})")
    lines.append("=" * len(lines[0]))

    metrics = snapshot.get("metrics", {})
    counters = metrics.get("counters", {})
    lines.append("")
    lines.append("counters")
    lines.append("--------")
    if counters:
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"{name:<{width}}  {counters[name]}")
    else:
        lines.append("(none)")

    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("gauges")
        lines.append("------")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(f"{name:<{width}}  {_format_value(gauges[name])}")

    histograms = metrics.get("histograms", {})
    lines.append("")
    lines.append("histograms (count / p50 / p90 / p99 / max)")
    lines.append("------------------------------------------")
    if histograms:
        width = max(len(name) for name in histograms)
        for name in sorted(histograms):
            h = histograms[name]
            lines.append(
                f"{name:<{width}}  {h['count']:>8d}"
                f"  {_format_value(h['p50']):>10}"
                f"  {_format_value(h['p90']):>10}"
                f"  {_format_value(h['p99']):>10}"
                f"  {_format_value(h['max']):>10}"
            )
    else:
        lines.append("(none)")

    events = snapshot.get("events", {})
    by_kind = events.get("by_kind", {})
    lines.append("")
    lines.append(f"events (emitted={events.get('emitted', 0)})")
    lines.append("------")
    if by_kind:
        width = max(len(kind) for kind in by_kind)
        for kind in sorted(by_kind):
            lines.append(f"{kind:<{width}}  {by_kind[kind]}")
    else:
        lines.append("(none)")

    spans = snapshot.get("spans", {})
    lines.append("")
    lines.append(
        f"spans: started={spans.get('started', 0)} "
        f"finished={spans.get('finished', 0)}"
    )
    return "\n".join(lines)
