"""Deterministic observability: metrics, tracing spans, structured events.

The paper's model-selection argument (§4.2) is about *runtime* — a median
2.8 s classification keeps FreePhish real-time — so the reproduction
needs runtime visibility that does not break determinism. This package
provides it:

* :class:`MetricsRegistry` — counters, gauges, and streaming histograms
  (p50/p90/p99 without storing samples);
* :class:`Tracer` — nested spans keyed on the simulation clock by
  default, with an explicit wall-clock profiling mode for benchmarks;
* :class:`EventLog` — structured events replacing ad-hoc prints
  (reprolint RP203 now forbids ``print`` in library code);
* :class:`Instrumentation` — the facade threaded through
  :class:`~repro.sim.world.CampaignWorld`, with
  :data:`NULL_INSTRUMENTATION` as the allocation-free opt-out.

See ``docs/OBSERVABILITY.md`` for the metric/span catalogue and the
wall-clock-mode policy.
"""

from .events import ConsoleSink, Event, EventLog, render_event
from .export import (
    TELEMETRY_SCHEMA_ID,
    load_telemetry,
    render_telemetry,
    write_telemetry_json,
)
from .instrument import NULL_INSTRUMENTATION, Instrumentation, NullInstrumentation
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracing import SimClock, SpanRecord, Tracer, wall_clock

__all__ = [
    "ConsoleSink",
    "Event",
    "EventLog",
    "render_event",
    "TELEMETRY_SCHEMA_ID",
    "load_telemetry",
    "render_telemetry",
    "write_telemetry_json",
    "NULL_INSTRUMENTATION",
    "Instrumentation",
    "NullInstrumentation",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SimClock",
    "SpanRecord",
    "Tracer",
    "wall_clock",
]
