"""Anti-phishing discovery crawlers: CT-log monitoring and search mining.

§3 ("Increased Difficulty of Discovery") explains *why* the ecosystem is
late to FWB attacks: its two main proactive discovery channels never see
them.

* **CT-log monitors** (Phish-Hook-style) watch Certificate Transparency for
  fresh certificates with phishy common names. Self-hosted attacks show up
  the moment their DV certificate is issued; FWB attacks ride their host's
  shared wildcard certificate and *never appear*.
* **Search-index crawlers** (Jail-Phish-style) mine search engines for
  brand-adjacent pages. Only 4.1% of FWB phishing URLs were indexed at all
  (no inbound links, 44.7% noindex), so this channel misses them too.

Both crawlers emit :class:`DiscoveredHost` events that can seed blocklists;
``bench_ablation_evasion.py`` quantifies the blind spot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set

from ..simnet.tls import CTLog
from ..simnet.search import SearchIndex
from ..simnet.url import SENSITIVE_VOCABULARY
from ..sitegen.brands import BrandCatalog, default_brand_catalog


@dataclass(frozen=True)
class DiscoveredHost:
    """One host a discovery crawler flagged as a phishing candidate."""

    host: str
    channel: str          # "ct" or "search"
    discovered_at: int
    matched_token: str


class CTLogMonitor:
    """Scans new CT-log entries for suspicious common names.

    The matcher looks for brand tokens and sensitive vocabulary inside the
    certificate's common name — the standard heuristic of CT-based phishing
    classifiers (Drichel et al. 2021; Fasllija et al. 2019).
    """

    def __init__(
        self,
        ct_log: CTLog,
        catalog: Optional[BrandCatalog] = None,
        extra_tokens: Sequence[str] = SENSITIVE_VOCABULARY,
    ) -> None:
        self.ct_log = ct_log
        catalog = catalog if catalog is not None else default_brand_catalog()
        self._tokens: List[str] = sorted(
            {token for brand in catalog for token in brand.tokens() if len(token) >= 4}
            | {token for token in extra_tokens if len(token) >= 4}
        )
        self._cursor = 0
        self._seen: Set[str] = set()
        self.discovered: List[DiscoveredHost] = []

    def _match(self, common_name: str) -> Optional[str]:
        for token in self._tokens:
            if token in common_name:
                return token
        return None

    def poll(self, now: int) -> List[DiscoveredHost]:
        """Scan log entries appended since the previous poll.

        The cursor is an index into the append-only log, so back-dated
        certificates (issued with a past timestamp) are still observed.
        """
        fresh: List[DiscoveredHost] = []
        entries = self.ct_log.entries_from(self._cursor)
        self._cursor += len(entries)
        for entry in entries:
            common_name = entry.certificate.common_name
            if common_name in self._seen:
                continue
            self._seen.add(common_name)
            token = self._match(common_name)
            if token is not None:
                fresh.append(
                    DiscoveredHost(
                        host=common_name, channel="ct",
                        discovered_at=now,
                        matched_token=token,
                    )
                )
        self.discovered.extend(fresh)
        return fresh


class SearchIndexCrawler:
    """Mines the search index for brand-adjacent hosts.

    Queries every brand token (the Jail-Phish / search-engine-based
    discovery approach) and reports indexed hosts that are *not* the
    brand's own domain.
    """

    def __init__(
        self,
        search_index: SearchIndex,
        catalog: Optional[BrandCatalog] = None,
    ) -> None:
        self.search_index = search_index
        self.catalog = catalog if catalog is not None else default_brand_catalog()
        self._seen: Set[str] = set()
        self.discovered: List[DiscoveredHost] = []

    def poll(self, now: int) -> List[DiscoveredHost]:
        fresh: List[DiscoveredHost] = []
        for brand in self.catalog:
            for token in brand.tokens():
                if len(token) < 4:
                    continue
                for host in self.search_index.search_hosts(token):
                    if host in self._seen:
                        continue
                    # The brand's own web presence: exactly its registrable
                    # domain or a subdomain of it (a brand token smuggled
                    # into a *different* domain's host is the attack case).
                    legit = brand.legitimate_domain
                    if host == legit or host.endswith("." + legit):
                        continue
                    self._seen.add(host)
                    fresh.append(
                        DiscoveredHost(
                            host=host, channel="search",
                            discovered_at=now, matched_token=token,
                        )
                    )
        self.discovered.extend(fresh)
        return fresh


@dataclass
class DiscoveryReport:
    """How much of each attack population the proactive channels found."""

    n_fwb_attacks: int
    n_self_hosted_attacks: int
    fwb_found: int
    self_hosted_found: int
    events: List[DiscoveredHost] = field(default_factory=list)

    @property
    def fwb_discovery_rate(self) -> float:
        return self.fwb_found / self.n_fwb_attacks if self.n_fwb_attacks else 0.0

    @property
    def self_hosted_discovery_rate(self) -> float:
        return (
            self.self_hosted_found / self.n_self_hosted_attacks
            if self.n_self_hosted_attacks else 0.0
        )


def measure_discovery(
    web,
    fwb_hosts: Iterable[str],
    self_hosted_hosts: Iterable[str],
    now: int,
    catalog: Optional[BrandCatalog] = None,
) -> DiscoveryReport:
    """Run both crawlers and attribute discoveries to the two populations."""
    fwb_set = {h.lower() for h in fwb_hosts}
    self_set = {h.lower() for h in self_hosted_hosts}
    ct_monitor = CTLogMonitor(web.ct_log, catalog)
    crawler = SearchIndexCrawler(web.search_index, catalog)
    events = ct_monitor.poll(now) + crawler.poll(now)
    found_hosts = {event.host for event in events}
    return DiscoveryReport(
        n_fwb_attacks=len(fwb_set),
        n_self_hosted_attacks=len(self_set),
        fwb_found=len(found_hosts & fwb_set),
        self_hosted_found=len(found_hosts & self_set),
        events=events,
    )
