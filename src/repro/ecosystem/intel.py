"""Observable threat-intel signals and the canonical suspicion score.

Every anti-phishing entity in the simulation — VirusTotal engines,
blocklists, platform moderation, registrar desks — evaluates URLs through
the signals gathered here. The signals are exactly the heuristics the paper
says the ecosystem leans on, and exactly the ones FWB hosting subverts:

==========================  ==============================  ================
signal                      self-hosted phishing            FWB phishing
==========================  ==============================  ================
domain age                  days (fresh registration)       years (FWB apex)
TLD                         cheap (.xyz/.top/...)           .com (14 of 17)
CT-log appearance           yes (fresh DV cert)             no (shared cert)
certificate level           DV or none                      OV / EV
search-index presence       often                           4.1% only
credential fields           on-page                         often displaced
kit markup signature        yes                             builder template
==========================  ==============================  ================

``suspicion_score`` folds the signals into [0, 1]; entity behaviour models
map that score to (detect?, delay) outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..errors import FetchError
from ..simnet.browser import Browser, PageSnapshot
from ..simnet.tls import ValidationLevel
from ..simnet.url import URL, count_sensitive_words
from ..simnet.web import Web
from ..sitegen.names import CHEAP_TLDS


@dataclass
class UrlIntel:
    """Signals an anti-phishing entity can observe about one URL."""

    url: URL
    reachable: bool = False
    domain_age_days: Optional[float] = None
    cheap_tld: bool = False
    com_tld: bool = False
    https: bool = False
    cert_level: Optional[ValidationLevel] = None
    in_ct_log: bool = False
    indexed: bool = False
    has_credential_form: bool = False
    n_credential_inputs: int = 0
    sensitive_url_words: int = 0
    brand_title_mismatch: bool = False
    hidden_elements: bool = False
    noindex: bool = False
    external_iframe: bool = False
    malicious_download: bool = False
    download_detections: int = 0
    linkout_button: bool = False
    kit_markup: bool = False
    is_fwb: bool = False
    fwb_name: Optional[str] = None
    fwb_scrutiny: float = 1.0


#: Weights for the canonical suspicion score. Positive values raise
#: suspicion; negative values are the trust signals FWB attacks inherit.
DEFAULT_WEIGHTS: Dict[str, float] = {
    "fresh_domain": 0.34,       # age < 30 days
    "young_domain": 0.18,       # age < 365 days
    "cheap_tld": 0.22,
    "no_https": 0.10,
    "dv_cert": 0.10,
    "in_ct_log": 0.08,
    "credential_form": 0.30,
    "brand_title_mismatch": 0.22,
    "sensitive_url_words": 0.05,  # per word, capped at 3
    "kit_markup": 0.18,
    "malicious_download": 0.26,
    "external_iframe": 0.07,
    "linkout_button": 0.10,
    "hidden_elements": 0.08,
    "old_domain_trust": -0.30,  # age > 5 years
    "ov_ev_cert_trust": -0.12,
    "indexed_trust": -0.02,
}


def gather_intel(web: Web, browser: Browser, url: URL, now: int) -> UrlIntel:
    """Collect everything an external scanner can observe about ``url``."""
    intel = UrlIntel(url=url)
    whois = web.whois.lookup(url, now)
    if whois is not None:
        intel.domain_age_days = whois.age_days
    intel.cheap_tld = url.tld in CHEAP_TLDS
    intel.com_tld = url.tld == "com"
    intel.https = url.scheme == "https"
    intel.in_ct_log = web.ct_log.contains_host(url.host)
    intel.indexed = web.search_index.is_indexed(url)
    service = web.fwb_for(url)
    if service is not None:
        intel.is_fwb = True
        intel.fwb_name = service.name
        intel.fwb_scrutiny = service.scrutiny

    try:
        snapshot = browser.snapshot(url, now)
    except FetchError:
        return intel
    intel.reachable = True
    if snapshot.certificate is not None:
        intel.cert_level = snapshot.certificate.level

    document = snapshot.document
    credential_inputs = document.credential_inputs()
    intel.n_credential_inputs = len(credential_inputs)
    intel.has_credential_form = bool(document.password_inputs()) or len(credential_inputs) >= 2
    intel.sensitive_url_words = count_sensitive_words(url)
    intel.hidden_elements = document.has_hidden_elements()
    intel.noindex = document.has_noindex()
    intel.external_iframe = any(
        src.host != url.host for src, _markup in snapshot.iframe_contents
    )
    if snapshot.downloads:
        detections = max(asset.vt_detections for asset in snapshot.downloads)
        intel.download_detections = detections
        intel.malicious_download = detections >= 4
    intel.kit_markup = (
        "kit-panel" in snapshot.markup or "gate.php" in snapshot.markup
    )
    # Two-step shape: a page without credential fields whose main content
    # is an outbound call-to-action button.
    if not intel.has_credential_form and snapshot.outbound_links:
        for anchor in document.links():
            classes = " ".join(anchor.classes).lower()
            if "btn" in classes or "button" in classes:
                href = anchor.get("href")
                if href.startswith(("http://", "https://")) and url.host not in href:
                    intel.linkout_button = True
                    break

    title = document.title.lower()
    host_and_path = (url.host + url.path).lower()
    # Crude but effective: a sign-in title naming an organization whose
    # name does not appear in the serving host.
    if ("sign in" in title or "login" in title) and title:
        head_token = title.split()[0].strip(".,-")
        if len(head_token) >= 4 and head_token not in url.registered_domain:
            intel.brand_title_mismatch = True
    _ = host_and_path
    return intel


def suspicion_score(
    intel: UrlIntel, weights: Optional[Dict[str, float]] = None
) -> float:
    """Fold intel signals into a suspicion score in [0, 1].

    Unreachable URLs score 0 (nothing to analyse). The score is linear in
    the weighted signals, shifted by a small base rate and clipped.
    """
    w = DEFAULT_WEIGHTS if weights is None else weights

    def weight(name: str) -> float:
        return w.get(name, 0.0)

    if not intel.reachable:
        return 0.0
    score = 0.05  # base prior: the URL arrived via an abuse-prone channel
    age = intel.domain_age_days
    if age is not None:
        if age < 30:
            score += weight("fresh_domain")
        elif age < 365:
            score += weight("young_domain")
        elif age > 5 * 365:
            score += weight("old_domain_trust")
    if intel.cheap_tld:
        score += weight("cheap_tld")
    if not intel.https:
        score += weight("no_https")
    if intel.cert_level is ValidationLevel.DV:
        score += weight("dv_cert")
    elif intel.cert_level in (ValidationLevel.OV, ValidationLevel.EV):
        score += weight("ov_ev_cert_trust")
    if intel.in_ct_log:
        score += weight("in_ct_log")
    if intel.indexed:
        score += weight("indexed_trust")
    if intel.has_credential_form:
        score += weight("credential_form")
    if intel.brand_title_mismatch:
        score += weight("brand_title_mismatch")
    score += weight("sensitive_url_words") * min(intel.sensitive_url_words, 3)
    if intel.kit_markup:
        score += weight("kit_markup")
    if intel.malicious_download:
        score += weight("malicious_download")
    if intel.external_iframe:
        score += weight("external_iframe")
    if intel.linkout_button:
        score += weight("linkout_button")
    if intel.hidden_elements:
        score += weight("hidden_elements")
    # Soft saturation: additive evidence has diminishing returns, so a
    # loaded kit lands around 0.8-0.9 rather than pinning the scale.
    if score <= 0.0:
        return 0.0
    return float(1.0 - np.exp(-1.35 * score))


class IntelService:
    """Caches intel per (url, coarse time bucket) for the ecosystem."""

    def __init__(self, web: Web, browser: Optional[Browser] = None,
                 cache_bucket_minutes: int = 24 * 60) -> None:
        self.web = web
        self.browser = browser if browser is not None else Browser(web)
        self.cache_bucket_minutes = cache_bucket_minutes
        self._cache: Dict[tuple, UrlIntel] = {}

    def intel_for(self, url: URL, now: int) -> UrlIntel:
        key = (str(url), now // self.cache_bucket_minutes)
        cached = self._cache.get(key)
        if cached is None:
            cached = gather_intel(self.web, self.browser, url, now)
            self._cache[key] = cached
        return cached

    def suspicion(self, url: URL, now: int,
                  weights: Optional[Dict[str, float]] = None) -> float:
        return suspicion_score(self.intel_for(url, now), weights)
