"""Blocklist data sharing ("Friends of PhishTank"-style feeds).

§4.4 notes that PhishTank and OpenPhish contribute their data to many
anti-phishing tools and browsers, and APWG's eCrimeX shares with
organizational defenders. :class:`FeedNetwork` models those pipes: a
subscriber blocklist ingests every entry a publisher lists, after a
propagation lag.

This enables a policy experiment the paper motivates but could not run:
*would better feed-sharing close the FWB gap?* ``sharing_experiment``
answers it — sharing lifts every subscriber, but FWB coverage stays far
below even the unshared self-hosted baseline, because the community lists
discover few FWB attacks to share in the first place (the gap is in
discovery, not distribution). See ``benchmarks/bench_feed_sharing.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..simnet.url import URL, parse_url
from .blocklists import Blocklist


@dataclass(frozen=True)
class FeedLink:
    """One sharing pipe: publisher's entries flow into the subscriber."""

    publisher: str
    subscriber: str
    #: Minutes between the publisher listing a URL and the subscriber
    #: serving it (feed polling + ingestion pipelines).
    propagation_minutes: int = 60


class FeedNetwork:
    """A set of sharing pipes over named blocklists.

    The network does not mutate subscribers' own verdicts; it overlays
    shared listings, so ``effective_listing_time`` returns the earlier of a
    list's native decision and anything it received via feeds.
    """

    def __init__(
        self,
        blocklists: Dict[str, Blocklist],
        links: Sequence[FeedLink] = (),
    ) -> None:
        unknown = {
            name
            for link in links
            for name in (link.publisher, link.subscriber)
            if name not in blocklists
        }
        if unknown:
            raise KeyError(f"feed links reference unknown blocklists: {unknown}")
        self.blocklists = dict(blocklists)
        self.links = list(links)

    def effective_listing_time(self, name: str, url: URL) -> Optional[int]:
        """Listing time for ``name`` including everything shared to it."""
        times: List[int] = []
        native = self.blocklists[name].listing_time(url)
        if native is not None:
            times.append(native)
        for link in self.links:
            if link.subscriber != name:
                continue
            upstream = self.blocklists[link.publisher].listing_time(url)
            if upstream is not None:
                times.append(upstream + link.propagation_minutes)
        return min(times) if times else None

    def effective_contains(self, name: str, url: URL, now: int) -> bool:
        when = self.effective_listing_time(name, url)
        return when is not None and when <= now


#: The sharing topology §4.4 describes: the community lists feed GSB-class
#: consumers and each other's downstream tooling; eCrimeX feeds defenders.
DEFAULT_FEED_LINKS: Tuple[FeedLink, ...] = (
    FeedLink("phishtank", "gsb", propagation_minutes=90),
    FeedLink("openphish", "gsb", propagation_minutes=90),
    FeedLink("phishtank", "ecrimex", propagation_minutes=120),
    FeedLink("openphish", "ecrimex", propagation_minutes=120),
)


def sharing_experiment(
    blocklists: Dict[str, Blocklist],
    urls: Sequence[URL],
    horizon_minutes: int,
    links: Sequence[FeedLink] = DEFAULT_FEED_LINKS,
) -> Dict[str, Dict[str, float]]:
    """Coverage with and without feed sharing, per blocklist.

    Every URL must already have been ``observe``d by every blocklist;
    a URL counts as covered when its (effective) listing time falls at or
    before the absolute ``horizon_minutes``. Returns
    ``{name: {"native": cov, "with_sharing": cov}}``.
    """
    network = FeedNetwork(blocklists, links)
    out: Dict[str, Dict[str, float]] = {}
    n = max(len(urls), 1)
    for name, blocklist in blocklists.items():
        native = sum(
            1 for url in urls
            if (t := blocklist.listing_time(url)) is not None and t <= horizon_minutes
        )
        shared = sum(
            1 for url in urls
            if (t := network.effective_listing_time(name, url)) is not None
            and t <= horizon_minutes
        )
        out[name] = {"native": native / n, "with_sharing": shared / n}
    return out
