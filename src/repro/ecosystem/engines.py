"""The third-party detection-engine fleet (VirusTotal's ~76 engines).

Each :class:`DetectionEngine` is a heuristic scanner with its own weight
profile (a perturbation of the canonical suspicion weights), sensitivity,
and reaction latency. Engines fall into archetypes mirroring the real
fleet's composition: a few aggressive URL-reputation vendors, a midfield of
generic heuristic scanners, and a long tail of sluggish or narrowly focused
engines. The archetype mix is what produces Figure 7's detection CDF —
self-hosted phishing accumulating a median of ~9 detections in a week while
FWB attacks plateau around ~4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import SeedBank, _stable_hash
from ..errors import ConfigError
from .intel import DEFAULT_WEIGHTS, UrlIntel, suspicion_score


@dataclass(frozen=True)
class EngineArchetype:
    """A class of engines sharing behavioural parameters."""

    label: str
    #: Multiplies the suspicion score before thresholding.
    sensitivity: float
    #: Score (after sensitivity) above which detection becomes likely.
    threshold: float
    #: Softness of the detection logistic around the threshold. Real
    #: engines are *weak* individual classifiers; a wide temperature keeps
    #: the per-engine response shallow so the fleet disagrees, as VT
    #: engines demonstrably do (Peng et al. 2019).
    temperature: float
    #: Detection-latency median in minutes, for a score at threshold.
    median_latency_minutes: float
    latency_sigma: float
    #: Relative jitter applied to each weight in the engine's profile.
    weight_jitter: float


#: The fleet composition: (archetype, count). Total = 76 engines.
FLEET_MIX: Tuple[Tuple[EngineArchetype, int], ...] = (
    (EngineArchetype("aggressive", 0.85, 0.78, 0.32, 120.0, 1.0, 0.20), 8),
    (EngineArchetype("mainstream", 0.77, 1.08, 0.32, 300.0, 1.1, 0.25), 22),
    (EngineArchetype("conservative", 0.68, 1.40, 0.35, 700.0, 1.2, 0.30), 28),
    (EngineArchetype("narrow", 0.60, 1.60, 0.35, 1500.0, 1.3, 0.40), 18),
)


class DetectionEngine:
    """One heuristic anti-phishing engine.

    ``evaluate`` is deterministic per (engine, URL): the same URL always
    yields the same verdict and latency from the same engine, as real
    engines re-serve cached verdicts.
    """

    def __init__(
        self,
        name: str,
        archetype: EngineArchetype,
        rng: np.random.Generator,
    ) -> None:
        self.name = name
        self.archetype = archetype
        # Perturb the canonical weights into an engine-specific profile.
        self.weights: Dict[str, float] = {
            key: value * float(1.0 + archetype.weight_jitter * rng.normal())
            for key, value in DEFAULT_WEIGHTS.items()
        }
        self._seed = int(rng.integers(0, 2 ** 63 - 1))
        self._verdicts: Dict[str, Tuple[bool, Optional[int]]] = {}

    def _url_rng(self, url_text: str) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence([self._seed, _stable_hash(url_text)])
        )

    def evaluate(self, intel: UrlIntel, first_seen: int) -> Tuple[bool, Optional[int]]:
        """(detects, detection_time) for a URL first observed at ``first_seen``.

        ``detection_time`` is absolute simulation minutes; ``None`` when the
        engine never flags the URL.
        """
        key = str(intel.url)
        if key in self._verdicts:
            return self._verdicts[key]
        rng = self._url_rng(key)
        score = suspicion_score(intel, self.weights) * self.archetype.sensitivity
        margin = score - self.archetype.threshold
        # Smooth probability around the threshold: engines near their
        # operating point behave inconsistently across URLs.
        probability = 1.0 / (1.0 + np.exp(-margin / self.archetype.temperature))
        # Engines do not fire on signal-free URLs: the logistic's tail is
        # gated so a zero-suspicion page cannot accumulate detections.
        probability *= min(1.0, score / 0.10)
        if rng.random() >= probability:
            verdict: Tuple[bool, Optional[int]] = (False, None)
        else:
            # Stronger signals are caught sooner.
            stretch = max(0.25, 1.0 - margin * 1.5)
            median = self.archetype.median_latency_minutes * stretch
            latency = rng.lognormal(np.log(median), self.archetype.latency_sigma)
            verdict = (True, first_seen + max(2, int(round(latency))))
        self._verdicts[key] = verdict
        return verdict


def default_engine_fleet(
    rng_factory: Optional[SeedBank] = None,
) -> List[DetectionEngine]:
    """Build the 76-engine fleet with deterministic per-engine profiles."""
    factory = rng_factory if rng_factory is not None else SeedBank()
    fleet: List[DetectionEngine] = []
    for archetype, count in FLEET_MIX:
        for index in range(count):
            name = f"{archetype.label}-{index:02d}"
            fleet.append(
                DetectionEngine(
                    name=name,
                    archetype=archetype,
                    rng=factory.child(f"ecosystem.engine.{name}"),
                )
            )
    if len(fleet) != 76:
        raise ConfigError(f"expected 76 engines, built {len(fleet)}")
    return fleet
