"""The four anti-phishing blocklists (GSB, PhishTank, OpenPhish, eCrimeX).

Each blocklist combines three discovery channels whose availability differs
sharply between self-hosted and FWB attacks:

* **heuristic scanning** of URLs observed in the wild — driven by the
  suspicion score, modulated by per-FWB scrutiny (services with heavy abuse
  history attract dedicated rules, §5.1);
* **CT-log monitoring** — a bonus for URLs whose host appeared in the
  Certificate Transparency log (self-hosted DV certs only);
* **search-index crawling** — a bonus for indexed URLs (FWB pages are
  almost never indexed, §3).

Listing delays are heavy-tailed log-normals whose median stretches as
suspicion falls, producing both the coverage gap and the response-time gap
of Table 3 from a single mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import SeedBank, _stable_hash
from ..errors import ConfigError
from ..obs.instrument import NULL_INSTRUMENTATION, Instrumentation
from ..simnet.url import URL
from .intel import IntelService, UrlIntel, suspicion_score


@dataclass(frozen=True)
class BlocklistEntry:
    url: str
    listed_at: int


@dataclass(frozen=True)
class BlocklistBehavior:
    """Behaviour parameters for one blocklist."""

    #: Upper bound on listing probability for a maximally suspicious URL.
    reach: float
    #: Convexity of the suspicion → probability mapping.
    gamma: float
    #: Exponent on the per-FWB scrutiny modifier.
    rho: float
    #: Additive probability when the host appeared in the CT log.
    ct_bonus: float
    #: Additive probability when the URL is search-indexed.
    index_bonus: float
    #: Listing-delay median (minutes) at suspicion 1.0.
    base_median_minutes: float
    #: Delay stretches as (1 / suspicion)^stretch.
    stretch: float
    sigma: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.reach <= 1.0:
            raise ConfigError("reach must lie in [0, 1]")
        if self.base_median_minutes <= 0:
            raise ConfigError("base_median_minutes must be positive")


class Blocklist:
    """One blocklist with URL-level deterministic verdicts."""

    def __init__(
        self,
        name: str,
        behavior: BlocklistBehavior,
        intel_service: IntelService,
        seed: int,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.name = name
        self.behavior = behavior
        self.intel_service = intel_service
        self._seed = seed
        #: url -> listing time (absolute minutes), None = never lists.
        self._listing_time: Dict[str, Optional[int]] = {}
        self._entries: List[BlocklistEntry] = []
        instr = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        self._c_observed = instr.counter(f"blocklist.{name}.observed")
        self._c_listed = instr.counter(f"blocklist.{name}.listed")

    # -- verdicts -------------------------------------------------------------

    def _url_rng(self, url_text: str) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence([self._seed, _stable_hash(url_text)])
        )

    def observe(self, url: URL, now: int) -> None:
        """Tell the blocklist a URL exists (first sighting in the wild).

        Decides — deterministically per URL — whether and when the list
        will carry it.
        """
        key = str(url)
        if key in self._listing_time:
            return
        self._c_observed.inc()
        intel = self.intel_service.intel_for(url, now)
        score = suspicion_score(intel)
        if score <= 0.0:
            self._listing_time[key] = None
            return
        behavior = self.behavior
        effective = score
        if intel.is_fwb:
            effective *= intel.fwb_scrutiny ** behavior.rho
        probability = behavior.reach * min(effective, 1.0) ** behavior.gamma
        if intel.in_ct_log:
            probability += behavior.ct_bonus * score
        if intel.indexed:
            probability += behavior.index_bonus * score
        probability = min(probability, 0.98)
        rng = self._url_rng(key)
        if rng.random() >= probability:
            self._listing_time[key] = None
            return
        median = behavior.base_median_minutes * (1.0 / max(score, 0.05)) ** behavior.stretch
        delay = rng.lognormal(np.log(median), behavior.sigma)
        listed_at = now + max(2, int(round(delay)))
        self._listing_time[key] = listed_at
        self._entries.append(BlocklistEntry(url=key, listed_at=listed_at))
        self._c_listed.inc()

    def contains(self, url: URL, now: int) -> bool:
        """API check: is the URL on the list at time ``now``? (§4.4 poll)."""
        listed_at = self._listing_time.get(str(url))
        return listed_at is not None and listed_at <= now

    def listing_time(self, url: URL) -> Optional[int]:
        return self._listing_time.get(str(url))

    def entries(self) -> List[BlocklistEntry]:
        return list(self._entries)


#: Behaviour calibrated to Table 3 (coverage % / median response hh:mm):
#:   GSB       FWB 18.4% / 06:01   self-hosted 74.2% / 00:51
#:   PhishTank FWB  4.1% / 07:11   self-hosted 17.4% / 02:30
#:   OpenPhish FWB 11.7% / 13:20   self-hosted 30.5% / 02:21
#:   eCrimeX   FWB 32.9% / 08:54   self-hosted 47.9% / 04:26
DEFAULT_BEHAVIORS: Dict[str, BlocklistBehavior] = {
    "gsb": BlocklistBehavior(
        reach=0.82, gamma=1.30, rho=0.80, ct_bonus=0.25, index_bonus=0.10,
        base_median_minutes=42.0, stretch=1.35, sigma=1.3,
    ),
    "phishtank": BlocklistBehavior(
        reach=0.17, gamma=1.30, rho=0.85, ct_bonus=0.08, index_bonus=0.06,
        base_median_minutes=140.0, stretch=0.85, sigma=1.4,
    ),
    "openphish": BlocklistBehavior(
        reach=0.40, gamma=1.10, rho=0.55, ct_bonus=0.12, index_bonus=0.06,
        base_median_minutes=110.0, stretch=1.75, sigma=1.5,
    ),
    "ecrimex": BlocklistBehavior(
        reach=0.50, gamma=0.33, rho=0.10, ct_bonus=0.00, index_bonus=0.05,
        base_median_minutes=250.0, stretch=0.65, sigma=1.4,
    ),
}

BLOCKLIST_NAMES = ("gsb", "phishtank", "openphish", "ecrimex")


def default_blocklists(
    intel_service: IntelService,
    seed: int = 0,
    behaviors: Optional[Dict[str, BlocklistBehavior]] = None,
    instrumentation: Optional[Instrumentation] = None,
) -> Dict[str, Blocklist]:
    """Build the four blocklists with Table-3-calibrated behaviour."""
    table = dict(DEFAULT_BEHAVIORS)
    if behaviors:
        table.update(behaviors)
    bank = SeedBank(seed)
    return {
        name: Blocklist(
            name=name,
            behavior=table[name],
            intel_service=intel_service,
            seed=bank.child_seed(f"blocklist.{name}"),
            instrumentation=instrumentation,
        )
        for name in BLOCKLIST_NAMES
    }
