"""VirusTotal-style aggregation of the engine fleet.

FreePhish scans every URL through VirusTotal every 10 minutes for up to a
week (§4.4), counting how many of the 76 engines flag it at each point.
A scan at time ``t`` reports the engines whose (cached) detection time has
passed — detections accumulate over the week, producing Figures 7 and 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..obs.instrument import NULL_INSTRUMENTATION, Instrumentation
from ..simnet.url import URL
from .engines import DetectionEngine
from .intel import IntelService, UrlIntel


@dataclass
class ScanReport:
    """Result of one VirusTotal scan of one URL."""

    url: URL
    scanned_at: int
    positives: int
    total_engines: int
    engines: List[str] = field(default_factory=list)

    @property
    def detection_ratio(self) -> float:
        return self.positives / self.total_engines if self.total_engines else 0.0


class VirusTotal:
    """Aggregator over the detection-engine fleet."""

    def __init__(
        self,
        engines: Sequence[DetectionEngine],
        intel_service: IntelService,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.engines = list(engines)
        self.intel_service = intel_service
        #: URL -> first time VT ever saw it (engines date latencies from it).
        self._first_seen: Dict[str, int] = {}
        self._intel_at_first_seen: Dict[str, UrlIntel] = {}
        instr = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        self._c_scans = instr.counter("vt.scans")
        self._c_urls = instr.counter("vt.urls_registered")

    @property
    def n_engines(self) -> int:
        return len(self.engines)

    def _register(self, url: URL, now: int) -> UrlIntel:
        key = str(url)
        if key not in self._first_seen:
            self._first_seen[key] = now
            self._intel_at_first_seen[key] = self.intel_service.intel_for(url, now)
            self._c_urls.inc()
        return self._intel_at_first_seen[key]

    def scan(self, url: URL, now: int) -> ScanReport:
        """Scan ``url`` and report current engine positives."""
        self._c_scans.inc()
        intel = self._register(url, now)
        first_seen = self._first_seen[str(url)]
        positives: List[str] = []
        for engine in self.engines:
            detects, detection_time = engine.evaluate(intel, first_seen)
            if detects and detection_time is not None and detection_time <= now:
                positives.append(engine.name)
        return ScanReport(
            url=url,
            scanned_at=now,
            positives=len(positives),
            total_engines=self.n_engines,
            engines=positives,
        )

    def detections_at(self, url: URL, now: int) -> int:
        return self.scan(url, now).positives

    def final_detections(self, url: URL, horizon: int) -> int:
        """Detections the URL will have accumulated by ``horizon``."""
        return self.scan(url, horizon).positives

    def scan_file_detections(self, vt_detections: int) -> int:
        """File scans report the payload's precomputed engine count."""
        return int(vt_detections)
