"""Anti-phishing ecosystem: engines, blocklists, aggregators, abuse desks.

Detection here is **emergent**: every entity scores URLs through
:mod:`repro.ecosystem.intel` signals (domain age, TLD, CT-log presence,
credential fields, banner obfuscation, iframes, ...) that FWB hosting
systematically weakens — reproducing the paper's coverage and response-time
gaps from mechanism rather than from hard-coded outcomes.
"""

from .intel import UrlIntel, IntelService, suspicion_score
from .engines import DetectionEngine, default_engine_fleet
from .virustotal import VirusTotal, ScanReport
from .blocklists import Blocklist, BlocklistEntry, default_blocklists
from .takedown import AbuseDesk, RegistrarDesk, ReportOutcome
from .feeds import FeedLink, FeedNetwork, sharing_experiment
from .crawlers import (
    CTLogMonitor,
    DiscoveredHost,
    DiscoveryReport,
    SearchIndexCrawler,
    measure_discovery,
)

__all__ = [
    "UrlIntel",
    "IntelService",
    "suspicion_score",
    "DetectionEngine",
    "default_engine_fleet",
    "VirusTotal",
    "ScanReport",
    "Blocklist",
    "BlocklistEntry",
    "default_blocklists",
    "AbuseDesk",
    "RegistrarDesk",
    "ReportOutcome",
    "CTLogMonitor",
    "DiscoveredHost",
    "DiscoveryReport",
    "SearchIndexCrawler",
    "measure_discovery",
    "FeedLink",
    "FeedNetwork",
    "sharing_experiment",
]
