"""Abuse desks: FWB takedown handling and registrar takedowns.

FreePhish reports every detected URL to its hosting service (§4.3); §5.3
measures how each FWB responds. The paper finds wildly varying behaviour —
Weebly/000webhost/Wix remove ~60% of reported sites within a couple of
hours, while WordPress/GoDaddy/Firebase never even acknowledge reports.

:class:`AbuseDesk` realises each service's
:class:`~repro.simnet.fwb.FWBPolicy`; :class:`RegistrarDesk` models
takedowns of self-hosted phishing domains (Table 3's "Hosting domain" row:
77.5% / median 3h47m for self-hosted attacks). Registrar action is
suspicion-gated like every other entity — an obvious kit on a fresh cheap
domain dies quickly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

import numpy as np

from ..config import _stable_hash
from ..obs.instrument import NULL_INSTRUMENTATION, Instrumentation
from ..simnet.fwb import ReportResponsiveness
from ..simnet.hosting import FWBHostingProvider, SelfHostingProvider
from ..simnet.url import URL
from ..simnet.web import Web
from .intel import IntelService


class ReportOutcome(str, Enum):
    """How an abuse desk reacted to a report (paper §5.3 categories)."""

    NO_RESPONSE = "no_response"
    ACKNOWLEDGED = "acknowledged"            # ticket opened, no follow-up
    RESOLVED = "resolved"                    # follow-up + site removal


@dataclass
class TakedownTicket:
    """Tracking record for one reported URL."""

    url: str
    reported_at: int
    outcome: ReportOutcome
    removal_at: Optional[int] = None


class AbuseDesk:
    """The abuse-handling function of one FWB service."""

    def __init__(
        self,
        provider: FWBHostingProvider,
        web: Web,
        rng: np.random.Generator,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.provider = provider
        self.web = web
        self.rng = rng
        self.tickets: Dict[str, TakedownTicket] = {}
        self._pending: List[TakedownTicket] = []
        instr = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        # Aggregated across desks; per-FWB response splits live in
        # ReportingModule.response_rates_by_fwb().
        self._c_reports = instr.counter("takedown.reports")
        self._c_scheduled = instr.counter("takedown.removals_scheduled")
        self._c_removed = instr.counter("takedown.removals_applied")

    @property
    def policy(self):
        return self.provider.service.policy

    def receive_report(self, url: URL, now: int) -> TakedownTicket:
        """Process an abuse report; idempotent per URL."""
        key = str(url)
        existing = self.tickets.get(key)
        if existing is not None:
            return existing
        self._c_reports.inc()
        policy = self.policy
        removes = self.rng.random() < policy.removal_rate
        if removes:
            delay = self.rng.lognormal(
                np.log(max(policy.median_removal_minutes, 2)), 0.9
            )
            removal_at = now + max(2, int(round(delay)))
            outcome = (
                ReportOutcome.RESOLVED
                if policy.responsiveness == ReportResponsiveness.RESPONSIVE
                and self.rng.random() < policy.response_rate
                else ReportOutcome.ACKNOWLEDGED
                if self.rng.random() < policy.response_rate
                else ReportOutcome.NO_RESPONSE
            )
        else:
            removal_at = None
            outcome = (
                ReportOutcome.ACKNOWLEDGED
                if self.rng.random() < policy.response_rate
                else ReportOutcome.NO_RESPONSE
            )
        ticket = TakedownTicket(
            url=key, reported_at=now, outcome=outcome, removal_at=removal_at
        )
        self.tickets[key] = ticket
        if removal_at is not None:
            self._pending.append(ticket)
            self._c_scheduled.inc()
        return ticket

    def apply_takedowns(self, now: int) -> int:
        """Execute removals whose time has come; returns count removed."""
        fired = 0
        remaining: List[TakedownTicket] = []
        for ticket in self._pending:
            if ticket.removal_at is not None and ticket.removal_at <= now:
                from ..simnet.url import parse_url

                url = parse_url(ticket.url)
                if self.web.take_down(url, ticket.removal_at):
                    fired += 1
            else:
                remaining.append(ticket)
        self._pending = remaining
        self._c_removed.inc(fired)
        return fired


class RegistrarDesk:
    """Registrar/host takedowns of self-hosted phishing domains.

    Unlike FWB desks, registrars act on their own monitoring plus abuse
    feeds, so action is suspicion-gated rather than report-gated:
    ``observe`` decides the domain's fate the moment the ecosystem first
    sees it.
    """

    def __init__(
        self,
        provider: SelfHostingProvider,
        web: Web,
        intel_service: IntelService,
        seed: int,
        reach: float = 0.93,
        gamma: float = 1.0,
        base_median_minutes: float = 160.0,
        stretch: float = 1.0,
        sigma: float = 1.1,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.provider = provider
        self.web = web
        self.intel_service = intel_service
        self._seed = seed
        self.reach = reach
        self.gamma = gamma
        self.base_median_minutes = base_median_minutes
        self.stretch = stretch
        self.sigma = sigma
        self._decisions: Dict[str, Optional[int]] = {}
        self._pending: List[tuple] = []
        instr = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        self._c_observed = instr.counter("registrar.observed")
        self._c_scheduled = instr.counter("registrar.removals_scheduled")
        self._c_removed = instr.counter("registrar.removals_applied")

    def observe(self, url: URL, now: int) -> None:
        key = str(url)
        if key in self._decisions:
            return
        self._c_observed.inc()
        score = self.intel_service.suspicion(url, now)
        rng = np.random.default_rng(
            np.random.SeedSequence([self._seed, _stable_hash(key)])
        )
        probability = self.reach * max(score, 0.0) ** self.gamma
        if rng.random() >= probability:
            self._decisions[key] = None
            return
        median = self.base_median_minutes * (1.0 / max(score, 0.05)) ** self.stretch
        delay = rng.lognormal(np.log(median), self.sigma)
        removal_at = now + max(5, int(round(delay)))
        self._decisions[key] = removal_at
        self._pending.append((url, removal_at))
        self._c_scheduled.inc()

    def removal_time(self, url: URL) -> Optional[int]:
        return self._decisions.get(str(url))

    def apply_takedowns(self, now: int) -> int:
        fired = 0
        remaining = []
        for url, removal_at in self._pending:
            if removal_at <= now:
                if self.web.take_down(url, removal_at):
                    fired += 1
            else:
                remaining.append((url, removal_at))
        self._pending = remaining
        self._c_removed.inc(fired)
        return fired
