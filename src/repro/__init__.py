"""FreePhish reproduction library.

A full-stack reproduction of *"Phishing in the Free Waters: A Study of
Phishing Attacks Created using Free Website Building Services"* (IMC 2023):
the FreePhish detection framework, every substrate it depends on (simulated
web, social platforms, anti-phishing ecosystem, from-scratch ML), and the
measurement campaigns behind the paper's tables and figures.

Quick start::

    from repro import CampaignWorld, SimulationConfig

    config = SimulationConfig(seed=1, duration_days=5, target_fwb_phishing=300)
    world = CampaignWorld(config)
    result = world.run()

    from repro.analysis import build_table3, render_rows
    print(render_rows(build_table3(result.timelines)))
"""

from .config import (
    RngFactory,
    SeedBank,
    SimulationConfig,
    minutes_to_hhmm,
    hhmm_to_minutes,
)
from .errors import ReproError
from .obs import (
    EventLog,
    Instrumentation,
    MetricsRegistry,
    NULL_INSTRUMENTATION,
    NullInstrumentation,
    Tracer,
    render_telemetry,
    write_telemetry_json,
)
from .core.classifier import FreePhishClassifier
from .core.extension import FreePhishExtension, NavigationVerdict
from .core.framework import FreePhish
from .sim.world import CampaignWorld, CampaignResult
from .sim.groundtruth import build_ground_truth, GroundTruthDataset
from .sim.scenario import HistoricalScenario
from .serve import ServedFrom, ServedVerdict, VerdictService
from .simnet.web import Web

__version__ = "1.0.0"

__all__ = [
    "RngFactory",
    "SeedBank",
    "SimulationConfig",
    "minutes_to_hhmm",
    "hhmm_to_minutes",
    "ReproError",
    "EventLog",
    "Instrumentation",
    "MetricsRegistry",
    "NULL_INSTRUMENTATION",
    "NullInstrumentation",
    "Tracer",
    "render_telemetry",
    "write_telemetry_json",
    "FreePhishClassifier",
    "FreePhishExtension",
    "NavigationVerdict",
    "FreePhish",
    "CampaignWorld",
    "CampaignResult",
    "build_ground_truth",
    "GroundTruthDataset",
    "HistoricalScenario",
    "ServedFrom",
    "ServedVerdict",
    "VerdictService",
    "Web",
    "__version__",
]
