"""Simulated social platforms (Twitter and Facebook/CrowdTangle).

The streaming module consumes posts from both platforms; the analysis
module polls post liveness to measure platform moderation (§5.4). Both
platforms share the same mechanics and differ in their moderation
behaviour parameters.
"""

from .posts import Post, PostStatus
from .moderation import ModerationModel, ModerationDecision
from .platform import SocialPlatform
from .twitter import TwitterPlatform, TwitterAPI
from .facebook import FacebookPlatform, CrowdTangleAPI

__all__ = [
    "Post",
    "PostStatus",
    "ModerationModel",
    "ModerationDecision",
    "SocialPlatform",
    "TwitterPlatform",
    "TwitterAPI",
    "FacebookPlatform",
    "CrowdTangleAPI",
]
