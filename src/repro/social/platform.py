"""Common social-platform mechanics.

Both platforms support: publishing posts, time-windowed queries (the
streaming module's poll), per-post liveness checks (the analysis module's
poll), moderation scheduling, and report-driven removal.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..errors import StreamError
from ..obs.instrument import NULL_INSTRUMENTATION, Instrumentation
from ..simnet.url import URL
from .moderation import ModerationModel
from .posts import Post, PostStatus, compose_post_text


class SocialPlatform:
    """One social network with moderation."""

    def __init__(
        self,
        name: str,
        moderation: ModerationModel,
        rng: np.random.Generator,
        #: Fraction of posts whose authors delete them organically; prior
        #: work (§5.4) puts this under 2%, i.e. negligible noise.
        user_deletion_rate: float = 0.015,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.name = name
        self.moderation = moderation
        self.rng = rng
        self.user_deletion_rate = user_deletion_rate
        self._posts: Dict[str, Post] = {}
        self._ordered: List[Post] = []
        self._counter = itertools.count(1)
        #: (post_id, scheduled removal time), applied lazily.
        self._pending_removals: List[tuple] = []
        instr = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        if moderation.instrumentation is None:
            moderation.instrumentation = instrumentation
        self._c_scheduled = instr.counter(f"moderation.{name}.scheduled")
        self._c_removals = instr.counter(f"moderation.{name}.removals")
        self._c_user_deletions = instr.counter(f"moderation.{name}.user_deletions")

    # -- publishing -----------------------------------------------------------

    def publish(self, text: str, author: str, now: int) -> Post:
        post = Post(
            platform=self.name,
            post_id=f"{self.name}-{next(self._counter)}",
            author=author,
            text=text,
            created_at=now,
        )
        self._posts[post.post_id] = post
        self._ordered.append(post)
        return post

    def publish_url(
        self, url: URL, author: str, now: int, phishing: bool
    ) -> Post:
        """Publish a post wrapping ``url`` in platform-typical bait text."""
        return self.publish(compose_post_text(url, phishing, self.rng), author, now)

    # -- moderation -----------------------------------------------------------

    def scan(self, post: Post, suspicion: float, now: int) -> None:
        """Run the platform's URL scanner over a freshly published post.

        Schedules removal according to the moderation model; also rolls the
        small organic user-deletion chance.
        """
        if self.rng.random() < self.user_deletion_rate:
            delay = int(self.rng.integers(60, 7 * 24 * 60))
            self._pending_removals.append((post.post_id, now + delay, True))
            self._c_user_deletions.inc()
            return
        decision = self.moderation.decide(suspicion, self.rng)
        if decision.will_remove and decision.delay_minutes is not None:
            self._pending_removals.append(
                (post.post_id, now + decision.delay_minutes, False)
            )
            self._c_scheduled.inc()

    def apply_moderation(self, now: int) -> int:
        """Apply all removals due by ``now``; returns how many fired."""
        fired = 0
        remaining = []
        for post_id, due, by_user in self._pending_removals:
            if due <= now:
                post = self._posts.get(post_id)
                if post is not None and post.status is PostStatus.LIVE:
                    post.remove(due, by_user=by_user)
                    fired += 1
                    if not by_user:
                        self._c_removals.inc()
                        self._on_platform_removal(post)
            else:
                remaining.append((post_id, due, by_user))
        self._pending_removals = remaining
        return fired

    def _on_platform_removal(self, post: Post) -> None:
        """Hook for platform-specific side effects of a moderation removal
        (Twitter flags the post's URLs for click-through warnings)."""

    def remove_reported(self, post_id: str, now: int) -> bool:
        """Immediate removal following an external report."""
        post = self._posts.get(post_id)
        if post is None or post.status is not PostStatus.LIVE:
            return False
        post.remove(now)
        return True

    # -- queries ----------------------------------------------------------------

    def get_post(self, post_id: str) -> Optional[Post]:
        return self._posts.get(post_id)

    def posts_between(self, start: int, end: int) -> List[Post]:
        """Posts created in ``[start, end)`` — the streaming poll window."""
        if end < start:
            raise StreamError("query window end precedes start")
        return [p for p in self._ordered if start <= p.created_at < end]

    def is_post_live(self, post_id: str, now: int) -> bool:
        self.apply_moderation(now)
        post = self._posts.get(post_id)
        return post is not None and post.is_live(now)

    def all_posts(self) -> List[Post]:
        return list(self._ordered)
