"""Platform moderation behaviour models.

Platforms run internal URL scanning over shared links. Against self-hosted
phishing that pipeline works well (Table 3: 50.9% of URLs actioned, median
3h41m); against FWB-hosted attacks it performs far worse (23.1%, median
10h25m) because the platform-side detectors rely on the same heuristics the
FWB features defeat (domain reputation, certificate provenance, credential
fields on the landing page).

:class:`ModerationModel` turns a per-URL *suspicion score* (computed by the
ecosystem's intel layer from actual page/URL properties) into a removal
decision plus a heavy-tailed delay. Low suspicion both lowers the removal
probability and stretches the delay — producing the paper's coverage *and*
response-time gaps from one mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..obs.instrument import NULL_INSTRUMENTATION, Instrumentation


@dataclass(frozen=True)
class ModerationDecision:
    """Outcome of the platform's scan of one shared URL."""

    will_remove: bool
    delay_minutes: Optional[int]

    @property
    def removal_offset(self) -> Optional[int]:
        return self.delay_minutes if self.will_remove else None


@dataclass
class ModerationModel:
    """Suspicion-driven removal model for one platform.

    Parameters
    ----------
    base_removal_rate:
        Probability that a *maximally suspicious* URL's post is removed.
    median_delay_minutes:
        Removal-delay median for a maximally suspicious URL; lower
        suspicion inflates the delay.
    delay_sigma:
        Log-normal shape parameter for the delay distribution.
    suspicion_floor:
        Minimum effective suspicion: even opaque URLs get occasional user
        reports.
    instrumentation:
        Optional observability hook; counts decisions/removals and
        records the scheduled-delay distribution (sim-time metrics).
    """

    base_removal_rate: float = 0.85
    median_delay_minutes: float = 150.0
    delay_sigma: float = 1.2
    suspicion_floor: float = 0.06
    instrumentation: Optional[Instrumentation] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.base_removal_rate <= 1.0:
            raise ConfigError("base_removal_rate must lie in [0, 1]")
        if self.median_delay_minutes <= 0:
            raise ConfigError("median_delay_minutes must be positive")
        if self.delay_sigma <= 0:
            raise ConfigError("delay_sigma must be positive")

    def decide(self, suspicion: float, rng: np.random.Generator) -> ModerationDecision:
        """Scan outcome for a URL with the given suspicion in [0, 1]."""
        instr = (
            self.instrumentation
            if self.instrumentation is not None
            else NULL_INSTRUMENTATION
        )
        instr.count("moderation.decisions")
        suspicion = float(np.clip(suspicion, self.suspicion_floor, 1.0))
        removal_probability = self.base_removal_rate * suspicion
        if rng.random() >= removal_probability:
            return ModerationDecision(will_remove=False, delay_minutes=None)
        # Less suspicious URLs take disproportionately longer to action:
        # the delay median scales inversely with suspicion.
        effective_median = self.median_delay_minutes / max(suspicion, 0.05)
        delay = rng.lognormal(mean=np.log(effective_median), sigma=self.delay_sigma)
        delay_minutes = max(1, int(round(delay)))
        instr.count("moderation.removals")
        instr.observe("moderation.delay_minutes", delay_minutes)
        return ModerationDecision(
            will_remove=True, delay_minutes=delay_minutes
        )
