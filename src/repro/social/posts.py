"""Post model shared by both platforms."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

import numpy as np

from ..simnet.url import URL, extract_urls


class PostStatus(str, Enum):
    LIVE = "live"
    REMOVED_BY_PLATFORM = "removed_by_platform"
    DELETED_BY_USER = "deleted_by_user"


@dataclass
class Post:
    """One social-media post, possibly containing URLs."""

    platform: str
    post_id: str
    author: str
    text: str
    created_at: int
    status: PostStatus = PostStatus.LIVE
    removed_at: Optional[int] = None
    _urls: Optional[List[URL]] = field(default=None, repr=False)

    @property
    def urls(self) -> List[URL]:
        """URLs extracted from the post text (computed once)."""
        if self._urls is None:
            self._urls = extract_urls(self.text)
        return self._urls

    def is_live(self, now: int) -> bool:
        if self.status is PostStatus.LIVE:
            return True
        return self.removed_at is not None and now < self.removed_at

    def remove(self, now: int, by_user: bool = False) -> None:
        if self.status is PostStatus.LIVE:
            self.status = (
                PostStatus.DELETED_BY_USER if by_user else PostStatus.REMOVED_BY_PLATFORM
            )
            self.removed_at = now


_TEMPLATES_PHISH = (
    "Huge giveaway going on right now, claim yours: {url}",
    "Your package could not be delivered, reschedule here {url}",
    "We noticed a problem with your account, fix it now: {url}",
    "Limited offer for loyal customers {url}",
    "Security alert! verify immediately {url}",
)

_TEMPLATES_BENIGN = (
    "Check out my new website! {url}",
    "We just launched our page, feedback welcome {url}",
    "New blog post is up: {url}",
    "Our little shop is finally online {url}",
    "Updated the portfolio with recent work {url}",
)


def compose_post_text(url: URL, phishing: bool, rng: np.random.Generator) -> str:
    """Social-bait text around a URL, matching the post populations."""
    templates = _TEMPLATES_PHISH if phishing else _TEMPLATES_BENIGN
    template = templates[int(rng.integers(len(templates)))]
    return template.format(url=str(url))
