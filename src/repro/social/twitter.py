"""Twitter simulation and its two API surfaces.

The streaming module uses the standard search endpoint every 10 minutes;
the analysis module uses the Academic API to poll tweet liveness (§4.4).
Moderation parameters are calibrated to Figure 9's Twitter curves: strong,
fast action on self-hosted phishing; weak, slow action on FWB URLs —
realised through the suspicion-score pathway of
:class:`~repro.social.moderation.ModerationModel`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..obs.instrument import Instrumentation
from ..simnet.url import URL
from .moderation import ModerationModel
from .platform import SocialPlatform
from .posts import Post


class TwitterPlatform(SocialPlatform):
    """Twitter with its measured moderation behaviour.

    Besides removing posts, (pre-"X") Twitter interposed a full-page
    warning when a user clicked a link it had flagged as malicious
    (Figure 10); :meth:`flag_url` / :meth:`interstitial_for` model that
    layer. Facebook deletes posts outright and has no equivalent (§5.4).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        super().__init__(
            name="twitter",
            moderation=ModerationModel(
                base_removal_rate=0.93,
                median_delay_minutes=105.0,
                delay_sigma=1.25,
            ),
            rng=rng,
            instrumentation=instrumentation,
        )
        self._flagged_urls: set = set()

    def _on_platform_removal(self, post: Post) -> None:
        for url in post.urls:
            self.flag_url(url)

    def flag_url(self, url: URL) -> None:
        """Mark a URL as known-malicious (click-through warnings apply)."""
        self._flagged_urls.add(str(url))

    def is_flagged(self, url: URL) -> bool:
        return str(url) in self._flagged_urls

    def interstitial_for(self, url: URL) -> Optional[str]:
        """The Figure-10 warning page, or ``None`` for unflagged links."""
        if not self.is_flagged(url):
            return None
        return (
            "<!DOCTYPE html><html><head><title>Warning: this link may be "
            "unsafe</title></head><body>"
            "<h1>Warning: this link may be unsafe</h1>"
            f"<p>The link <code>{url}</code> could lead to a site that "
            "steals personal information, installs malicious software, or "
            "violates our policies.</p>"
            "<p><a href='javascript:history.back()'>Return to the previous "
            "page</a></p>"
            "<p><a id='continue' href='#'>Ignore this warning and "
            "continue</a></p>"
            "</body></html>"
        )


class TwitterAPI:
    """The official API views used by FreePhish.

    ``search_recent`` backs the streaming module's 10-minute poll;
    ``tweet_exists`` backs the Academic-API liveness checks.
    """

    def __init__(self, platform: TwitterPlatform) -> None:
        self._platform = platform

    def search_recent(self, start: int, end: int) -> List[Post]:
        return self._platform.posts_between(start, end)

    def tweet_exists(self, post_id: str, now: int) -> bool:
        return self._platform.is_post_live(post_id, now)

    def lookup(self, post_id: str) -> Optional[Post]:
        return self._platform.get_post(post_id)
