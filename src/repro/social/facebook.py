"""Facebook simulation and the CrowdTangle API surface.

CrowdTangle is Meta's research feed of public posts; FreePhish polls it on
the same 10-minute cycle as Twitter (§4.1). Facebook deletes offending
posts outright instead of interposing a warning page (§5.4), which for the
measurement is the same observable: the post stops resolving.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..obs.instrument import Instrumentation
from .moderation import ModerationModel
from .platform import SocialPlatform
from .posts import Post


class FacebookPlatform(SocialPlatform):
    """Facebook with its measured moderation behaviour."""

    def __init__(
        self,
        rng: np.random.Generator,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        super().__init__(
            name="facebook",
            moderation=ModerationModel(
                base_removal_rate=0.80,
                median_delay_minutes=135.0,
                delay_sigma=1.3,
            ),
            rng=rng,
            instrumentation=instrumentation,
        )


class CrowdTangleAPI:
    """Research API over public Facebook posts."""

    def __init__(self, platform: FacebookPlatform) -> None:
        self._platform = platform

    def posts(self, start: int, end: int) -> List[Post]:
        return self._platform.posts_between(start, end)

    def post_exists(self, post_id: str, now: int) -> bool:
        return self._platform.is_post_live(post_id, now)

    def lookup(self, post_id: str) -> Optional[Post]:
        return self._platform.get_post(post_id)
