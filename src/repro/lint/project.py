"""Cross-module context for the RP3xx schema rules.

The determinism and purity rules are purely local, but schema-drift
checks need to know things defined *elsewhere* in the package:

* the canonical feature schema — the union of ``BASE_FEATURE_NAMES`` and
  ``FWB_FEATURE_NAMES`` from :mod:`repro.core.features`;
* the attribute surface of every class defined under ``src/repro`` (its
  dataclass fields, class-level constants, methods, properties, and
  ``self.x = ...`` assignments), so a function annotated
  ``timeline: UrlTimeline`` can be checked against the real class.

Both are computed once per run and shared by every file checker. The
feature schema is imported at runtime (the linter ships inside the
package it lints, so the import is always available in a working tree);
the class table is built statically from the AST so that unparseable or
import-broken modules degrade to "unknown class: skip the check" rather
than crashing the linter.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Set

#: Attribute surface of builtin / stdlib bases we resolve through. A class
#: whose bases are all listed here (or defined in the project) is "closed":
#: accessing an attribute outside its surface is a finding. Any other base
#: leaves the class "open" and exempt from RP303.
_BUILTIN_BASE_ATTRS: Dict[str, FrozenSet[str]] = {
    "object": frozenset(dir(object)),
    "Exception": frozenset(dir(Exception)),
    "str": frozenset(dir(str)),
    "int": frozenset(dir(int)),
    "float": frozenset(dir(float)),
    "dict": frozenset(dir(dict)),
    "list": frozenset(dir(list)),
    "tuple": frozenset(dir(tuple)),
    "set": frozenset(dir(set)),
    # Enum's name/value are DynamicClassAttributes that dir() misses on
    # some interpreter versions, so they are added explicitly.
    "Enum": frozenset(dir(object)) | {"name", "value", "_name_", "_value_"},
    "IntEnum": frozenset(dir(int)) | {"name", "value", "_name_", "_value_"},
}

#: Typing wrappers whose single argument is the "element" type: a parameter
#: annotated ``Sequence[UrlTimeline]`` binds loop variables iterating over
#: it to ``UrlTimeline``.
_SEQUENCE_WRAPPERS = frozenset(
    {"Sequence", "List", "Iterable", "Iterator", "Tuple", "FrozenSet", "Set",
     "list", "tuple", "set", "frozenset"}
)

#: Wrappers that forward the inner type unchanged (``Optional[X]`` → X).
_TRANSPARENT_WRAPPERS = frozenset({"Optional", "Final", "Annotated"})


@dataclass
class ClassInfo:
    """Statically harvested attribute surface of one class."""

    name: str
    attrs: Set[str] = field(default_factory=set)
    bases: List[str] = field(default_factory=list)
    #: False once a base could not be resolved — exempts the class.
    closed: bool = True


def _last_segment(node: ast.expr) -> Optional[str]:
    """``a.b.C`` → ``C``; bare names pass through; else None."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _harvest_class(node: ast.ClassDef) -> ClassInfo:
    info = ClassInfo(name=node.name)
    for base in node.bases:
        segment = _last_segment(base)
        if segment is None:
            info.closed = False
        else:
            info.bases.append(segment)
    for item in node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            info.attrs.add(item.target.id)
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    info.attrs.add(target.id)
        elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.attrs.add(item.name)
            for sub in ast.walk(item):
                if isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    targets = (
                        sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            info.attrs.add(target.attr)
    return info


class ProjectContext:
    """Shared cross-module facts for one linter run."""

    def __init__(
        self,
        feature_names: Optional[FrozenSet[str]] = None,
        classes: Optional[Dict[str, ClassInfo]] = None,
    ) -> None:
        self.feature_names: FrozenSet[str] = (
            feature_names if feature_names is not None else frozenset()
        )
        self.classes: Dict[str, ClassInfo] = classes if classes is not None else {}
        self._resolved: Dict[str, Optional[FrozenSet[str]]] = {}

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(cls, package_dir: Optional[Path]) -> "ProjectContext":
        """Build the context for the package rooted at ``package_dir``
        (the directory containing the ``repro`` sources)."""
        return cls(
            feature_names=cls._load_feature_schema(),
            classes=cls._build_class_table(package_dir),
        )

    @staticmethod
    def _load_feature_schema() -> FrozenSet[str]:
        try:
            from ..core.features import BASE_FEATURE_NAMES, FWB_FEATURE_NAMES
        except Exception:  # pragma: no cover - only on a broken tree
            return frozenset()
        return frozenset(BASE_FEATURE_NAMES) | frozenset(FWB_FEATURE_NAMES)

    @staticmethod
    def _build_class_table(package_dir: Optional[Path]) -> Dict[str, ClassInfo]:
        classes: Dict[str, ClassInfo] = {}
        if package_dir is None or not package_dir.is_dir():
            return classes
        for path in sorted(package_dir.rglob("*.py")):
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"))
            except (SyntaxError, OSError, UnicodeDecodeError):
                continue
            for node in ast.walk(tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                info = _harvest_class(node)
                if node.name in classes:
                    # Same name defined twice: merge surfaces so the check
                    # stays conservative (union can only hide drift, never
                    # produce a false finding).
                    existing = classes[node.name]
                    existing.attrs |= info.attrs
                    existing.bases = list({*existing.bases, *info.bases})
                    existing.closed = existing.closed and info.closed
                else:
                    classes[node.name] = info
        return classes

    # -- queries -----------------------------------------------------------------

    def is_feature_name(self, name: str) -> bool:
        return name in self.feature_names

    def attribute_surface(self, class_name: str) -> Optional[FrozenSet[str]]:
        """Full attribute set of ``class_name`` including inherited
        attributes, or ``None`` if the class is unknown or open."""
        if class_name in self._resolved:
            return self._resolved[class_name]
        self._resolved[class_name] = None  # cycle guard
        surface = self._resolve(class_name, seen=set())
        self._resolved[class_name] = surface
        return surface

    def _resolve(self, class_name: str, seen: Set[str]) -> Optional[FrozenSet[str]]:
        if class_name in seen:
            return frozenset()
        seen.add(class_name)
        info = self.classes.get(class_name)
        if info is None or not info.closed:
            return None
        attrs = set(info.attrs) | set(_BUILTIN_BASE_ATTRS["object"])
        for base in info.bases:
            if base in self.classes:
                base_surface = self._resolve(base, seen)
                if base_surface is None:
                    return None
                attrs |= base_surface
            elif base in _BUILTIN_BASE_ATTRS:
                attrs |= _BUILTIN_BASE_ATTRS[base]
            else:
                return None
        return frozenset(attrs)
