"""Single-pass AST dispatch: parse a file once, fan nodes out to rules.

``classify_scope`` maps a path to one of the rule scopes (``library`` for
``src/repro``, else the top-level directory name), ``FileChecker`` runs
every applicable rule over one file, and :func:`run_lint` drives a whole
file set and aggregates a :class:`~repro.lint.report.LintReport`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .project import ProjectContext
from .report import Finding, LintReport, Severity
from .rules import RULES, Rule
from .suppress import SuppressionIndex

#: Directory names that are never linted.
_EXCLUDED_DIRS = frozenset({"__pycache__", ".git", ".venv", "venv", "build", "dist"})


def classify_scope(path: Path, project_root: Path) -> str:
    """Map a file path to a rule scope.

    Anything under a ``src`` tree is ``library``; otherwise the first
    path component under the project root (``tests``, ``examples``,
    ``benchmarks``, ``scripts``) names the scope, defaulting to ``other``.
    """
    try:
        rel = path.resolve().relative_to(project_root.resolve())
    except ValueError:
        rel = path
    parts = rel.parts
    if not parts:
        return "other"
    if "src" in parts[:2]:
        return "library"
    head = parts[0]
    if head in ("tests", "examples", "benchmarks", "scripts"):
        return head
    return "other"


class FileContext:
    """Mutable per-file state handed to every rule hook."""

    def __init__(
        self,
        path: Path,
        rel_path: str,
        scope: str,
        project: ProjectContext,
        suppressions: SuppressionIndex,
    ) -> None:
        self.path = path
        self.rel_path = rel_path
        self.scope = scope
        self.project = project
        self.suppressions = suppressions
        self.report_sink = LintReport(files_checked=1)
        #: Names holding feature-name collections (RP301 taint pass).
        self.feature_tainted: Set[str] = set()

    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        end_line = getattr(node, "end_lineno", None)
        hit = self.suppressions.find(rule.id, line, end_line)
        self.report_sink.add(
            Finding(
                rule_id=rule.id,
                path=self.rel_path,
                line=line,
                col=col + 1,
                severity=rule.severity,
                message=message,
                suppressed=hit is not None,
                suppress_reason=hit[1] if hit is not None else None,
            )
        )


class _Dispatcher(ast.NodeVisitor):
    """Walks the AST once, invoking each rule's hook for its node types."""

    def __init__(self, rules: Sequence[Rule], ctx: FileContext) -> None:
        self.ctx = ctx
        self.hooks: Dict[str, List] = {}
        for rule in rules:
            for attr in dir(rule):
                if attr.startswith("check_"):
                    self.hooks.setdefault(attr[len("check_"):], []).append(
                        getattr(rule, attr)
                    )

    def generic_visit(self, node: ast.AST) -> None:
        for hook in self.hooks.get(type(node).__name__, ()):
            hook(node, self.ctx)
        super().generic_visit(node)


class FileChecker:
    """Lints one file with a fixed rule set and shared project context."""

    def __init__(
        self,
        project: ProjectContext,
        rules: Optional[Sequence[Rule]] = None,
        project_root: Optional[Path] = None,
    ) -> None:
        self.project = project
        self.rules = list(rules) if rules is not None else list(RULES)
        self.project_root = project_root if project_root is not None else Path.cwd()

    def check(self, path: Path, source: Optional[str] = None) -> LintReport:
        scope = classify_scope(path, self.project_root)
        try:
            rel = str(path.resolve().relative_to(self.project_root.resolve()))
        except ValueError:
            rel = str(path)
        if source is None:
            try:
                source = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                report = LintReport(files_checked=1)
                report.add(Finding("RP000", rel, 1, 1, Severity.ERROR,
                                   f"cannot read file: {exc}"))
                return report
        ctx = FileContext(
            path=path,
            rel_path=rel,
            scope=scope,
            project=self.project,
            suppressions=SuppressionIndex.from_source(source),
        )
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            ctx.report_sink.add(Finding(
                "RP000", rel, exc.lineno or 1, (exc.offset or 0) + 1,
                Severity.ERROR, f"syntax error: {exc.msg}",
            ))
            return ctx.report_sink
        active = [rule for rule in self.rules if rule.applies_to(scope)]
        if active:
            _Dispatcher(active, ctx).visit(tree)
        return ctx.report_sink


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    out: Set[Path] = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            out.add(path.resolve())
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not any(part in _EXCLUDED_DIRS for part in candidate.parts):
                    out.add(candidate.resolve())
    return sorted(out)


def run_lint(
    paths: Sequence[Path],
    project_root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    project: Optional[ProjectContext] = None,
    flow: bool = True,
    flow_cache: Optional[Path] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` and aggregate the findings.

    When ``flow`` is true and the run touches library code, the
    interprocedural pass (:mod:`repro.lint.flow`) runs over the whole
    ``src`` tree and its findings merge into the same report.
    ``flow_cache`` names the summary-cache file; ``None`` runs cold.
    """
    root = project_root if project_root is not None else Path.cwd()
    if project is None:
        package_dir = Path(__file__).resolve().parent.parent
        project = ProjectContext.build(package_dir)
    checker = FileChecker(project=project, rules=rules, project_root=root)
    report = LintReport()
    saw_library = False
    for path in iter_python_files(paths):
        saw_library = saw_library or classify_scope(path, root) == "library"
        report.extend(checker.check(path))

    flow_rules = [r for r in checker.rules if getattr(r, "is_flow", False)]
    if flow and flow_rules and saw_library and (root / "src").is_dir():
        # Imported lazily: flow is an optional whole-program pass and the
        # per-file machinery must not depend on it.
        from .flow.cache import SummaryCache
        from .flow.engine import FlowEngine

        engine = FlowEngine(
            root,
            enabled=[r.id for r in flow_rules],
            severities={r.id: r.severity for r in flow_rules},
            cache=SummaryCache(flow_cache) if flow_cache is not None else None,
        )
        report.extend(engine.run())
    return report
