"""The reprolint rule registry.

Four families, mirroring the reproduction's core invariants
(see ``docs/LINTING.md`` for the full rationale of each rule):

* **RP1xx — determinism.** Every measurement must be a pure function of
  the seed; wall-clock reads and unseeded / global RNGs silently break
  that without failing a single test.
* **RP2xx — simulation purity.** The simnet layer is the *only*
  substrate; real network or process access in library code would let a
  "reproduction" quietly depend on the live internet.
* **RP3xx — cross-module schema.** Feature names, ``rng`` parameter
  types, and exported dataclass fields drift independently across
  modules; these rules pin them to their single source of truth.
* **RP4xx — hygiene.** Failure modes (mutable defaults, bare excepts,
  strippable asserts) that corrupt long campaign runs in ways a unit
  test never sees.

Each rule is a singleton class with ``check_<NodeType>`` hooks; the
dispatcher in :mod:`repro.lint.visitor` walks each file's AST exactly
once and fans nodes out to every rule registered for that node type and
active in the file's scope (``library`` = ``src/repro``, plus ``tests``,
``examples``, ``benchmarks``, ``scripts``).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from .report import Severity

#: Every scope a file can be classified into (see visitor.classify_scope).
ALL_SCOPES: FrozenSet[str] = frozenset(
    {"library", "tests", "examples", "benchmarks", "scripts", "other"}
)
LIBRARY_ONLY: FrozenSet[str] = frozenset({"library"})
RUNNABLE: FrozenSet[str] = frozenset({"library", "examples", "benchmarks", "scripts"})


def dotted_name(node: ast.expr) -> Optional[str]:
    """Render ``a.b.c`` attribute chains as a string; None for anything
    that is not a pure Name/Attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _string_elements(node: ast.expr) -> List[ast.Constant]:
    """Constant-string elements of a list/tuple/set literal."""
    if not isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        return []
    return [
        element
        for element in node.elts
        if isinstance(element, ast.Constant) and isinstance(element.value, str)
    ]


class Rule:
    """Base class: metadata + per-node-type ``check_<Type>`` hooks."""

    id: str = "RP000"
    name: str = "base"
    severity: Severity = Severity.ERROR
    scopes: FrozenSet[str] = ALL_SCOPES
    summary: str = ""

    def applies_to(self, scope: str) -> bool:
        return scope in self.scopes


class FlowRule(Rule):
    """Base class for interprocedural rules.

    Flow rules have no ``check_<NodeType>`` hooks — the per-file
    dispatcher skips them — and are instead executed by
    :class:`repro.lint.flow.engine.FlowEngine` over the whole-program
    call graph. They live in this registry so ``--select``/``--ignore``,
    ``--list-rules``, and the JSON output treat them like any other rule.
    """

    is_flow = True


# ---------------------------------------------------------------------------
# RP1xx — determinism
# ---------------------------------------------------------------------------

class WallClockRule(Rule):
    """RP101: no wall-clock reads in library code."""

    id = "RP101"
    name = "wall-clock-read"
    scopes = LIBRARY_ONLY
    summary = (
        "datetime.now()/time.time()/date.today() make results depend on when "
        "the simulation ran; use the simulated clock (integer minutes)."
    )

    _BANNED_CALLS = frozenset({
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns",
        "datetime.now", "datetime.utcnow", "datetime.today",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today", "datetime.date.today",
    })
    _BANNED_FROM_TIME = frozenset({
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "process_time", "process_time_ns",
    })

    def check_Call(self, node: ast.Call, ctx) -> None:
        chain = dotted_name(node.func)
        if chain in self._BANNED_CALLS:
            ctx.report(self, node, f"wall-clock call {chain}() in library code; "
                                   "simulation time is integer minutes from the epoch")

    def check_ImportFrom(self, node: ast.ImportFrom, ctx) -> None:
        if node.module != "time":
            return
        for alias in node.names:
            if alias.name in self._BANNED_FROM_TIME:
                ctx.report(self, node,
                           f"import of wall-clock function time.{alias.name}")


class StdlibRandomRule(Rule):
    """RP102: no stdlib ``random`` (hidden global state) in library code."""

    id = "RP102"
    name = "stdlib-random"
    scopes = LIBRARY_ONLY
    summary = (
        "the random module's global Mersenne Twister is shared mutable state; "
        "thread an explicit np.random.Generator instead."
    )

    def check_Import(self, node: ast.Import, ctx) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                ctx.report(self, node, "import of stdlib random; use a seeded "
                                       "np.random.Generator from SeedBank")

    def check_ImportFrom(self, node: ast.ImportFrom, ctx) -> None:
        if node.module == "random":
            ctx.report(self, node, "import from stdlib random; use a seeded "
                                   "np.random.Generator from SeedBank")

    def check_Call(self, node: ast.Call, ctx) -> None:
        chain = dotted_name(node.func)
        if chain is not None and chain.startswith("random."):
            ctx.report(self, node, f"call to stdlib {chain}() uses the global "
                                   "Mersenne Twister")


class UnseededRngRule(Rule):
    """RP103: ``default_rng()`` must receive a seed."""

    id = "RP103"
    name = "unseeded-default-rng"
    scopes = ALL_SCOPES
    summary = (
        "default_rng() with no argument seeds from OS entropy, so two runs "
        "of the same campaign diverge; always derive the seed from config."
    )

    def check_Call(self, node: ast.Call, ctx) -> None:
        chain = dotted_name(node.func)
        if chain is None or chain.split(".")[-1] != "default_rng":
            return
        if chain not in ("default_rng", "np.random.default_rng",
                         "numpy.random.default_rng"):
            return
        if not node.args and not node.keywords:
            ctx.report(self, node, f"{chain}() called without a seed")


class LegacyNumpyRandomRule(Rule):
    """RP104: no legacy ``np.random.*`` global-state API."""

    id = "RP104"
    name = "legacy-numpy-random"
    scopes = ALL_SCOPES
    summary = (
        "np.random.seed()/randint()/choice() mutate one hidden global stream "
        "shared by the whole process; use Generator methods."
    )

    _ALLOWED = frozenset({
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
    })

    def check_Call(self, node: ast.Call, ctx) -> None:
        chain = dotted_name(node.func)
        if chain is None:
            return
        parts = chain.split(".")
        if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
            if parts[2] not in self._ALLOWED:
                ctx.report(self, node,
                           f"legacy global-state RNG call {chain}(); use a "
                           "np.random.Generator method instead")

    def check_ImportFrom(self, node: ast.ImportFrom, ctx) -> None:
        if node.module != "numpy.random":
            return
        for alias in node.names:
            if alias.name not in self._ALLOWED:
                ctx.report(self, node,
                           f"import of legacy numpy.random.{alias.name}")


class TransitiveWallClockRule(FlowRule):
    """RP105: no library call chain may reach a wall-clock read."""

    id = "RP105"
    name = "transitive-wall-clock"
    scopes = LIBRARY_ONLY
    summary = (
        "RP101 catches a direct time.time(); this rule follows the call "
        "graph, so a clock read laundered through helpers in other modules "
        "is flagged at the call site where the taint enters, with the full "
        "chain in the message."
    )


class RngProvenanceRule(FlowRule):
    """RP110: every Generator's seed must trace to the SeedBank."""

    id = "RP110"
    name = "rng-seed-provenance"
    scopes = LIBRARY_ONLY
    summary = (
        "np.random.default_rng(seed) is only reproducible if the seed "
        "derives from the root seed; seeds are traced through parameters "
        "across modules, and a hardcoded or untraceable value anywhere "
        "along the chain is flagged where it enters."
    )


class HardcodedSeedArgRule(FlowRule):
    """RP111: no integer literals bound to seed parameters at call sites."""

    id = "RP111"
    name = "hardcoded-seed-argument"
    scopes = LIBRARY_ONLY
    summary = (
        "passing seed=0 or random_state=7 at a call site pins a sub-stream "
        "independently of the campaign's root seed; signature defaults are "
        "the documented contract and stay exempt, call sites must derive "
        "via SeedBank.child_seed."
    )


# ---------------------------------------------------------------------------
# RP2xx — simulation purity
# ---------------------------------------------------------------------------

class ForbiddenImportRule(Rule):
    """RP201: no real-network / process imports inside ``src/repro``."""

    id = "RP201"
    name = "forbidden-import"
    scopes = LIBRARY_ONLY
    summary = (
        "the simnet layer is the only substrate; requests/socket/subprocess "
        "in library code would let results depend on the live internet."
    )

    _BANNED_TOP = frozenset({
        "requests", "socket", "subprocess", "aiohttp", "httpx", "ftplib",
        "smtplib", "telnetlib", "socketserver", "xmlrpc",
    })
    _BANNED_DOTTED = ("urllib.request", "urllib.error", "http.client",
                      "http.server", "xmlrpc.")

    def _flag(self, module: str, node: ast.stmt, ctx) -> bool:
        top = module.split(".")[0]
        if top in self._BANNED_TOP or any(
            module == banned.rstrip(".") or module.startswith(banned)
            for banned in self._BANNED_DOTTED
        ):
            ctx.report(self, node,
                       f"import of {module} in library code; all network and "
                       "process access must go through the simnet substrate")
            return True
        return False

    def check_Import(self, node: ast.Import, ctx) -> None:
        for alias in node.names:
            self._flag(alias.name, node, ctx)

    def check_ImportFrom(self, node: ast.ImportFrom, ctx) -> None:
        if node.module is None:
            return
        if self._flag(node.module, node, ctx):
            return
        # `from urllib import request` smuggles the same module in.
        for alias in node.names:
            if self._flag(f"{node.module}.{alias.name}", node, ctx):
                return


class EnvironmentAccessRule(Rule):
    """RP202: no ambient environment reads in library code."""

    id = "RP202"
    name = "environment-access"
    scopes = LIBRARY_ONLY
    summary = (
        "os.environ / os.getenv smuggle host-specific state into results; "
        "configuration enters through SimulationConfig only."
    )

    _BANNED_CALLS = frozenset({"os.getenv", "os.putenv", "os.unsetenv"})

    def check_Attribute(self, node: ast.Attribute, ctx) -> None:
        if dotted_name(node) in ("os.environ", "os.environb"):
            ctx.report(self, node, "access to os.environ in library code; pass "
                                   "configuration through SimulationConfig")

    def check_Call(self, node: ast.Call, ctx) -> None:
        chain = dotted_name(node.func)
        if chain in self._BANNED_CALLS:
            ctx.report(self, node, f"call to {chain}() in library code; pass "
                                   "configuration through SimulationConfig")


class PrintInLibraryRule(Rule):
    """RP203: no ``print()`` in library code; use the obs event log."""

    id = "RP203"
    name = "print-in-library"
    scopes = LIBRARY_ONLY
    summary = (
        "print() bypasses the structured event log, so campaign progress is "
        "invisible to telemetry exports and impossible to assert on; emit an "
        "event through repro.obs instead. Renderers (analysis/report.py, "
        "cli.py) and the linter's own CLI are exempt."
    )

    _EXEMPT_FILES = frozenset({"cli.py"})

    def _exempt(self, ctx) -> bool:
        parts = ctx.rel_path.replace("\\", "/").split("/")
        if "lint" in parts:
            return True
        if parts[-1] in self._EXEMPT_FILES:
            return True
        return parts[-2:] == ["analysis", "report.py"]

    def check_Call(self, node: ast.Call, ctx) -> None:
        if not (isinstance(node.func, ast.Name) and node.func.id == "print"):
            return
        if self._exempt(ctx):
            return
        ctx.report(self, node,
                   "print() in library code; emit a structured event via "
                   "repro.obs (EventLog) so output reaches telemetry exports")


class SimnetPurityRule(FlowRule):
    """RP210: nothing reachable from simnet may do I/O or write globals."""

    id = "RP210"
    name = "simnet-impurity"
    scopes = LIBRARY_ONLY
    summary = (
        "the simulated substrate must be a pure function of (config, seed); "
        "file writes or module-global mutation reachable from any simnet "
        "function — directly or through callees in other modules — makes "
        "crawls order-dependent and unreproducible."
    )


# ---------------------------------------------------------------------------
# RP3xx — cross-module schema
# ---------------------------------------------------------------------------

class FeatureNameRule(Rule):
    """RP301: feature-name strings must exist in the canonical schema."""

    id = "RP301"
    name = "unknown-feature-name"
    scopes = ALL_SCOPES
    summary = (
        "feature names live in core/features.py; a typo elsewhere selects a "
        "wrong column or raises deep inside a campaign."
    )

    _VECTOR_CALLS = frozenset({"vector", "extract_matrix", "split_arrays"})

    def _check_literal(self, literal: ast.Constant, ctx) -> None:
        if not ctx.project.feature_names:
            return
        if not ctx.project.is_feature_name(literal.value):
            ctx.report(
                self, literal,
                f"unknown feature name {literal.value!r}: not in "
                "BASE_FEATURE_NAMES / FWB_FEATURE_NAMES (core/features.py)",
            )

    def _is_schema_ref(self, node: ast.expr, ctx) -> bool:
        chain = dotted_name(node)
        if chain is None:
            return False
        if "FEATURE_NAMES" in chain:
            return True
        return chain in ctx.feature_tainted

    def check_Module(self, node: ast.Module, ctx) -> None:
        # Taint pass: variables assigned from expressions that mention a
        # *FEATURE_NAMES* collection hold feature names themselves, so
        # string literals combined with them are checkable. Two passes
        # pick up one level of transitive assignment.
        for _ in range(2):
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Assign):
                    value, targets = stmt.value, stmt.targets
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    value, targets = stmt.value, [stmt.target]
                else:
                    continue
                if any(
                    self._is_schema_ref(sub, ctx)
                    for sub in ast.walk(value)
                    if isinstance(sub, (ast.Name, ast.Attribute))
                ):
                    for target in targets:
                        if isinstance(target, ast.Name):
                            ctx.feature_tainted.add(target.id)

    def check_Call(self, node: ast.Call, ctx) -> None:
        func = node.func
        # FWB_FEATURE_NAMES.index("...") / tainted.count("...")
        if isinstance(func, ast.Attribute) and func.attr in ("index", "count"):
            if self._is_schema_ref(func.value, ctx):
                for arg in node.args:
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                        self._check_literal(arg, ctx)
            return
        # page_features.vector([...]) / extractor.extract_matrix(pairs, [...])
        callee = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if callee in self._VECTOR_CALLS:
            candidates = list(node.args) + [kw.value for kw in node.keywords
                                            if kw.arg == "names"]
            for candidate in candidates:
                for literal in _string_elements(candidate):
                    self._check_literal(literal, ctx)

    def check_Compare(self, node: ast.Compare, ctx) -> None:
        # "name" in FWB_FEATURE_NAMES
        if not isinstance(node.left, ast.Constant) or not isinstance(
            node.left.value, str
        ):
            return
        if any(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops) and any(
            self._is_schema_ref(comp, ctx) for comp in node.comparators
        ):
            self._check_literal(node.left, ctx)

    def check_Subscript(self, node: ast.Subscript, ctx) -> None:
        # page.features.values["name"] — PageFeatures' raw dict.
        if not (isinstance(node.value, ast.Attribute) and node.value.attr == "values"):
            return
        index = node.slice
        if isinstance(index, ast.Constant) and isinstance(index.value, str):
            self._check_literal(index, ctx)

    def check_BinOp(self, node: ast.BinOp, ctx) -> None:
        # _BASE_MINUS + ("obfuscated_fwb_banner",)
        if not isinstance(node.op, ast.Add):
            return
        pairs = ((node.left, node.right), (node.right, node.left))
        for schema_side, literal_side in pairs:
            if self._is_schema_ref(schema_side, ctx):
                for literal in _string_elements(literal_side):
                    self._check_literal(literal, ctx)


class RngAnnotationRule(Rule):
    """RP302: ``rng`` parameters must be annotated ``np.random.Generator``."""

    id = "RP302"
    name = "untyped-rng-param"
    scopes = RUNNABLE
    summary = (
        "an untyped rng parameter accepts legacy RandomState or None without "
        "complaint; the Generator annotation documents the seeding contract."
    )

    def _check(self, node, ctx) -> None:
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.arg != "rng":
                continue
            if arg.annotation is None:
                ctx.report(self, arg,
                           f"parameter 'rng' of {node.name}() is untyped; "
                           "annotate it np.random.Generator")
                continue
            rendered = ast.unparse(arg.annotation)
            if "Generator" not in rendered:
                ctx.report(self, arg,
                           f"parameter 'rng' of {node.name}() is annotated "
                           f"{rendered!r}; expected np.random.Generator")

    check_FunctionDef = _check
    check_AsyncFunctionDef = _check


class ExportSchemaRule(Rule):
    """RP303: attribute access on project dataclasses must match their
    declared surface (keeps ``analysis/export.py`` round-trips honest)."""

    id = "RP303"
    name = "schema-attribute-drift"
    scopes = LIBRARY_ONLY
    summary = (
        "export/report code reads dataclass fields by name; a renamed field "
        "only fails when that exact exporter runs, so it is checked statically."
    )

    def _annotation_binding(self, annotation: ast.expr):
        """Return ("direct"|"element", class_name) or None."""
        from .project import _SEQUENCE_WRAPPERS, _TRANSPARENT_WRAPPERS, _last_segment

        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(annotation, ast.Subscript):
            wrapper = _last_segment(annotation.value)
            inner = annotation.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            if wrapper in _TRANSPARENT_WRAPPERS:
                return self._annotation_binding(inner)
            if wrapper in _SEQUENCE_WRAPPERS:
                name = _last_segment(inner) if isinstance(
                    inner, (ast.Name, ast.Attribute)
                ) else None
                return ("element", name) if name else None
            return None
        if isinstance(annotation, (ast.Name, ast.Attribute)):
            name = _last_segment(annotation)
            return ("direct", name) if name else None
        return None

    def _check(self, node, ctx) -> None:
        direct: Dict[str, str] = {}
        element: Dict[str, str] = {}
        for arg in [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]:
            if arg.annotation is None:
                continue
            binding = self._annotation_binding(arg.annotation)
            if binding is None:
                continue
            kind, class_name = binding
            if ctx.project.attribute_surface(class_name) is None:
                continue
            (direct if kind == "direct" else element)[arg.arg] = class_name

        if not direct and not element:
            return

        # Loop variables iterating a Sequence[X] parameter get type X —
        # both statement loops and comprehension generators.
        for sub in ast.walk(node):
            if (
                isinstance(sub, (ast.For, ast.AsyncFor))
                and isinstance(sub.iter, ast.Name)
                and sub.iter.id in element
                and isinstance(sub.target, ast.Name)
            ):
                direct.setdefault(sub.target.id, element[sub.iter.id])
            elif (
                isinstance(sub, ast.comprehension)
                and isinstance(sub.iter, ast.Name)
                and sub.iter.id in element
                and isinstance(sub.target, ast.Name)
            ):
                direct.setdefault(sub.target.id, element[sub.iter.id])

        # Rebinding a name invalidates its inferred type.
        rebound: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in direct:
                        rebound.add(target.id)
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and sub is not node:
                for arg in [*sub.args.posonlyargs, *sub.args.args, *sub.args.kwonlyargs]:
                    if arg.arg in direct:
                        rebound.add(arg.arg)

        for sub in ast.walk(node):
            if not isinstance(sub, ast.Attribute):
                continue
            if not isinstance(sub.value, ast.Name):
                continue
            var = sub.value.id
            if var not in direct or var in rebound:
                continue
            class_name = direct[var]
            surface = ctx.project.attribute_surface(class_name)
            if surface is None:
                continue
            if sub.attr not in surface:
                ctx.report(self, sub,
                           f"{var}.{sub.attr}: class {class_name} declares no "
                           f"attribute {sub.attr!r} (schema drift)")

    check_FunctionDef = _check
    check_AsyncFunctionDef = _check


class ServeCacheKeyRule(Rule):
    """RP304: cache keys must come from a sanctioned producer — the
    ``simnet.url`` normalizers (``cache_key`` / ``domain_key``) in the
    serve layer, ``snapshot_key`` in the feature-cache layer — never raw
    strings."""

    id = "RP304"
    name = "raw-cache-key"
    scopes = LIBRARY_ONLY
    summary = (
        "two spellings of one URL (case, default path, fragment) must share "
        "a cache line; a raw-string key in repro/serve or the feature-cache "
        "layer bypasses cache_key()/domain_key()/snapshot_key() and "
        "silently splits or misses entries."
    )

    #: Methods on cache-like receivers whose first argument is a key/URL.
    _KEYED_METHODS = frozenset({
        "get", "put", "lookup", "store", "evict",
        "invalidate", "invalidate_blocked", "invalidate_takedown",
        "move_to_end",
    })
    #: Receiver-name fragments that mark a cache-like object.
    _CACHE_HINTS = ("cache", "tier", "exact", "domain", "negative")

    #: Modules whose caches are keyed by ``snapshot_key`` — the
    #: feature-cache layer added alongside the serve tiers.
    _FEATURE_CACHE_MODULES = frozenset({
        "src/repro/core/features.py",
        "src/repro/core/preprocess.py",
    })

    @classmethod
    def _in_scope(cls, ctx) -> bool:
        rel = ctx.rel_path.replace("\\", "/")
        return "serve" in rel.split("/") or rel in cls._FEATURE_CACHE_MODULES

    def _is_raw_key(self, node: ast.expr) -> bool:
        """String built without going through the URL parser."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return True
        if isinstance(node, ast.JoinedStr):  # f-string
            return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Mod)):
            return self._is_raw_key(node.left) or self._is_raw_key(node.right)
        if isinstance(node, ast.Call):
            # str(url) / "...".format(...) stringify without normalizing;
            # cache_key()/domain_key() are the sanctioned producers.
            if isinstance(node.func, ast.Name) and node.func.id == "str":
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("format", "join", "lower", "strip")
            ):
                return True
        return False

    def _cache_receiver(self, expr: ast.expr) -> Optional[str]:
        """Dotted receiver name when ``expr`` names a cache-like object."""
        receiver = dotted_name(expr)
        if receiver is None:
            return None
        lowered = receiver.lower()
        if not any(hint in lowered for hint in self._CACHE_HINTS):
            return None
        return receiver

    def check_Call(self, node: ast.Call, ctx) -> None:
        if not self._in_scope(ctx):
            return
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in self._KEYED_METHODS:
            return
        receiver = self._cache_receiver(func.value)
        if receiver is None:
            return
        candidates = list(node.args[:1]) + [
            kw.value for kw in node.keywords if kw.arg in ("key", "url")
        ]
        for candidate in candidates:
            if self._is_raw_key(candidate):
                ctx.report(
                    self, candidate,
                    f"raw string passed as cache key to {receiver}."
                    f"{func.attr}(); cache keys must come from "
                    "cache_key()/domain_key() (serve layer) or "
                    "snapshot_key() (feature cache)",
                )

    def check_Subscript(self, node: ast.Subscript, ctx) -> None:
        """``cache["raw"]`` indexing bypasses the keyed methods but is the
        same bug: the entry lands under an unnormalized key."""
        if not self._in_scope(ctx):
            return
        receiver = self._cache_receiver(node.value)
        if receiver is None:
            return
        if self._is_raw_key(node.slice):
            ctx.report(
                self, node.slice,
                f"raw string used as subscript key on {receiver}; cache "
                "keys must come from cache_key()/domain_key() (serve "
                "layer) or snapshot_key() (feature cache)",
            )


# ---------------------------------------------------------------------------
# RP4xx — hygiene
# ---------------------------------------------------------------------------

class MutableDefaultRule(Rule):
    """RP401: no mutable default arguments."""

    id = "RP401"
    name = "mutable-default"
    severity = Severity.WARNING
    scopes = ALL_SCOPES
    summary = (
        "a list/dict/set default is shared across every call; state leaks "
        "between campaign runs in the same process."
    )

    _FACTORY_CALLS = frozenset({"list", "dict", "set", "bytearray"})

    def _check(self, node, ctx) -> None:
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                ctx.report(self, default,
                           f"mutable default argument in {node.name}(); use "
                           "None and create inside the function")
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in self._FACTORY_CALLS
            ):
                ctx.report(self, default,
                           f"mutable default {default.func.id}() in "
                           f"{node.name}(); use None and create inside")

    check_FunctionDef = _check
    check_AsyncFunctionDef = _check


class BareExceptRule(Rule):
    """RP402: no bare ``except:`` clauses."""

    id = "RP402"
    name = "bare-except"
    severity = Severity.WARNING
    scopes = ALL_SCOPES
    summary = (
        "bare except swallows KeyboardInterrupt/SystemExit and hides "
        "simulation-state corruption; catch ReproError or a specific type."
    )

    def check_ExceptHandler(self, node: ast.ExceptHandler, ctx) -> None:
        if node.type is None:
            ctx.report(self, node, "bare except: catches SystemExit and "
                                   "KeyboardInterrupt; name the exception type")


class LibraryAssertRule(Rule):
    """RP403: no ``assert`` for invariants in library code."""

    id = "RP403"
    name = "library-assert"
    severity = Severity.WARNING
    scopes = LIBRARY_ONLY
    summary = (
        "python -O strips asserts, so an assert-guarded invariant silently "
        "stops being checked in optimized runs; raise a ReproError subclass."
    )

    def check_Assert(self, node: ast.Assert, ctx) -> None:
        ctx.report(self, node, "assert in library code is stripped under "
                               "python -O; raise a ReproError subclass instead")


#: Registry, in report order. Ten-plus distinct IDs, each unit-tested.
RULES: Sequence[Rule] = (
    WallClockRule(),
    StdlibRandomRule(),
    UnseededRngRule(),
    LegacyNumpyRandomRule(),
    TransitiveWallClockRule(),
    RngProvenanceRule(),
    HardcodedSeedArgRule(),
    ForbiddenImportRule(),
    EnvironmentAccessRule(),
    PrintInLibraryRule(),
    SimnetPurityRule(),
    FeatureNameRule(),
    RngAnnotationRule(),
    ExportSchemaRule(),
    ServeCacheKeyRule(),
    MutableDefaultRule(),
    BareExceptRule(),
    LibraryAssertRule(),
)

RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in RULES}

#: The interprocedural subset, executed by the flow engine.
FLOW_RULES: Sequence[Rule] = tuple(
    rule for rule in RULES if isinstance(rule, FlowRule)
)


def select_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Rule]:
    """Filter the registry by ID prefixes (``RP1`` selects the family)."""
    chosen = list(RULES)
    if select:
        prefixes = tuple(select)
        chosen = [rule for rule in chosen if rule.id.startswith(prefixes)]
    if ignore:
        prefixes = tuple(ignore)
        chosen = [rule for rule in chosen if not rule.id.startswith(prefixes)]
    return chosen
