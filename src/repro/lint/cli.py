"""``python -m repro.lint`` / ``freephish-lint`` command-line front end.

Examples
--------
Lint the whole tree (the CI gate)::

    python -m repro.lint src tests examples benchmarks

Machine-readable output, determinism rules only::

    freephish-lint --format json --select RP1 src

Exit codes: 0 clean, 1 warnings only, 2 errors, 3 internal failure
(see :mod:`repro.lint.report`).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List, Optional

from .flow.baseline import BASELINE_FILENAME, Baseline
from .flow.cache import CACHE_FILENAME
from .project import ProjectContext
from .report import EXIT_INTERNAL, Severity
from .rules import RULES, select_rules
from .visitor import run_lint


def _find_project_root(start: Path) -> Path:
    """Walk up from ``start`` to the nearest directory with a pyproject."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").exists() or (candidate / ".git").exists():
            return candidate
    return current


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="freephish-lint",
        description="AST-based invariant checker for the FreePhish "
                    "reproduction: determinism, simulation purity, "
                    "feature-schema drift, hygiene.",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--select", action="append", default=None,
                        metavar="RPxxx",
                        help="only run rules whose ID starts with this "
                             "prefix (repeatable; RP1 = whole family)")
    parser.add_argument("--ignore", action="append", default=None,
                        metavar="RPxxx",
                        help="skip rules whose ID starts with this prefix")
    parser.add_argument("--fail-on", choices=("warning", "error"),
                        default="warning",
                        help="lowest severity that causes a non-zero exit "
                             "(default: warning)")
    parser.add_argument("--project-root", type=Path, default=None,
                        help="repository root for scope classification "
                             "(default: nearest pyproject.toml/.git upward)")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also list suppressed findings (text format)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule registry and exit")
    parser.add_argument("--no-flow", action="store_true",
                        help="skip the interprocedural pass (per-file "
                             "rules only)")
    parser.add_argument("--cache", type=Path, default=None, metavar="PATH",
                        help="flow summary-cache file (default: "
                             ".reprolint-cache.json at the project root)")
    parser.add_argument("--no-cache", action="store_true",
                        help="run the flow pass cold, without reading or "
                             "writing the summary cache")
    parser.add_argument("--graph-dump", choices=("dot", "json"), default=None,
                        help="print the resolved call graph in the given "
                             "format and exit")
    parser.add_argument("--baseline", type=Path, default=None, metavar="PATH",
                        help="baseline file for --ratchet/--write-baseline "
                             "(default: lint-baseline.json at the project "
                             "root)")
    parser.add_argument("--ratchet", action="store_true",
                        help="subtract baselined findings: fail only on "
                             "violations not recorded in the baseline")
    parser.add_argument("--write-baseline", action="store_true",
                        help="snapshot the current findings to the baseline "
                             "file and exit clean")
    return parser


def _render_rule_list() -> str:
    lines = []
    for rule in RULES:
        scopes = ",".join(sorted(rule.scopes)) if len(rule.scopes) < 6 else "all"
        lines.append(f"{rule.id}  {rule.name:<24} [{rule.severity.value:<7}] "
                     f"scope={scopes}")
        lines.append(f"       {rule.summary}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_render_rule_list())
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"freephish-lint: path does not exist: {', '.join(missing)}")
        return EXIT_INTERNAL

    for pattern in (args.select or []) + (args.ignore or []):
        if not any(rule.id.startswith(pattern) for rule in RULES):
            print(f"freephish-lint: no rule matches selector {pattern!r} "
                  f"(see --list-rules)")
            return EXIT_INTERNAL

    root = args.project_root if args.project_root else _find_project_root(paths[0])
    rules = select_rules(select=args.select, ignore=args.ignore)
    project = ProjectContext.build(Path(__file__).resolve().parent.parent)

    if args.no_cache:
        cache_path: Optional[Path] = None
    elif args.cache is not None:
        cache_path = args.cache
    else:
        cache_path = root / CACHE_FILENAME

    if args.graph_dump is not None:
        from .flow.cache import SummaryCache
        from .flow.engine import FlowEngine

        engine = FlowEngine(
            root,
            cache=SummaryCache(cache_path) if cache_path is not None else None,
        )
        engine.build()
        if engine.graph is None:  # pragma: no cover
            print("freephish-lint: call-graph construction failed")
            return EXIT_INTERNAL
        if args.graph_dump == "dot":
            print(engine.graph.to_dot())
        else:
            print(json.dumps(engine.graph.to_json_dict(), indent=2))
        return 0

    report = run_lint(paths, project_root=root, rules=rules, project=project,
                      flow=not args.no_flow, flow_cache=cache_path)

    baseline_path = args.baseline if args.baseline else root / BASELINE_FILENAME
    if args.write_baseline:
        Baseline.from_report(report).save(baseline_path)
        print(f"freephish-lint: wrote {len(report.findings)} finding(s) to "
              f"{baseline_path}")
        return 0
    if args.ratchet:
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, OSError) as exc:
            print(f"freephish-lint: {exc}")
            return EXIT_INTERNAL
        report = baseline.apply(report)

    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text(show_suppressed=args.show_suppressed))

    fail_on = Severity.ERROR if args.fail_on == "error" else Severity.WARNING
    return report.exit_code(fail_on)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
