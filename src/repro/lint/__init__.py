"""reprolint: AST-based invariant checker for the FreePhish reproduction.

The reproduction's scientific claim — every table and figure is a
deterministic function of one seed — is enforced here as machine-checked
rules rather than conventions. See ``docs/LINTING.md`` for the rule
catalogue and suppression syntax, and run::

    python -m repro.lint src tests examples benchmarks

Public API::

    from repro.lint import run_lint, RULES
    report = run_lint([Path("src")], project_root=Path("."))
    assert report.exit_code() == 0
"""

from .project import ProjectContext
from .report import Finding, LintReport, Severity
from .rules import FLOW_RULES, RULES, RULES_BY_ID, FlowRule, Rule, select_rules
from .suppress import SuppressionIndex
from .visitor import FileChecker, classify_scope, iter_python_files, run_lint

__all__ = [
    "Finding",
    "LintReport",
    "Severity",
    "Rule",
    "FlowRule",
    "RULES",
    "RULES_BY_ID",
    "FLOW_RULES",
    "select_rules",
    "SuppressionIndex",
    "ProjectContext",
    "FileChecker",
    "classify_scope",
    "iter_python_files",
    "run_lint",
]
