"""Per-line ``# reprolint: disable=RPxxx`` suppression parsing.

A suppression comment names the rule IDs it silences and (by convention,
enforced in review) a justification::

    rng = np.random.default_rng()  # reprolint: disable=RP103 — demo only

The directive applies to every physical line the suppressed statement
spans, so multi-line calls can carry the comment on any of their lines.
A file-wide form exists for generated or fixture-heavy modules::

    # reprolint: disable-file=RP301 — fixture uses synthetic feature names

Comments are located with :mod:`tokenize`, so ``#`` characters inside
string literals never parse as directives.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

#: ``disable=`` / ``disable-file=`` followed by comma-separated rule IDs,
#: optionally followed by a dash/colon-separated free-text justification.
_DIRECTIVE_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>RP\d{3}(?:\s*,\s*RP\d{3})*)"
    r"(?:\s*(?:[-–—:]+)\s*(?P<reason>.*\S))?\s*$"
)


@dataclass
class SuppressionIndex:
    """Maps source lines to the rule IDs suppressed there."""

    line_rules: Dict[int, Set[str]] = field(default_factory=dict)
    file_rules: Set[str] = field(default_factory=set)
    reasons: Dict[Tuple[int, str], str] = field(default_factory=dict)
    file_reasons: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        index = cls()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _DIRECTIVE_RE.search(token.string)
                if match is None:
                    continue
                rules = {r.strip() for r in match.group("rules").split(",")}
                reason = match.group("reason")
                line = token.start[0]
                if match.group("kind") == "disable-file":
                    index.file_rules |= rules
                    for rule in rules:
                        if reason:
                            index.file_reasons[rule] = reason
                else:
                    index.line_rules.setdefault(line, set()).update(rules)
                    for rule in rules:
                        if reason:
                            index.reasons[(line, rule)] = reason
        except tokenize.TokenError:
            # Unterminated strings etc.; the AST parse will report the
            # syntax error, so an empty index is the right fallback.
            pass
        return index

    def find(
        self, rule_id: str, first_line: int, last_line: Optional[int] = None
    ) -> Optional[Tuple[bool, Optional[str]]]:
        """Return ``(True, reason)`` if ``rule_id`` is suppressed on any
        physical line of ``first_line..last_line``, else ``None``."""
        if rule_id in self.file_rules:
            return True, self.file_reasons.get(rule_id)
        last = first_line if last_line is None else last_line
        for line in range(first_line, last + 1):
            if rule_id in self.line_rules.get(line, ()):
                return True, self.reasons.get((line, rule_id))
        return None
