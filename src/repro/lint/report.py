"""Findings, severities, and the text/JSON reporters for ``repro.lint``.

A :class:`Finding` is one rule violation at one source location. The
:class:`LintReport` aggregates findings across files and knows the
severity-aware exit code contract:

* ``0`` — no findings at or above the failure threshold;
* ``1`` — only warnings (when the threshold is ``warning``);
* ``2`` — at least one error;
* ``3`` — the linter itself failed (unreadable path, internal error).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

#: Schema version stamped into JSON output so downstream consumers can
#: detect format changes.
JSON_SCHEMA_VERSION = 1

EXIT_CLEAN = 0
EXIT_WARNINGS = 1
EXIT_ERRORS = 2
EXIT_INTERNAL = 3


class Severity(str, Enum):
    """How bad a finding is; drives the exit code."""

    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return 1 if self is Severity.WARNING else 2


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule_id: str
    path: str
    line: int
    col: int
    severity: Severity
    message: str
    suppressed: bool = False
    suppress_reason: Optional[str] = None

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.suppressed:
            payload["suppressed"] = True
            payload["suppress_reason"] = self.suppress_reason
        return payload


@dataclass
class LintReport:
    """All findings from one linter run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    #: Findings accepted by a committed baseline (``--ratchet``): real
    #: debt, rendered but not failing the run.
    baselined: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    def add(self, finding: Finding) -> None:
        (self.suppressed if finding.suppressed else self.findings).append(finding)

    def extend(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.baselined.extend(other.baselined)
        self.files_checked += other.files_checked

    @property
    def n_errors(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def n_warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.WARNING)

    def exit_code(self, fail_on: Severity = Severity.WARNING) -> int:
        if self.n_errors:
            return EXIT_ERRORS
        if self.n_warnings and fail_on is Severity.WARNING:
            return EXIT_WARNINGS
        return EXIT_CLEAN

    # -- renderers -------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        ordered = sorted(self.findings, key=Finding.sort_key)
        payload: Dict[str, object] = {
            "version": JSON_SCHEMA_VERSION,
            "findings": [f.to_dict() for f in ordered],
            "summary": {
                "errors": self.n_errors,
                "warnings": self.n_warnings,
                "suppressed": len(self.suppressed),
                "files": self.files_checked,
            },
        }
        if self.baselined:
            payload["baselined"] = [
                f.to_dict() for f in sorted(self.baselined, key=Finding.sort_key)
            ]
            payload["summary"]["baselined"] = len(self.baselined)  # type: ignore[index]
        return payload

    def render_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render_text(self, show_suppressed: bool = False) -> str:
        lines: List[str] = []
        for finding in sorted(self.findings, key=Finding.sort_key):
            lines.append(
                f"{finding.path}:{finding.line}:{finding.col}: "
                f"{finding.rule_id} [{finding.severity.value}] {finding.message}"
            )
        for finding in sorted(self.baselined, key=Finding.sort_key):
            lines.append(
                f"{finding.path}:{finding.line}:{finding.col}: "
                f"{finding.rule_id} [baselined] {finding.message}"
            )
        if show_suppressed:
            for finding in sorted(self.suppressed, key=Finding.sort_key):
                reason = f" ({finding.suppress_reason})" if finding.suppress_reason else ""
                lines.append(
                    f"{finding.path}:{finding.line}:{finding.col}: "
                    f"{finding.rule_id} suppressed{reason}"
                )
        baselined = (
            f", {len(self.baselined)} baselined" if self.baselined else ""
        )
        lines.append(
            f"checked {self.files_checked} files: "
            f"{self.n_errors} errors, {self.n_warnings} warnings, "
            f"{len(self.suppressed)} suppressed{baselined}"
        )
        return "\n".join(lines)
