"""Interprocedural dataflow for reprolint.

The per-file rules in :mod:`repro.lint.rules` see one AST at a time, so a
wall-clock read or an unseeded generator laundered through a helper in
another module is invisible to them. This subpackage adds the
whole-program half of the linter:

* :mod:`~repro.lint.flow.symbols` — per-module extraction into a
  serializable :class:`~repro.lint.flow.symbols.ModuleSummary` (imports
  with aliases, classes and their attribute types, ``functools.partial``
  bindings, call sites with classified arguments, direct wall-clock /
  impurity / RNG facts, suppression directives);
* :mod:`~repro.lint.flow.callgraph` — name resolution across modules
  (aliased imports, re-export chasing, method resolution through project
  classes, partials) into a :class:`~repro.lint.flow.callgraph.CallGraph`
  with dot/JSON dumps;
* :mod:`~repro.lint.flow.lattice` — taint propagation along reverse call
  edges with shortest-witness-path reconstruction;
* :mod:`~repro.lint.flow.taint` — the interprocedural rules RP105
  (transitive wall-clock), RP110 (RNG seed provenance), RP111 (hardcoded
  seed at a call site), RP210 (simnet purity);
* :mod:`~repro.lint.flow.cache` — an incremental summary cache keyed on
  per-file content hashes, so warm whole-tree runs skip parsing;
* :mod:`~repro.lint.flow.baseline` — finding fingerprints and the
  ``--ratchet`` mode that fails only on regressions;
* :mod:`~repro.lint.flow.engine` — the orchestrator used by
  :func:`repro.lint.run_lint` and the CLI.

Summaries are a pure function of file content, so a cold run and a
warm-cache run produce byte-identical findings by construction.
"""

from .baseline import Baseline, fingerprint
from .cache import SummaryCache
from .callgraph import CallGraph, SymbolIndex
from .engine import FlowEngine
from .symbols import ModuleSummary, extract_module

__all__ = [
    "Baseline",
    "fingerprint",
    "SummaryCache",
    "CallGraph",
    "SymbolIndex",
    "FlowEngine",
    "ModuleSummary",
    "extract_module",
]
