"""Incremental summary cache keyed on per-file content hashes.

Extraction (:func:`repro.lint.flow.symbols.extract_module`) is the
expensive half of a flow run — one ``ast.parse`` plus a full walk per
file. A :class:`ModuleSummary` depends only on the file's relative path
and content, so caching it under ``sha256(content)`` is sound: any edit
changes the hash, and an unchanged file can never yield a different
summary. Resolution and propagation always run fresh (they are cheap and
depend on the *set* of files), which keeps warm runs byte-identical to
cold runs by construction.

The cache is one JSON file (default ``.reprolint-cache.json`` at the
project root), written atomically via ``os.replace`` so an interrupted
run never leaves a torn file behind. An unreadable, corrupt, or
version-mismatched cache is simply ignored — the linter falls back to a
cold run and rewrites it.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional

from .symbols import ModuleSummary

#: Bump when the ModuleSummary schema changes; stale caches self-discard.
CACHE_SCHEMA = "repro.lint.flow/cache.v1"

#: Default cache filename, relative to the project root.
CACHE_FILENAME = ".reprolint-cache.json"


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class SummaryCache:
    """rel-path → serialized :class:`ModuleSummary`, persisted as JSON.

    Entries are keyed by relative path and validated against the stored
    content hash on lookup, so two files with identical content (empty
    ``__init__.py``) never swap summaries, and any edit is a clean miss.
    """

    def __init__(self, path: Optional[Path] = None) -> None:
        self.path = path
        self._entries: Dict[str, Dict[str, object]] = {}
        self.hits = 0
        self.misses = 0
        if path is not None:
            self._load(path)

    def _load(self, path: Path) -> None:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict) or payload.get("schema") != CACHE_SCHEMA:
            return
        entries = payload.get("entries")
        if isinstance(entries, dict):
            self._entries = {
                str(k): v for k, v in entries.items() if isinstance(v, dict)
            }

    def get(self, rel_path: str, sha256: str) -> Optional[ModuleSummary]:
        raw = self._entries.get(rel_path)
        if raw is None or raw.get("sha256") != sha256:
            self.misses += 1
            return None
        try:
            summary = ModuleSummary.from_dict(raw)
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            del self._entries[rel_path]
            return None
        self.hits += 1
        return summary

    def put(self, rel_path: str, summary: ModuleSummary) -> None:
        self._entries[rel_path] = summary.to_dict()

    def prune(self, live_paths) -> None:
        """Drop entries for files no longer present in the tree, so the
        cache does not grow without bound across renames."""
        live = set(live_paths)
        for key in list(self._entries):
            if key not in live:
                del self._entries[key]

    def save(self) -> None:
        if self.path is None:
            return
        payload = {
            "schema": CACHE_SCHEMA,
            "entries": self._entries,
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            tmp.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
            os.replace(str(tmp), str(self.path))
        except OSError:
            # A read-only checkout must not fail the lint run.
            try:
                tmp.unlink()
            except OSError:
                pass
