"""Project-wide symbol index and call graph construction.

Resolution turns the raw receiver chains recorded by
:mod:`repro.lint.flow.symbols` into fully qualified function names:

* bare names against the defining module's functions, classes,
  ``functools.partial`` bindings, then its import aliases (chasing
  re-export chains like ``repro.ml.__init__`` → ``repro.ml.forest``);
* ``self.method()`` through the enclosing class's method-resolution
  order (project classes only);
* ``obj.method()`` where ``obj`` is a parameter or local whose type is
  statically known (annotation or ``obj = ClassName(...)``), including
  one level of attribute hop (``self.cache.get()`` via the class's
  inferred attribute types);
* ``ClassName(...)`` to ``__init__`` / ``__post_init__``.

Anything that cannot be resolved (external libraries, dynamic dispatch)
simply produces no edge — every downstream rule stays sound with respect
to what *was* resolved and silent about what was not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .symbols import CallSite, ClassSummary, FunctionSummary, ModuleSummary

#: Bound on alias-chasing / attribute-walk depth (cycles in re-exports).
_MAX_HOPS = 12


@dataclass(frozen=True)
class Edge:
    """One resolved call: ``caller`` invokes ``callee`` at ``line``."""

    caller: str
    callee: str
    line: int
    #: Index into the caller's ``calls`` list (argument classification).
    site: int


class SymbolIndex:
    """Cross-module name resolution over a set of module summaries."""

    def __init__(self, summaries: List[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {s.module: s for s in summaries}
        self.functions: Dict[str, FunctionSummary] = {}
        self.classes: Dict[str, Tuple[str, ClassSummary]] = {}
        for summary in summaries:
            for fn in summary.functions:
                self.functions[fn.qualname] = fn
            for cls in summary.classes.values():
                self.classes[f"{summary.module}.{cls.name}"] = (summary.module, cls)

    # -- qualified-name resolution -----------------------------------------

    def resolve_qualified(self, target: str, hops: int = 0):
        """Resolve an absolute dotted path to ``("function", qualname)``,
        ``("class", qualname)``, ``("module", name)``, ``("const", info)``
        or ``None``."""
        if hops > _MAX_HOPS:
            return None
        if target in self.modules:
            return ("module", target)
        if target in self.classes:
            return ("class", target)
        if target in self.functions:
            return ("function", target)
        head, _, leaf = target.rpartition(".")
        if not head:
            return None
        container = self.resolve_qualified(head, hops + 1)
        if container is None:
            return None
        if container[0] == "module":
            return self._resolve_in_module(container[1], leaf, hops + 1)
        if container[0] == "class":
            return self._resolve_method(container[1], leaf)
        return None

    def _resolve_in_module(self, module: str, name: str, hops: int):
        summary = self.modules.get(module)
        if summary is None:
            return None
        if f"{module}.{name}" in self.functions:
            return ("function", f"{module}.{name}")
        if name in summary.classes:
            return ("class", f"{module}.{name}")
        if name in summary.constants:
            info = summary.constants[name]
            if info.get("kind") == "partial":
                return self.resolve_local(summary, str(info["target"]), hops + 1)
            return ("const", info)
        if name in summary.imports:
            return self.resolve_qualified(summary.imports[name], hops + 1)
        submodule = f"{module}.{name}"
        if submodule in self.modules:
            return ("module", submodule)
        return None

    def resolve_local(self, summary: ModuleSummary, ref: str, hops: int = 0):
        """Resolve a dotted reference as written inside ``summary``."""
        if hops > _MAX_HOPS:
            return None
        parts = ref.split(".")
        head, rest = parts[0], parts[1:]
        base = self._resolve_in_module(summary.module, head, hops)
        if base is None and head in summary.imports:
            base = self.resolve_qualified(summary.imports[head], hops + 1)
        if base is None:
            base = self.resolve_qualified(head, hops + 1)
        for attr in rest:
            if base is None:
                return None
            if base[0] == "module":
                base = self._resolve_in_module(base[1], attr, hops + 1)
            elif base[0] == "class":
                base = self._resolve_method(base[1], attr)
            else:
                return None
        return base

    # -- class machinery -----------------------------------------------------

    def mro(self, class_qual: str) -> List[str]:
        """Linearized project-class ancestry, the class itself first."""
        out: List[str] = []
        queue = [class_qual]
        while queue and len(out) < _MAX_HOPS:
            current = queue.pop(0)
            if current in out or current not in self.classes:
                continue
            out.append(current)
            module, cls = self.classes[current]
            summary = self.modules[module]
            for base in cls.bases:
                resolved = self.resolve_local(summary, base)
                if resolved is not None and resolved[0] == "class":
                    queue.append(resolved[1])
        return out

    def _resolve_method(self, class_qual: str, method: str):
        for ancestor in self.mro(class_qual):
            module, cls = self.classes[ancestor]
            if method in cls.methods:
                return ("function", f"{module}.{cls.name}.{method}")
            if method in cls.attr_types:
                summary = self.modules[module]
                attr_cls = self.resolve_local(summary, cls.attr_types[method])
                if attr_cls is not None and attr_cls[0] == "class":
                    return attr_cls
        return None

    def class_attr_type(self, class_qual: str, attr: str):
        """Resolved class of attribute ``attr`` on ``class_qual``, if known."""
        for ancestor in self.mro(class_qual):
            module, cls = self.classes[ancestor]
            if attr in cls.attr_types:
                summary = self.modules[module]
                resolved = self.resolve_local(summary, cls.attr_types[attr])
                if resolved is not None and resolved[0] == "class":
                    return resolved[1]
                return None
        return None

    # -- call-site resolution ------------------------------------------------

    def constructor_targets(self, class_qual: str) -> List[str]:
        """Functions invoked when ``ClassName(...)`` runs."""
        out = []
        for method in ("__init__", "__post_init__"):
            resolved = self._resolve_method(class_qual, method)
            if resolved is not None and resolved[0] == "function":
                out.append(resolved[1])
        return out

    def resolve_call(
        self, summary: ModuleSummary, fn: FunctionSummary, site: CallSite
    ) -> List[str]:
        """Fully qualified callee(s) for one call site (empty if unknown)."""
        chain = site.chain
        if not chain:
            return []
        head = chain[0]

        # self.attr... / typed-receiver dispatch.
        receiver_cls: Optional[str] = None
        walk_from = 1
        if head == "self" and fn.cls is not None and len(chain) >= 2:
            receiver_cls = f"{summary.module}.{fn.cls}"
        elif head in fn.local_partials and len(chain) == 1:
            resolved = self.resolve_local(summary, fn.local_partials[head])
            if resolved is not None and resolved[0] == "function":
                return [resolved[1]]
            return []
        elif head in fn.local_types and len(chain) >= 2:
            resolved = self.resolve_local(summary, fn.local_types[head])
            if resolved is not None and resolved[0] == "class":
                receiver_cls = resolved[1]

        if receiver_cls is not None:
            # Walk intermediate attributes (self.cache.get → type of
            # ``cache`` → method ``get``), then resolve the final method.
            for attr in chain[walk_from:-1]:
                next_cls = self.class_attr_type(receiver_cls, attr)
                if next_cls is None:
                    return []
                receiver_cls = next_cls
            resolved = self._resolve_method(receiver_cls, chain[-1])
            if resolved is not None and resolved[0] == "function":
                return [resolved[1]]
            if resolved is not None and resolved[0] == "class":
                return self.constructor_targets(resolved[1])
            return []

        resolved = self.resolve_local(summary, ".".join(chain))
        if resolved is None:
            return []
        if resolved[0] == "function":
            return [resolved[1]]
        if resolved[0] == "class":
            return self.constructor_targets(resolved[1])
        return []

    def callee_params(self, qualname: str) -> List[str]:
        """Parameter names of ``qualname`` with any leading ``self``/``cls``
        dropped, so positional actuals line up with the call site."""
        fn = self.functions.get(qualname)
        if fn is None:
            return []
        params = list(fn.params)
        if fn.cls is not None and params and params[0] in ("self", "cls"):
            params = params[1:]
        return params


class CallGraph:
    """Resolved edges plus forward/reverse adjacency."""

    def __init__(self, index: SymbolIndex) -> None:
        self.index = index
        self.edges: List[Edge] = []
        self.forward: Dict[str, List[Edge]] = {}
        self.reverse: Dict[str, List[Edge]] = {}

    @classmethod
    def build(cls, index: SymbolIndex) -> "CallGraph":
        graph = cls(index)
        for module in sorted(index.modules):
            summary = index.modules[module]
            for fn in summary.functions:
                for site_idx, site in enumerate(fn.calls):
                    for callee in index.resolve_call(summary, fn, site):
                        graph._add(Edge(fn.qualname, callee, site.line, site_idx))
        return graph

    def _add(self, edge: Edge) -> None:
        self.edges.append(edge)
        self.forward.setdefault(edge.caller, []).append(edge)
        self.reverse.setdefault(edge.callee, []).append(edge)

    @property
    def nodes(self) -> List[str]:
        return sorted(self.index.functions)

    def callers_of(self, qualname: str) -> List[Edge]:
        return self.reverse.get(qualname, [])

    # -- debug dumps ---------------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "schema": "repro.lint.flow/callgraph.v1",
            "nodes": self.nodes,
            "edges": [
                {"from": e.caller, "to": e.callee, "line": e.line}
                for e in sorted(
                    self.edges, key=lambda e: (e.caller, e.line, e.callee)
                )
            ],
        }

    def to_dot(self) -> str:
        lines = ["digraph reprolint_callgraph {", "  rankdir=LR;"]
        for node in self.nodes:
            lines.append(f'  "{node}";')
        for e in sorted(self.edges, key=lambda e: (e.caller, e.line, e.callee)):
            lines.append(f'  "{e.caller}" -> "{e.callee}" [label="L{e.line}"];')
        lines.append("}")
        return "\n".join(lines)
