"""The flow-analysis orchestrator.

One :class:`FlowEngine` run is: scan the library tree → load or extract
per-module summaries (content-hash cache) → build the symbol index and
call graph → execute the enabled interprocedural rules → return a
:class:`~repro.lint.report.LintReport`.

The engine reports ``files_checked=0`` because :func:`repro.lint.run_lint`
already counts every file in its per-file pass; flow findings merge into
the same report without double-counting. ``index``/``graph`` stay
available after :meth:`build` for ``--graph-dump``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..report import LintReport, Severity
from .cache import SummaryCache, content_hash
from .callgraph import CallGraph, SymbolIndex
from .symbols import ModuleSummary, extract_module
from .taint import (
    FlowContext,
    check_hardcoded_seed_args,
    check_rng_provenance,
    check_simnet_purity,
    check_transitive_wall_clock,
)

#: Directory names never scanned (mirrors the per-file pass).
_EXCLUDED_DIRS = frozenset({"__pycache__", ".git", ".venv", "venv", "build", "dist"})

#: The interprocedural rule IDs this engine implements.
FLOW_RULE_IDS = ("RP105", "RP110", "RP111", "RP210")


class FlowEngine:
    """Whole-program analysis over a project's ``src`` tree."""

    def __init__(
        self,
        project_root: Path,
        enabled: Optional[Sequence[str]] = None,
        severities: Optional[Dict[str, Severity]] = None,
        cache: Optional[SummaryCache] = None,
    ) -> None:
        self.project_root = Path(project_root)
        self.enabled = (
            tuple(enabled) if enabled is not None else FLOW_RULE_IDS
        )
        self.severities = severities if severities is not None else {}
        self.cache = cache
        self.summaries: List[ModuleSummary] = []
        self.index: Optional[SymbolIndex] = None
        self.graph: Optional[CallGraph] = None

    # -- phases --------------------------------------------------------------

    def files(self) -> List[Path]:
        src = self.project_root / "src"
        if not src.is_dir():
            return []
        return sorted(
            p for p in src.rglob("*.py")
            if not any(part in _EXCLUDED_DIRS for part in p.parts)
        )

    def build(self) -> None:
        """Extract (or load cached) summaries and build the call graph."""
        self.summaries = []
        live: List[str] = []
        for path in self.files():
            try:
                data = path.read_bytes()
            except OSError:
                continue  # the per-file pass reports unreadable files
            rel = path.relative_to(self.project_root).as_posix()
            live.append(rel)
            sha = content_hash(data)
            summary = self.cache.get(rel, sha) if self.cache is not None else None
            if summary is None:
                try:
                    source = data.decode("utf-8")
                except UnicodeDecodeError:
                    continue
                summary = extract_module(rel, source, sha)
                if summary is None:
                    continue  # syntax error — RP000 from the per-file pass
                if self.cache is not None:
                    self.cache.put(rel, summary)
            self.summaries.append(summary)
        if self.cache is not None:
            self.cache.prune(live)
            self.cache.save()
        self.index = SymbolIndex(self.summaries)
        self.graph = CallGraph.build(self.index)

    def run(self) -> LintReport:
        """Build (if needed) and execute the enabled flow rules."""
        if self.graph is None:
            self.build()
        if self.index is None or self.graph is None:  # pragma: no cover
            raise RuntimeError("flow engine build() did not produce a graph")
        ctx = FlowContext(self.index, self.graph, self.severities)
        report = LintReport(files_checked=0)
        enabled = set(self.enabled)
        if "RP105" in enabled:
            for finding in check_transitive_wall_clock(ctx):
                report.add(finding)
        if "RP210" in enabled:
            for finding in check_simnet_purity(ctx):
                report.add(finding)
        rng_sites = set()
        if "RP110" in enabled:
            findings, rng_sites = check_rng_provenance(ctx)
            for finding in findings:
                report.add(finding)
        if "RP111" in enabled:
            for finding in check_hardcoded_seed_args(ctx, rng_sites):
                report.add(finding)
        return report
