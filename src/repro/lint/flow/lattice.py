"""Taint propagation with witness paths over the call graph.

A *source* seeds taint at a function; taint flows from callee to caller
(if ``G`` reaches a wall-clock read, so does anything that calls ``G``).
Propagation is a deterministic BFS over reverse call edges that records,
for every tainted function, the **shortest witness path** down to the
origin — the chain reported in the finding message, per the requirement
that an interprocedural finding names the full call path.

Suppressions participate in propagation itself:

* a directive on the *origin* line kills the source outright (the whole
  downstream cone is sanctioned);
* a directive on a *call-site* line sanctions that edge: the caller does
  not become tainted through it, so the sanction also shields the
  caller's own callers — suppressing at the boundary function is enough.

Both cases surface as *suppressed findings* so ``--show-suppressed``
lists them and the justification gate still applies.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .callgraph import CallGraph

#: ``(caller_qualname, line_in_caller)`` — one step of a witness path.
Step = Tuple[str, int]


@dataclass(frozen=True)
class Origin:
    """Where taint enters the program."""

    func: str
    line: int
    detail: str


@dataclass
class Witness:
    """Evidence that a function is tainted: the chain down to the origin.

    ``steps`` starts at the tainted function and ends at the function
    containing the origin; each step carries the call-site line used.
    """

    origin: Origin
    steps: List[Step] = field(default_factory=list)

    @property
    def sink_line(self) -> int:
        return self.steps[0][1] if self.steps else self.origin.line

    @property
    def depth(self) -> int:
        return len(self.steps)


@dataclass
class SuppressedHit:
    """A source or edge silenced by a suppression directive."""

    func: str
    line: int
    reason: Optional[str]
    origin: Origin


@dataclass
class Propagation:
    """Result of one taint pass."""

    tainted: Dict[str, Witness] = field(default_factory=dict)
    suppressed: List[SuppressedHit] = field(default_factory=list)


def propagate(
    graph: CallGraph,
    sources: Dict[str, Origin],
    suppression: Callable[[str, int], Optional[Tuple[bool, Optional[str]]]],
) -> Propagation:
    """Flow taint from ``sources`` to every transitive caller.

    ``suppression(func_qualname, line)`` answers whether the rule is
    suppressed on ``line`` of the file defining ``func_qualname``.
    """
    result = Propagation()
    queue: deque = deque()

    for func in sorted(sources):
        origin = sources[func]
        hit = suppression(func, origin.line)
        if hit is not None:
            result.suppressed.append(
                SuppressedHit(func, origin.line, hit[1], origin)
            )
            continue
        result.tainted[func] = Witness(origin=origin, steps=[])
        queue.append(func)

    while queue:
        current = queue.popleft()
        witness = result.tainted[current]
        for edge in sorted(
            graph.callers_of(current), key=lambda e: (e.caller, e.line)
        ):
            if edge.caller in result.tainted:
                continue
            hit = suppression(edge.caller, edge.line)
            if hit is not None:
                result.suppressed.append(
                    SuppressedHit(edge.caller, edge.line, hit[1], witness.origin)
                )
                continue
            result.tainted[edge.caller] = Witness(
                origin=witness.origin,
                steps=[(edge.caller, edge.line)] + witness.steps,
            )
            queue.append(edge.caller)

    return result
