"""Per-module fact extraction for the interprocedural analysis.

One file is parsed exactly once into a :class:`ModuleSummary` — a plain,
JSON-serializable record of everything the whole-program passes need:

* the import alias table (``np`` → ``numpy``, relative imports resolved
  to absolute module paths);
* classes with bases, methods, and statically inferable attribute types
  (class-level annotations plus ``self.x = ClassName(...)`` in methods);
* module-level constants, including ``functools.partial`` bindings;
* one :class:`FunctionSummary` per function/method (module-level
  statements form a ``<module>`` pseudo-function) holding every call
  site with its receiver chain and classified arguments, plus the
  *direct* facts the taint passes seed from: wall-clock reads, impure
  operations (I/O, global writes), and ``default_rng`` mints;
* the file's suppression directives (so flow findings can honour
  suppressions at both taint origins and sinks without re-reading files
  on warm runs).

A summary depends only on the file's content — never on other modules —
which is what makes the content-hash cache sound: resolution against the
rest of the project happens later, in :mod:`repro.lint.flow.callgraph`.
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from ..rules import WallClockRule, dotted_name
from ..suppress import SuppressionIndex

#: Pseudo-function name for statements at module top level.
MODULE_BODY = "<module>"

#: ``default_rng`` spellings accepted by RP103; mirrored here for mints.
_DEFAULT_RNG_CHAINS = frozenset(
    {"default_rng", "np.random.default_rng", "numpy.random.default_rng"}
)

#: Seed expressions considered *sanctioned* provenance when they appear
#: syntactically: SeedBank streams, explicit SeedSequences, and
#: seed-carrying attributes (``self.seed``, ``config.random_state``, …).
_SANCTIONED_SEED_CALLS = frozenset({"child_seed", "child", "fresh", "SeedSequence"})
_SANCTIONED_SEED_ATTRS = frozenset({"seed", "_seed", "random_state", "root_seed"})

#: Call chains that perform I/O or otherwise escape the simulation
#: substrate; any function reaching one is impure for RP210.
_IMPURE_CALLS = frozenset({
    "open", "io.open",
    "os.remove", "os.unlink", "os.rename", "os.replace", "os.rmdir",
    "os.mkdir", "os.makedirs", "os.removedirs", "os.truncate",
    "os.chmod", "os.system",
})
_IMPURE_CALL_PREFIXES = ("shutil.", "sys.stdout.", "sys.stderr.")
#: Method names that write regardless of receiver (pathlib-style).
_IMPURE_METHODS = frozenset({"write_text", "write_bytes", "touch"})

_BANNED_WALL_CALLS = WallClockRule._BANNED_CALLS
_BANNED_FROM_TIME = WallClockRule._BANNED_FROM_TIME


@dataclass
class CallSite:
    """One resolved-later call expression inside a function body."""

    line: int
    col: int
    #: Receiver chain, e.g. ``["self", "cache", "get"]`` or
    #: ``["run_serve_bench"]``; resolution happens against the project
    #: symbol index.
    chain: List[str]
    #: Classified positional arguments (see :func:`classify_value`).
    args: List[Dict[str, object]] = field(default_factory=list)
    #: Classified keyword arguments by name.
    kwargs: Dict[str, Dict[str, object]] = field(default_factory=dict)


@dataclass
class FunctionSummary:
    """Statically harvested facts about one function or method."""

    qualname: str
    name: str
    module: str
    cls: Optional[str]
    line: int
    params: List[str] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    #: Function-local ``functools.partial`` bindings: var → target ref.
    local_partials: Dict[str, str] = field(default_factory=dict)
    #: ``[line, detail]`` pairs of direct wall-clock reads/imports.
    wall_sources: List[List[object]] = field(default_factory=list)
    #: ``[line, detail]`` pairs of direct impure operations.
    impure_sources: List[List[object]] = field(default_factory=list)
    #: ``default_rng`` mints: ``{"line": n, "arg": <classified value>}``.
    rng_mints: List[Dict[str, object]] = field(default_factory=list)
    #: Annotated/constructed local variable types: var → type ref string.
    local_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ClassSummary:
    name: str
    bases: List[str] = field(default_factory=list)
    methods: List[str] = field(default_factory=list)
    #: Attribute name → type reference string (``"VerdictService"`` or
    #: ``"serve.service.VerdictService"``), resolved later.
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleSummary:
    """Everything the whole-program passes need from one file."""

    module: str
    path: str
    sha256: str
    imports: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    #: Module-level bindings: name → {"kind": "int"|"partial", ...}.
    constants: Dict[str, Dict[str, object]] = field(default_factory=dict)
    functions: List[FunctionSummary] = field(default_factory=list)
    #: Suppression directives: ``{"file_rules": [...], "lines": [[line,
    #: [rules...]], ...], "reasons": [[line, rule, reason], ...],
    #: "file_reasons": [[rule, reason], ...]}`` — list-of-pairs form so a
    #: JSON round-trip is lossless (JSON object keys are strings).
    suppressions: Dict[str, list] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ModuleSummary":
        summary = cls(
            module=payload["module"],
            path=payload["path"],
            sha256=payload["sha256"],
            imports=dict(payload.get("imports", {})),
            constants={k: dict(v) for k, v in payload.get("constants", {}).items()},
            suppressions={k: list(v) for k, v in payload.get("suppressions", {}).items()},
        )
        for name, raw in payload.get("classes", {}).items():
            summary.classes[name] = ClassSummary(
                name=raw["name"],
                bases=list(raw.get("bases", [])),
                methods=list(raw.get("methods", [])),
                attr_types=dict(raw.get("attr_types", {})),
            )
        for raw in payload.get("functions", []):
            summary.functions.append(FunctionSummary(
                qualname=raw["qualname"],
                name=raw["name"],
                module=raw["module"],
                cls=raw.get("cls"),
                line=raw["line"],
                params=list(raw.get("params", [])),
                calls=[
                    CallSite(
                        line=c["line"], col=c["col"], chain=list(c["chain"]),
                        args=[dict(a) for a in c.get("args", [])],
                        kwargs={k: dict(v) for k, v in c.get("kwargs", {}).items()},
                    )
                    for c in raw.get("calls", [])
                ],
                local_partials=dict(raw.get("local_partials", {})),
                wall_sources=[list(s) for s in raw.get("wall_sources", [])],
                impure_sources=[list(s) for s in raw.get("impure_sources", [])],
                rng_mints=[dict(m) for m in raw.get("rng_mints", [])],
                local_types=dict(raw.get("local_types", {})),
            ))
        return summary

    def suppressed_at(self, rule_id: str, line: int) -> Optional[Tuple[bool, Optional[str]]]:
        """Mirror :meth:`SuppressionIndex.find` over the serialized form."""
        data = self.suppressions
        if rule_id in data.get("file_rules", []):
            for rule, reason in data.get("file_reasons", []):
                if rule == rule_id:
                    return True, reason
            return True, None
        for entry_line, rules in data.get("lines", []):
            if entry_line == line and rule_id in rules:
                for r_line, rule, reason in data.get("reasons", []):
                    if r_line == line and rule == rule_id:
                        return True, reason
                return True, None
        return None


def module_name_for(rel_path: str) -> str:
    """``src/repro/serve/bench.py`` → ``repro.serve.bench`` (the leading
    ``src`` component and ``__init__`` suffix are dropped)."""
    parts = rel_path.replace("\\", "/").split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _resolve_relative(module: str, is_package: bool, level: int,
                      target: Optional[str]) -> str:
    """Absolute module path for a (possibly relative) ``from`` import."""
    if level == 0:
        return target or ""
    parts = module.split(".") if module else []
    # The package containing this module: itself for __init__.py.
    package = parts if is_package else parts[:-1]
    if level > 1:
        package = package[: len(package) - (level - 1)]
    base = list(package)
    if target:
        base.extend(target.split("."))
    return ".".join(base)


def _chain_of(func: ast.expr) -> Optional[List[str]]:
    chain = dotted_name(func)
    return chain.split(".") if chain is not None else None


def _annotation_ref(annotation: Optional[ast.expr]) -> Optional[str]:
    """Dotted reference of a (possibly wrapped/stringified) annotation."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    # Unwrap Optional[X] / Final[X]; element types of sequences are not
    # tracked here (method calls on elements stay unresolved — safe).
    if isinstance(annotation, ast.Subscript):
        head = dotted_name(annotation.value)
        if head is not None and head.split(".")[-1] in ("Optional", "Final", "Annotated"):
            inner = annotation.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return _annotation_ref(inner)
        return None
    return dotted_name(annotation)


class _FunctionScanner:
    """Collects calls, sources, mints, and local types for one function."""

    def __init__(self, summary: FunctionSummary, aliases: Dict[str, str]) -> None:
        self.summary = summary
        self.aliases = aliases
        self._global_names: set = set()
        self._local_values: Dict[str, Dict[str, object]] = {}

    # -- value classification ----------------------------------------------

    def classify_value(self, node: ast.expr) -> Dict[str, object]:
        """Classify a seed-carrying expression for the provenance pass."""
        if isinstance(node, ast.Constant):
            if node.value is None:
                return {"kind": "none"}
            if isinstance(node.value, bool):
                return {"kind": "const"}
            if isinstance(node.value, int):
                return {"kind": "literal", "value": node.value}
            return {"kind": "const"}
        if isinstance(node, ast.Call):
            chain = _chain_of(node.func)
            if chain is not None and chain[-1] in _SANCTIONED_SEED_CALLS:
                return {"kind": "sanctioned", "via": chain[-1]}
            return {"kind": "opaque"}
        if isinstance(node, ast.Attribute):
            if node.attr in _SANCTIONED_SEED_ATTRS:
                return {"kind": "sanctioned", "via": node.attr}
            return {"kind": "opaque"}
        if isinstance(node, ast.Name):
            if node.id in self.summary.params:
                return {"kind": "param", "name": node.id}
            if node.id in self._local_values:
                return dict(self._local_values[node.id])
            # Module constant or imported name: judged at resolution time.
            return {"kind": "name", "ref": self.aliases.get(node.id, node.id)}
        if isinstance(node, (ast.BinOp, ast.IfExp)):
            # Seed arithmetic (``base + 97 * k``) and conditional fallbacks
            # derive from their operands: if any operand is sanctioned the
            # expression is a sanctioned derivation; a lone parameter
            # operand keeps flowing as that parameter.
            if isinstance(node, ast.BinOp):
                operands = [node.left, node.right]
            else:
                operands = [node.body, node.orelse]
            kinds = [self.classify_value(operand) for operand in operands]
            for value in kinds:
                if value["kind"] in ("sanctioned", "name"):
                    return dict(value)
            for value in kinds:
                if value["kind"] == "param":
                    return dict(value)
        return {"kind": "opaque"}

    # -- traversal ----------------------------------------------------------

    def scan(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._scan_stmt(stmt)

    def _scan_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Global):
            self._global_names.update(stmt.names)
        elif isinstance(stmt, ast.ImportFrom) and stmt.module == "time":
            for alias in stmt.names:
                if alias.name in _BANNED_FROM_TIME:
                    self.summary.wall_sources.append(
                        [stmt.lineno, f"time.{alias.name}"]
                    )
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._scan_assign(stmt)
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.stmt):
                self._scan_stmt(node)
            else:
                self._scan_expr_tree(node)

    def _scan_assign(self, stmt: ast.stmt) -> None:
        targets: List[ast.expr]
        value: Optional[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        else:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id in self._global_names:
                self.summary.impure_sources.append(
                    [stmt.lineno, f"write to module global {target.id!r}"]
                )
        if value is None:
            return
        single = targets[0] if len(targets) == 1 else None
        if isinstance(single, ast.Name):
            # Local type from annotation or constructor-looking call, plus
            # functools.partial bindings so ``f = partial(g); f()`` edges
            # resolve to ``g``.
            if isinstance(stmt, ast.AnnAssign):
                ref = _annotation_ref(stmt.annotation)
                if ref is not None:
                    self.summary.local_types[single.id] = ref
            elif isinstance(value, ast.Call):
                chain = _chain_of(value.func)
                if chain is not None and chain[-1] == "partial" and value.args:
                    inner = _chain_of(value.args[0])
                    if inner is not None:
                        self.summary.local_partials[single.id] = ".".join(inner)
                elif chain is not None and chain[-1][:1].isupper():
                    self.summary.local_types[single.id] = ".".join(chain)
            # Local seed value for classification (last assignment wins).
            self._local_values[single.id] = self.classify_value(value)

    def _scan_expr_tree(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._record_call(sub)

    def _record_call(self, node: ast.Call) -> None:
        chain = _chain_of(node.func)
        if chain is None:
            return
        dotted = ".".join(chain)
        resolved = self.aliases.get(chain[0])
        expanded = (
            ".".join([resolved] + chain[1:]) if resolved is not None else dotted
        )
        line = node.lineno

        if dotted in _BANNED_WALL_CALLS or expanded in _BANNED_WALL_CALLS:
            self.summary.wall_sources.append([line, dotted])
        if (
            dotted in _IMPURE_CALLS
            or expanded in _IMPURE_CALLS
            or expanded.startswith(_IMPURE_CALL_PREFIXES)
            or chain[-1] in _IMPURE_METHODS
        ):
            self.summary.impure_sources.append([line, dotted])
        if dotted in _DEFAULT_RNG_CHAINS or expanded in _DEFAULT_RNG_CHAINS:
            seed_arg: Optional[ast.expr] = node.args[0] if node.args else None
            for kw in node.keywords:
                if kw.arg == "seed":
                    seed_arg = kw.value
            if seed_arg is not None:
                self.summary.rng_mints.append(
                    {"line": line, "arg": self.classify_value(seed_arg)}
                )

        self.summary.calls.append(CallSite(
            line=line,
            col=node.col_offset,
            chain=chain,
            args=[self.classify_value(arg) for arg in node.args],
            kwargs={
                kw.arg: self.classify_value(kw.value)
                for kw in node.keywords
                if kw.arg is not None
            },
        ))


def _param_names(args: ast.arguments) -> List[str]:
    return [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]


def _harvest_function(
    node: ast.stmt,
    module: str,
    cls: Optional[str],
    aliases: Dict[str, str],
) -> FunctionSummary:
    qual = f"{module}.{cls}.{node.name}" if cls else f"{module}.{node.name}"
    summary = FunctionSummary(
        qualname=qual, name=node.name, module=module, cls=cls, line=node.lineno,
        params=_param_names(node.args),
    )
    scanner = _FunctionScanner(summary, aliases)
    for arg in [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]:
        ref = _annotation_ref(arg.annotation)
        if ref is not None:
            summary.local_types[arg.arg] = ref
    scanner.scan(node.body)
    return summary


def _harvest_class(
    node: ast.ClassDef, module: str, aliases: Dict[str, str]
) -> Tuple[ClassSummary, List[FunctionSummary]]:
    cls = ClassSummary(name=node.name)
    for base in node.bases:
        ref = dotted_name(base)
        if ref is not None:
            cls.bases.append(ref)
    methods: List[FunctionSummary] = []
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls.methods.append(item.name)
            methods.append(_harvest_function(item, module, node.name, aliases))
            for sub in ast.walk(item):
                if (
                    isinstance(sub, ast.Assign)
                    and len(sub.targets) == 1
                    and isinstance(sub.targets[0], ast.Attribute)
                    and isinstance(sub.targets[0].value, ast.Name)
                    and sub.targets[0].value.id == "self"
                    and isinstance(sub.value, ast.Call)
                ):
                    chain = _chain_of(sub.value.func)
                    if chain is not None and chain[-1][:1].isupper():
                        cls.attr_types.setdefault(
                            sub.targets[0].attr, ".".join(chain)
                        )
                elif (
                    isinstance(sub, ast.AnnAssign)
                    and isinstance(sub.target, ast.Attribute)
                    and isinstance(sub.target.value, ast.Name)
                    and sub.target.value.id == "self"
                ):
                    ref = _annotation_ref(sub.annotation)
                    if ref is not None:
                        cls.attr_types.setdefault(sub.target.attr, ref)
        elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            ref = _annotation_ref(item.annotation)
            if ref is not None:
                cls.attr_types.setdefault(item.target.id, ref)
    return cls, methods


def _suppressions_payload(source: str) -> Dict[str, list]:
    index = SuppressionIndex.from_source(source)
    return {
        "file_rules": sorted(index.file_rules),
        "lines": [
            [line, sorted(rules)] for line, rules in sorted(index.line_rules.items())
        ],
        "reasons": [
            [line, rule, reason]
            for (line, rule), reason in sorted(index.reasons.items())
        ],
        "file_reasons": sorted(index.file_reasons.items()),
    }


def extract_module(
    rel_path: str, source: str, sha256: str = ""
) -> Optional[ModuleSummary]:
    """Parse ``source`` into a :class:`ModuleSummary`; None on syntax error
    (the per-file pass reports RP000 for those)."""
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError:
        return None
    module = module_name_for(rel_path)
    is_package = rel_path.replace("\\", "/").endswith("__init__.py")
    summary = ModuleSummary(
        module=module, path=rel_path, sha256=sha256,
        suppressions=_suppressions_payload(source),
    )

    # Pass 1: aliases and module-level constants, needed by every scanner.
    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                name = alias.asname if alias.asname else alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                summary.imports[name] = target
        elif isinstance(stmt, ast.ImportFrom):
            base = _resolve_relative(module, is_package, stmt.level, stmt.module)
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                name = alias.asname if alias.asname else alias.name
                summary.imports[name] = f"{base}.{alias.name}" if base else alias.name
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
            stmt.targets[0], ast.Name
        ):
            target_name = stmt.targets[0].id
            value = stmt.value
            if isinstance(value, ast.Constant) and isinstance(value.value, int) \
                    and not isinstance(value.value, bool):
                summary.constants[target_name] = {"kind": "int", "value": value.value}
            elif isinstance(value, ast.Call):
                chain = _chain_of(value.func)
                if chain is not None and chain[-1] == "partial" and value.args:
                    inner = _chain_of(value.args[0])
                    if inner is not None:
                        summary.constants[target_name] = {
                            "kind": "partial", "target": ".".join(inner),
                        }

    # Pass 2: functions, classes, and the module-body pseudo-function.
    body_fn = FunctionSummary(
        qualname=f"{module}.{MODULE_BODY}", name=MODULE_BODY, module=module,
        cls=None, line=1,
    )
    body_scanner = _FunctionScanner(body_fn, summary.imports)
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary.functions.append(
                _harvest_function(stmt, module, None, summary.imports)
            )
        elif isinstance(stmt, ast.ClassDef):
            cls_summary, methods = _harvest_class(stmt, module, summary.imports)
            summary.classes[cls_summary.name] = cls_summary
            summary.functions.extend(methods)
        else:
            body_scanner._scan_stmt(stmt)
    if body_fn.calls or body_fn.wall_sources or body_fn.impure_sources \
            or body_fn.rng_mints:
        summary.functions.append(body_fn)
    return summary
