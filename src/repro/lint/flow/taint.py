"""The interprocedural rules: RP105, RP110, RP111, RP210.

Each rule is a driver over the shared :class:`FlowContext` (symbol index
+ call graph + per-module suppression data) producing plain
:class:`~repro.lint.report.Finding` objects:

* **RP105 — transitive wall-clock.** Generalizes RP101 across call
  edges: a library function whose call chain reaches ``time.*`` /
  ``datetime.now`` is flagged at the call site where the taint enters,
  with the full chain down to the clock read in the message. Functions
  containing a *direct* read are RP101's territory and are skipped here.
* **RP110 — RNG provenance.** Every ``np.random.default_rng(seed)``
  mint must trace its seed to ``SeedBank`` (``child_seed``/``child``/
  ``fresh``), an explicit ``SeedSequence``, a seed-carrying attribute,
  or a named integer constant. Seeds arriving through parameters are
  chased through library call sites; a hardcoded or untraceable value
  anywhere along the chain is flagged where it enters.
* **RP111 — hardcoded seed at a call site.** An integer literal passed
  to a seed-named parameter (``seed`` / ``random_state`` / …) of a
  *project* function or class pins a sub-stream independently of the
  root seed. Defaults declared in signatures are the documented
  contract and stay exempt; call sites must derive.
* **RP210 — simnet purity.** Functions in the ``simnet`` substrate must
  not perform I/O or write module globals, directly or through any
  callee; the finding carries the chain to the impure operation.

Suppression directives apply at both the taint **origin** and the
**sink** call-site line (see :mod:`repro.lint.flow.lattice`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..report import Finding, Severity
from .callgraph import CallGraph, SymbolIndex
from .lattice import Origin, Witness, propagate
from .symbols import FunctionSummary, ModuleSummary

#: Parameter names that carry seeds across call boundaries (RP110/RP111).
SEED_PARAM_NAMES = frozenset(
    {"seed", "random_state", "rng_seed", "root_seed", "seed_value"}
)


class FlowContext:
    """Shared state for one whole-program pass."""

    def __init__(
        self,
        index: SymbolIndex,
        graph: CallGraph,
        severities: Optional[Dict[str, Severity]] = None,
    ) -> None:
        self.index = index
        self.graph = graph
        self.severities = severities if severities is not None else {}

    # -- helpers -------------------------------------------------------------

    def summary_of(self, func_qual: str) -> Optional[ModuleSummary]:
        fn = self.index.functions.get(func_qual)
        if fn is None:
            return None
        return self.index.modules.get(fn.module)

    def path_of(self, func_qual: str) -> str:
        summary = self.summary_of(func_qual)
        return summary.path if summary is not None else "<unknown>"

    def suppression_for(self, rule_id: str):
        def check(func_qual: str, line: int):
            summary = self.summary_of(func_qual)
            if summary is None:
                return None
            return summary.suppressed_at(rule_id, line)
        return check

    def severity(self, rule_id: str) -> Severity:
        return self.severities.get(rule_id, Severity.ERROR)

    def finding(
        self,
        rule_id: str,
        func_qual: str,
        line: int,
        message: str,
        suppressed: bool = False,
        reason: Optional[str] = None,
    ) -> Finding:
        return Finding(
            rule_id=rule_id,
            path=self.path_of(func_qual),
            line=line,
            col=1,
            severity=self.severity(rule_id),
            message=message,
            suppressed=suppressed,
            suppress_reason=reason,
        )


def _short(qualname: str) -> str:
    return qualname[len("repro."):] if qualname.startswith("repro.") else qualname


def _render_chain(ctx: FlowContext, func_qual: str, witness: Witness) -> str:
    names = [func_qual] + [f for f, _line in witness.steps[1:]] \
        + [witness.origin.func]
    # The witness's first step *is* func_qual; dedupe adjacent repeats.
    rendered: List[str] = []
    for name in names:
        if not rendered or rendered[-1] != name:
            rendered.append(_short(name))
    origin_at = f"{ctx.path_of(witness.origin.func)}:{witness.origin.line}"
    return f"{' -> '.join(rendered)} [{witness.origin.detail} at {origin_at}]"


def _iter_functions(ctx: FlowContext) -> List[Tuple[ModuleSummary, FunctionSummary]]:
    out = []
    for module in sorted(ctx.index.modules):
        summary = ctx.index.modules[module]
        for fn in summary.functions:
            out.append((summary, fn))
    return out


# ---------------------------------------------------------------------------
# Reachability rules: RP105 (wall clock) and RP210 (simnet purity)
# ---------------------------------------------------------------------------

def _collect_sources(
    ctx: FlowContext,
    rule_id: str,
    attr: str,
) -> Tuple[Dict[str, Origin], List[Finding]]:
    """First unsuppressed direct source per function; suppressed ones
    become suppressed findings at their origin lines."""
    sources: Dict[str, Origin] = {}
    suppressed: List[Finding] = []
    check = ctx.suppression_for(rule_id)
    for _summary, fn in _iter_functions(ctx):
        for line, detail in getattr(fn, attr):
            hit = check(fn.qualname, line)
            if hit is not None:
                suppressed.append(ctx.finding(
                    rule_id, fn.qualname, line,
                    f"direct source {detail} sanctioned here",
                    suppressed=True, reason=hit[1],
                ))
                continue
            if fn.qualname not in sources:
                sources[fn.qualname] = Origin(fn.qualname, line, str(detail))
    return sources, suppressed


def _in_simnet(func_qual: str) -> bool:
    return "simnet" in func_qual.split(".")


def check_transitive_wall_clock(ctx: FlowContext) -> List[Finding]:
    """RP105: no library call chain may reach a wall-clock read."""
    sources, pre_suppressed = _collect_sources(ctx, "RP105", "wall_sources")
    result = propagate(ctx.graph, sources, ctx.suppression_for("RP105"))
    findings = list(pre_suppressed)
    for func_qual in sorted(result.tainted):
        witness = result.tainted[func_qual]
        if not witness.steps:
            continue  # direct read: RP101's finding, not ours
        findings.append(ctx.finding(
            "RP105", func_qual, witness.sink_line,
            "wall-clock read reachable through call chain "
            f"{_render_chain(ctx, func_qual, witness)}; simulation results "
            "must be pure functions of the seed",
        ))
    for hit in result.suppressed:
        if hit.func in sources and hit.line == sources[hit.func].line:
            continue  # already reported by _collect_sources
        findings.append(ctx.finding(
            "RP105", hit.func, hit.line,
            f"wall-clock chain via {_short(hit.origin.func)} sanctioned here",
            suppressed=True, reason=hit.reason,
        ))
    return findings


def check_simnet_purity(ctx: FlowContext) -> List[Finding]:
    """RP210: simnet functions must not reach I/O or global writes."""
    sources, pre_suppressed = _collect_sources(ctx, "RP210", "impure_sources")
    result = propagate(ctx.graph, sources, ctx.suppression_for("RP210"))
    findings = list(pre_suppressed)
    for func_qual in sorted(result.tainted):
        if not _in_simnet(func_qual):
            continue
        witness = result.tainted[func_qual]
        if witness.steps:
            message = (
                "impure operation reachable from simnet through call chain "
                f"{_render_chain(ctx, func_qual, witness)}; the simulated "
                "substrate must not perform I/O or write globals"
            )
        else:
            message = (
                f"impure operation {witness.origin.detail} in simnet code; "
                "the simulated substrate must not perform I/O or write globals"
            )
        findings.append(ctx.finding(
            "RP210", func_qual, witness.sink_line, message,
        ))
    for hit in result.suppressed:
        if not _in_simnet(hit.func):
            continue
        if hit.func in sources and hit.line == sources[hit.func].line:
            continue
        findings.append(ctx.finding(
            "RP210", hit.func, hit.line,
            f"impure chain via {_short(hit.origin.func)} sanctioned here",
            suppressed=True, reason=hit.reason,
        ))
    return findings


# ---------------------------------------------------------------------------
# Provenance rules: RP110 (generator seeds) and RP111 (hardcoded seeds)
# ---------------------------------------------------------------------------

def _resolve_value_kind(
    ctx: FlowContext, summary: ModuleSummary, value: Dict[str, object]
) -> Dict[str, object]:
    """Fold ``name`` references through the symbol index: a name that
    resolves to a module-level integer constant is sanctioned provenance
    (it is named once, in one place); anything else stays opaque."""
    if value.get("kind") != "name":
        return value
    resolved = ctx.index.resolve_local(summary, str(value.get("ref", "")))
    if resolved is not None and resolved[0] == "const" \
            and resolved[1].get("kind") == "int":
        return {"kind": "sanctioned", "via": str(value.get("ref"))}
    return {"kind": "opaque"}


def _describe_value(value: Dict[str, object]) -> str:
    kind = value.get("kind")
    if kind == "literal":
        return f"hardcoded literal {value.get('value')}"
    if kind == "none":
        return "None (falls back to OS entropy)"
    return "an untraceable expression"


def _actual_for(
    site, params: List[str], param: str
) -> Optional[Dict[str, object]]:
    """The classified actual bound to ``param`` at ``site``; None if the
    parameter's default applies."""
    if param in site.kwargs:
        return site.kwargs[param]
    if param in params:
        position = params.index(param)
        if position < len(site.args):
            return site.args[position]
    return None


def check_rng_provenance(ctx: FlowContext) -> Tuple[List[Finding], Set[Tuple[str, int]]]:
    """RP110: every generator's seed must trace back to the seed bank.

    Returns the findings plus the set of ``(path, line)`` call sites it
    reported, so RP111 does not double-report the same literal.
    """
    findings: List[Finding] = []
    reported_sites: Set[Tuple[str, int]] = set()
    check = ctx.suppression_for("RP110")
    #: Worklist of parameters that must receive sanctioned seeds:
    #: (func_qual, param, chain of (func, line) from demander to mint).
    demands: List[Tuple[str, str, Tuple[Tuple[str, int], ...]]] = []
    seen: Set[Tuple[str, str]] = set()

    def emit(func_qual: str, line: int, message: str, origin_line: int,
             origin_func: str) -> None:
        hit = check(func_qual, line)
        if hit is None and origin_func != func_qual:
            hit = check(origin_func, origin_line)
        if hit is not None:
            findings.append(ctx.finding(
                "RP110", func_qual, line, message,
                suppressed=True, reason=hit[1],
            ))
            return
        findings.append(ctx.finding("RP110", func_qual, line, message))
        reported_sites.add((ctx.path_of(func_qual), line))

    for summary, fn in _iter_functions(ctx):
        for mint in fn.rng_mints:
            line = int(mint["line"])
            value = _resolve_value_kind(ctx, summary, dict(mint["arg"]))
            kind = value.get("kind")
            if kind == "sanctioned":
                continue
            if kind == "param":
                key = (fn.qualname, str(value["name"]))
                if key not in seen:
                    seen.add(key)
                    demands.append((fn.qualname, str(value["name"]), ()))
                continue
            emit(
                fn.qualname, line,
                f"np.random.Generator minted from {_describe_value(value)}; "
                "derive the seed from SeedBank.child_seed so it traces to "
                "the root seed",
                line, fn.qualname,
            )

    while demands:
        func_qual, param, chain = demands.pop(0)
        mint_fn = chain[-1][0] if chain else func_qual
        params = ctx.index.callee_params(func_qual)
        for edge in sorted(
            ctx.graph.callers_of(func_qual), key=lambda e: (e.caller, e.line)
        ):
            caller = ctx.index.functions.get(edge.caller)
            caller_summary = ctx.summary_of(edge.caller)
            if caller is None or caller_summary is None:
                continue
            site = caller.calls[edge.site]
            actual = _actual_for(site, params, param)
            if actual is None:
                continue  # signature default applies — documented contract
            value = _resolve_value_kind(ctx, caller_summary, dict(actual))
            kind = value.get("kind")
            if kind == "sanctioned":
                continue
            if kind == "param":
                key = (edge.caller, str(value["name"]))
                if key not in seen:
                    seen.add(key)
                    demands.append((
                        edge.caller, str(value["name"]),
                        ((func_qual, edge.line),) + chain,
                    ))
                continue
            path_names = [edge.caller, func_qual] + [f for f, _l in chain]
            rendered = " -> ".join(_short(n) for n in path_names)
            mint_line = edge.line if not chain else chain[-1][1]
            emit(
                edge.caller, edge.line,
                f"{_describe_value(value)} flows into np.random.default_rng "
                f"through {param}= along {rendered}; derive it from "
                "SeedBank.child_seed",
                mint_line, mint_fn,
            )
    return findings, reported_sites


def check_hardcoded_seed_args(
    ctx: FlowContext, skip_sites: Optional[Set[Tuple[str, int]]] = None
) -> List[Finding]:
    """RP111: integer literals bound to seed-named parameters of project
    callables at library call sites."""
    skip = skip_sites if skip_sites is not None else set()
    findings: List[Finding] = []
    check = ctx.suppression_for("RP111")
    for summary, fn in _iter_functions(ctx):
        for site in fn.calls:
            callees = ctx.index.resolve_call(summary, fn, site)
            if not callees:
                continue
            bad: List[Tuple[str, Dict[str, object]]] = []
            params: List[str] = []
            for callee in callees:
                params.extend(
                    p for p in ctx.index.callee_params(callee)
                    if p not in params
                )
            for name, value in sorted(site.kwargs.items()):
                if name in SEED_PARAM_NAMES and value.get("kind") == "literal":
                    bad.append((name, value))
            for position, value in enumerate(site.args):
                if (
                    position < len(params)
                    and params[position] in SEED_PARAM_NAMES
                    and value.get("kind") == "literal"
                ):
                    bad.append((params[position], value))
            if not bad:
                continue
            if (summary.path, site.line) in skip:
                continue
            callee_name = _short(callees[0])
            for name, value in bad:
                message = (
                    f"hardcoded seed {value.get('value')} passed as {name}= "
                    f"to {callee_name}(); derive it from SeedBank.child_seed "
                    "so every stream traces to the root seed"
                )
                hit = check(fn.qualname, site.line)
                findings.append(ctx.finding(
                    "RP111", fn.qualname, site.line, message,
                    suppressed=hit is not None,
                    reason=hit[1] if hit is not None else None,
                ))
    return findings
