"""Ratcheted baseline: fail only on *new* findings.

Turning on interprocedural analysis over an existing tree can surface
debt that is real but not worth blocking every PR on. The baseline
records the accepted findings as stable fingerprints in
``lint-baseline.json``; under ``--ratchet`` the linter subtracts
baselined findings from the failure set, so CI fails only when a change
*introduces* a violation. The file is committed, which makes the debt
visible, reviewable, and monotonically shrinking: fixing a finding and
re-running ``--write-baseline`` removes its entry, and nothing ever adds
entries silently.

Fingerprints deliberately exclude line numbers — moving code around must
not resurrect a baselined finding — and hash the rule, the file, and the
message (which for flow rules names the call chain).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Set

from ..report import Finding, LintReport

#: Bump when the fingerprint recipe changes; old baselines must be
#: regenerated rather than silently mis-matched.
BASELINE_SCHEMA = "repro.lint/baseline.v1"

#: Default baseline filename, relative to the project root.
BASELINE_FILENAME = "lint-baseline.json"


def fingerprint(finding: Finding) -> str:
    """Stable, line-number-free identity of a finding."""
    digest = hashlib.sha256(
        f"{finding.rule_id}|{finding.path}|{finding.message}".encode("utf-8")
    )
    return digest.hexdigest()[:16]


@dataclass
class Baseline:
    """The committed set of accepted findings."""

    entries: List[Dict[str, object]] = field(default_factory=list)

    @property
    def fingerprints(self) -> Set[str]:
        return {str(e["fingerprint"]) for e in self.entries}

    @classmethod
    def from_report(cls, report: LintReport) -> "Baseline":
        entries = []
        for finding in sorted(report.findings, key=Finding.sort_key):
            entries.append({
                "fingerprint": fingerprint(finding),
                "rule": finding.rule_id,
                "path": finding.path,
                "line": finding.line,
                "message": finding.message,
            })
        return cls(entries=entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load a baseline; a missing file is an empty baseline, while a
        corrupt or wrong-schema file raises so CI cannot silently pass."""
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("schema") != BASELINE_SCHEMA:
            raise ValueError(
                f"{path}: unsupported baseline schema "
                f"{payload.get('schema')!r}; regenerate with --write-baseline"
            )
        entries = payload.get("findings", [])
        if not all(isinstance(e, dict) and "fingerprint" in e for e in entries):
            raise ValueError(f"{path}: malformed baseline entries")
        return cls(entries=list(entries))

    def save(self, path: Path) -> None:
        payload = {
            "schema": BASELINE_SCHEMA,
            "findings": self.entries,
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def apply(self, report: LintReport) -> LintReport:
        """Split ``report`` into new-vs-baselined findings.

        Returns a report whose ``findings`` are only the regressions;
        baselined findings move to ``report.baselined`` so renderers can
        still show them without failing the run.
        """
        accepted = self.fingerprints
        ratcheted = LintReport(files_checked=report.files_checked)
        ratcheted.suppressed = list(report.suppressed)
        ratcheted.baselined = list(report.baselined)
        for finding in report.findings:
            if fingerprint(finding) in accepted:
                ratcheted.baselined.append(finding)
            else:
                ratcheted.findings.append(finding)
        return ratcheted
