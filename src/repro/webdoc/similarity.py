"""Website code similarity (paper Appendix A).

The paper measures how close FWB phishing pages sit to benign pages built on
the same service (Table 1): for every tag element ``T`` of website *A*, find
the tag of website *B* with the smallest Levenshtein distance; take the
median of those best-match distances (converted to a similarity) in each
direction; the pair similarity is the mean of the two directional medians.

High similarity (Weebly: 79.4%) means template reuse makes code-comparison
detectors ineffective against FWB attacks.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

import numpy as np

from .dom import Document, Element
from .parser import parse_html


def levenshtein(a: str, b: str, cutoff: Optional[int] = None) -> int:
    """Classic edit distance with a two-row dynamic program.

    ``cutoff`` enables early abandon: once every cell of a row exceeds the
    cutoff the true distance must too, and ``cutoff + 1`` is returned. The
    best-match search in :func:`website_similarity` uses this to skip
    hopeless candidates cheaply.

    >>> levenshtein("kitten", "sitting")
    3
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if cutoff is not None and abs(len(a) - len(b)) > cutoff:
        return cutoff + 1
    if len(a) < len(b):  # keep the inner loop over the shorter string
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        row_min = i
        for j, ch_b in enumerate(b, start=1):
            insert = current[j - 1] + 1
            delete = previous[j] + 1
            replace = previous[j - 1] + (ch_a != ch_b)
            value = min(insert, delete, replace)
            current.append(value)
            if value < row_min:
                row_min = value
        if cutoff is not None and row_min > cutoff:
            return cutoff + 1
        previous = current
    return previous[-1]


def levenshtein_ratio(a: str, b: str) -> float:
    """Similarity in [0, 1]: ``1 - distance / max_len``."""
    if not a and not b:
        return 1.0
    return 1.0 - levenshtein(a, b) / max(len(a), len(b))


#: Tag shells are truncated to this length before comparison: edit distance
#: over the first ~100 characters of a tag is what discriminates templates,
#: and bounding the string length bounds the DP cost.
MAX_SHELL_LENGTH = 100


def tag_sequence(doc_or_markup: Union[Document, str]) -> List[str]:
    """Serialize each element of a document into a comparable string.

    Each entry is the element's own markup *shell* (tag plus attributes plus
    direct text), which is what "tag element" comparison in the appendix
    operates on.
    """
    document = (
        doc_or_markup
        if isinstance(doc_or_markup, Document)
        else parse_html(doc_or_markup)
    )
    sequence: List[str] = []
    for element in document.root.iter():
        attrs = "".join(
            f' {name}="{value}"' for name, value in sorted(element.attrs.items())
        )
        direct_text = "".join(
            child.text for child in element.children
            if not isinstance(child, Element)
        ).strip()
        sequence.append(f"<{element.tag}{attrs}>{direct_text}"[:MAX_SHELL_LENGTH])
    return sequence


def _best_match_ratio(tag: str, candidates: List[str],
                      candidate_lengths: np.ndarray) -> float:
    """Best similarity of ``tag`` against candidates, with pruning.

    Candidates are scanned in order of increasing length difference; the
    length-based upper bound ``1 - |la-lb| / max(la, lb)`` lets the scan stop
    as soon as no remaining candidate can beat the current best, and the
    per-comparison cutoff abandons DPs that cannot win.
    """
    n = len(tag)
    order = np.argsort(np.abs(candidate_lengths - n), kind="stable")
    best = 0.0
    for index in order:
        candidate = candidates[index]
        longest = max(n, len(candidate), 1)
        upper_bound = 1.0 - abs(n - len(candidate)) / longest
        if upper_bound <= best:
            break  # sorted by length diff: nothing later can do better
        cutoff = int((1.0 - best) * longest)
        distance = levenshtein(tag, candidate, cutoff=cutoff)
        ratio = 1.0 - distance / longest
        if ratio > best:
            best = ratio
            if best >= 1.0:
                break
    return best


def _directional_similarity(source: Sequence[str], target: Sequence[str]) -> float:
    """Median over source tags of the best-match similarity into target."""
    if not source or not target:
        return 0.0
    target_list = list(target)
    target_set = set(target_list)
    target_lengths = np.asarray([len(t) for t in target_list])
    memo = {}
    best: List[float] = []
    for tag in source:
        if tag in target_set:  # exact matches short-circuit the O(n*m) scan
            best.append(1.0)
            continue
        if tag not in memo:
            memo[tag] = _best_match_ratio(tag, target_list, target_lengths)
        best.append(memo[tag])
    return float(np.median(best))


def website_similarity(
    a: Union[Document, str], b: Union[Document, str]
) -> float:
    """Appendix-A similarity between two websites, in [0, 1].

    ``sim(A,B) = mean(median_T max-match(T→B), median_T max-match(T→A))``.
    """
    seq_a = tag_sequence(a)
    seq_b = tag_sequence(b)
    forward = _directional_similarity(seq_a, seq_b)
    backward = _directional_similarity(seq_b, seq_a)
    return (forward + backward) / 2.0


def median_pairwise_similarity(
    group_a: Iterable[Union[Document, str]],
    group_b: Iterable[Union[Document, str]],
    rng: np.random.Generator,
    max_pairs: int = 200,
) -> float:
    """Median similarity across sampled cross-group pairs (Table 1 cells).

    Comparing every phishing page against every benign page is quadratic;
    the paper's numbers are medians, which sampled pairs estimate well.
    """
    list_a = list(group_a)
    list_b = list(group_b)
    if not list_a or not list_b:
        return 0.0
    pairs = min(max_pairs, len(list_a) * len(list_b))
    sims = []
    for _ in range(pairs):
        a = list_a[int(rng.integers(len(list_a)))]
        b = list_b[int(rng.integers(len(list_b)))]
        sims.append(website_similarity(a, b))
    return float(np.median(sims))
