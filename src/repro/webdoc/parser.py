"""Tolerant HTML → DOM parser.

Built on the standard library's :class:`html.parser.HTMLParser`; handles the
slightly irregular markup real (and simulated) phishing pages contain:
unclosed tags, stray end tags, void elements, and non-standard elements such
as ``<noindex>``. The output is always a single :class:`Document` whose root
is an ``html`` element containing ``head`` and ``body``.
"""

from __future__ import annotations

from html.parser import HTMLParser
from typing import List, Optional, Tuple

from ..errors import ParseError
from .dom import Document, Element, TextNode, VOID_TAGS

# Elements whose end tag is commonly omitted; closing them implicitly when a
# sibling opens keeps the tree sane.
_IMPLICIT_CLOSE = {
    "li": {"li"},
    "p": {"p", "div", "ul", "ol", "table", "form", "h1", "h2", "h3"},
    "option": {"option"},
    "tr": {"tr"},
    "td": {"td", "tr"},
    "th": {"th", "tr"},
}


class _DomBuilder(HTMLParser):
    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.root = Element("html")
        self._stack: List[Element] = [self.root]

    # -- helpers --------------------------------------------------------------

    @property
    def _top(self) -> Element:
        return self._stack[-1]

    def _open(self, element: Element) -> None:
        self._top.append(element)
        self._stack.append(element)

    # -- HTMLParser callbacks ---------------------------------------------------

    def handle_starttag(self, tag: str, attrs: List[Tuple[str, Optional[str]]]) -> None:
        tag = tag.lower()
        attr_map = {name.lower(): (value if value is not None else "") for name, value in attrs}
        closers = _IMPLICIT_CLOSE.get(self._top.tag)
        if closers and tag in closers:
            self._stack.pop()
        element = Element(tag, attr_map)
        if tag in VOID_TAGS:
            self._top.append(element)
        else:
            self._open(element)

    def handle_startendtag(self, tag: str, attrs) -> None:
        tag = tag.lower()
        attr_map = {name.lower(): (value if value is not None else "") for name, value in attrs}
        self._top.append(Element(tag, attr_map))

    def handle_endtag(self, tag: str) -> None:
        tag = tag.lower()
        if tag in VOID_TAGS:
            return
        # Close up to the matching open tag; ignore strays.
        for i in range(len(self._stack) - 1, 0, -1):
            if self._stack[i].tag == tag:
                del self._stack[i:]
                return

    def handle_data(self, data: str) -> None:
        if data.strip():
            self._top.append_text(data)


def _ensure_head_body(root: Element) -> Element:
    """Normalize the tree to <html><head>...</head><body>...</body></html>."""
    if root.tag != "html":
        html = Element("html")
        html.append(root)
        root = html
    head = next((c for c in root.children if isinstance(c, Element) and c.tag == "head"), None)
    body = next((c for c in root.children if isinstance(c, Element) and c.tag == "body"), None)
    if head is not None and body is not None:
        return root

    head_tags = {"title", "meta", "link", "style", "base", "noindex"}
    new_head = head if head is not None else Element("head")
    new_body = body if body is not None else Element("body")
    for child in root.children:
        if child is head or child is body:
            continue
        if isinstance(child, Element) and child.tag in head_tags and body is None:
            new_head.append(child)
        else:
            new_body.append(child)
    root.children = [new_head, new_body]
    return root


def parse_html(markup: str) -> Document:
    """Parse HTML markup into a :class:`Document`.

    Never raises on messy-but-textual input; raises
    :class:`~repro.errors.ParseError` only for non-string input.
    """
    if not isinstance(markup, str):
        raise ParseError(f"expected str markup, got {type(markup).__name__}")
    builder = _DomBuilder()
    builder.feed(markup)
    builder.close()

    root = builder.root
    # If the document supplied its own <html>, unwrap our synthetic root.
    real_html = [
        child for child in root.children
        if isinstance(child, Element) and child.tag == "html"
    ]
    if len(real_html) == 1 and all(
        (isinstance(c, TextNode) and not c.text.strip()) or c in real_html
        for c in root.children
    ):
        root = real_html[0]
    return Document(root=_ensure_head_body(root))
