"""DOM node model.

Feature extraction (paper §4.2) needs structural queries over pages: count
links and classify them internal/external/empty, find login forms and
password inputs, detect ``<noindex>`` meta tags, and spot FWB banners hidden
with ``visibility:hidden``. The classes here provide exactly those traversal
and inspection primitives over a parsed document tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Union

VOID_TAGS = frozenset(
    {"area", "base", "br", "col", "embed", "hr", "img", "input",
     "link", "meta", "param", "source", "track", "wbr"}
)


@dataclass
class TextNode:
    """A run of character data."""

    text: str

    def to_html(self) -> str:
        return self.text

    def text_content(self) -> str:
        return self.text


@dataclass
class Element:
    """An HTML element with attributes and ordered children."""

    tag: str
    attrs: Dict[str, str] = field(default_factory=dict)
    children: List[Union["Element", TextNode]] = field(default_factory=list)

    # -- construction ---------------------------------------------------------

    def append(self, node: Union["Element", TextNode]) -> "Element":
        self.children.append(node)
        return self

    def append_text(self, text: str) -> "Element":
        self.children.append(TextNode(text))
        return self

    # -- attribute helpers ----------------------------------------------------

    def get(self, name: str, default: str = "") -> str:
        return self.attrs.get(name.lower(), default)

    def has_attr(self, name: str) -> bool:
        return name.lower() in self.attrs

    @property
    def id(self) -> str:
        return self.get("id")

    @property
    def classes(self) -> List[str]:
        return self.get("class").split()

    def style_declarations(self) -> Dict[str, str]:
        """Parse the inline ``style`` attribute into property → value."""
        result: Dict[str, str] = {}
        for chunk in self.get("style").split(";"):
            if ":" in chunk:
                prop, _, value = chunk.partition(":")
                result[prop.strip().lower()] = value.strip().lower()
        return result

    def is_hidden(self) -> bool:
        """Inline-style hidden: ``visibility:hidden`` or ``display:none``.

        The paper highlights phishers hiding FWB banners by injecting a
        ``visibility:hidden`` declaration into the banner's ``<div>``.
        """
        style = self.style_declarations()
        if style.get("visibility") == "hidden" or style.get("display") == "none":
            return True
        return self.get("hidden") != "" and self.has_attr("hidden")

    # -- traversal ------------------------------------------------------------

    def iter(self) -> Iterator["Element"]:
        """Depth-first iteration over this element and all descendants."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter()

    def find_all(
        self,
        tag: Optional[str] = None,
        predicate: Optional[Callable[["Element"], bool]] = None,
    ) -> List["Element"]:
        out = []
        for element in self.iter():
            if tag is not None and element.tag != tag:
                continue
            if predicate is not None and not predicate(element):
                continue
            out.append(element)
        return out

    def find(
        self,
        tag: Optional[str] = None,
        predicate: Optional[Callable[["Element"], bool]] = None,
    ) -> Optional["Element"]:
        for element in self.iter():
            if tag is not None and element.tag != tag:
                continue
            if predicate is not None and not predicate(element):
                continue
            return element
        return None

    def text_content(self) -> str:
        parts = []
        for child in self.children:
            parts.append(child.text_content())
        return "".join(parts)

    # -- serialization ----------------------------------------------------------

    def to_html(self) -> str:
        attrs = "".join(
            f' {name}="{value}"' if value != "" else f" {name}"
            for name, value in self.attrs.items()
        )
        if self.tag in VOID_TAGS:
            return f"<{self.tag}{attrs}>"
        inner = "".join(child.to_html() for child in self.children)
        return f"<{self.tag}{attrs}>{inner}</{self.tag}>"


@dataclass
class Document:
    """A parsed HTML document."""

    root: Element

    @property
    def title(self) -> str:
        node = self.root.find("title")
        return node.text_content().strip() if node is not None else ""

    def find_all(self, tag: Optional[str] = None, predicate=None) -> List[Element]:
        return self.root.find_all(tag, predicate)

    def find(self, tag: Optional[str] = None, predicate=None) -> Optional[Element]:
        return self.root.find(tag, predicate)

    def text_content(self) -> str:
        return self.root.text_content()

    def to_html(self) -> str:
        return "<!DOCTYPE html>" + self.root.to_html()

    # -- page-level queries used across the library ----------------------------

    def links(self) -> List[Element]:
        return self.root.find_all("a")

    def forms(self) -> List[Element]:
        return self.root.find_all("form")

    def inputs(self) -> List[Element]:
        return self.root.find_all("input")

    def iframes(self) -> List[Element]:
        return self.root.find_all("iframe")

    def meta_tags(self) -> List[Element]:
        return self.root.find_all("meta")

    def stylesheet_hidden_selectors(self) -> List[str]:
        """Class/id selectors hidden by embedded ``<style>`` rules.

        Phishers hide FWB banners not only with inline styles but also by
        injecting stylesheet rules (``.fwb-banner{display:none}``); this
        scans every ``<style>`` block for display/visibility suppression
        and returns the affected simple selectors (without ``.``/``#``).
        """
        import re

        hidden: List[str] = []
        rule_pattern = re.compile(
            r"([.#][\w-]+)\s*\{[^}]*(?:display\s*:\s*none|"
            r"visibility\s*:\s*hidden)[^}]*\}",
            re.IGNORECASE,
        )
        for style in self.root.find_all("style"):
            css = style.text_content()
            for match in rule_pattern.finditer(css):
                hidden.append(match.group(1)[1:])
        return hidden

    def is_element_hidden(self, element: Element) -> bool:
        """Hidden by inline style *or* by an embedded stylesheet rule."""
        if element.is_hidden():
            return True
        hidden_selectors = self.stylesheet_hidden_selectors()
        if not hidden_selectors:
            return False
        return bool(
            set(element.classes) & set(hidden_selectors)
            or (element.id and element.id in hidden_selectors)
        )

    def has_hidden_elements(self) -> bool:
        """Does any element get suppressed, by either hiding mechanism?"""
        hidden_selectors = set(self.stylesheet_hidden_selectors())
        for element in self.root.iter():
            if element.is_hidden():
                return True
            if hidden_selectors and (
                set(element.classes) & hidden_selectors
                or (element.id and element.id in hidden_selectors)
            ):
                return True
        return False

    def has_noindex(self) -> bool:
        """Is search-engine indexing blocked via a robots noindex meta tag?"""
        for meta in self.meta_tags():
            name = meta.get("name").lower()
            content = meta.get("content").lower()
            if name in ("robots", "googlebot") and "noindex" in content:
                return True
        # Some generators emit a literal (non-standard) <noindex> element.
        return self.root.find("noindex") is not None

    def password_inputs(self) -> List[Element]:
        return self.root.find_all(
            "input", predicate=lambda e: e.get("type").lower() == "password"
        )

    def credential_inputs(self) -> List[Element]:
        """Inputs asking for sensitive data (§3: email, password, SSN...)."""
        sensitive_types = {"password", "email", "tel"}
        sensitive_names = (
            "pass", "email", "user", "login", "ssn", "card", "cvv",
            "account", "pin", "phone", "address", "social",
        )

        def matches(element: Element) -> bool:
            if element.get("type").lower() in sensitive_types:
                return True
            name = (element.get("name") + " " + element.get("placeholder")).lower()
            return any(token in name for token in sensitive_names)

        return self.root.find_all("input", predicate=matches)

    def download_links(self) -> List[Element]:
        """Anchors that trigger file downloads (the §5.5 drive-by vector)."""
        extensions = (".exe", ".zip", ".apk", ".scr", ".iso", ".docm", ".xlsm", ".msi")

        def matches(element: Element) -> bool:
            if element.has_attr("download"):
                return True
            return element.get("href").lower().endswith(extensions)

        return self.root.find_all("a", predicate=matches)
