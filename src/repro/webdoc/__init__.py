"""HTML document substrate.

A small DOM model, a tolerant HTML parser built on :mod:`html.parser`, a
renderer that turns documents into visual signatures (stand-ins for the
screenshots the paper's visual baselines consume), and the Appendix-A
Levenshtein-based code-similarity metric.
"""

from .dom import Element, TextNode, Document
from .parser import parse_html
from .render import VisualSignature, render_signature
from .similarity import (
    levenshtein,
    levenshtein_ratio,
    tag_sequence,
    website_similarity,
)

__all__ = [
    "Element",
    "TextNode",
    "Document",
    "parse_html",
    "VisualSignature",
    "render_signature",
    "levenshtein",
    "levenshtein_ratio",
    "tag_sequence",
    "website_similarity",
]
