"""Document rendering into visual signatures.

The paper's visual baselines (VisualPhishNet, PhishIntention) consume page
*screenshots*. Our substrate has no pixels, so rendering produces a compact
**visual signature**: a fixed-length numeric vector summarizing what the page
would look like — layout density, colour palette hash, logo/brand block,
form geometry. Two pages built from the same template (or spoofing the same
brand) land close in signature space, which is the property the visual
models exploit; pages with different layouts land far apart.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Union

import numpy as np

from .dom import Document, Element
from .parser import parse_html

#: Dimensionality of the signature vector.
SIGNATURE_DIM = 32

_LAYOUT_TAGS = ("div", "section", "header", "footer", "nav", "table", "form")
_CONTENT_TAGS = ("p", "span", "h1", "h2", "h3", "li", "a", "label")
_MEDIA_TAGS = ("img", "video", "svg", "iframe")


def _bucket_hash(token: str, buckets: int) -> int:
    digest = hashlib.md5(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % buckets


@dataclass(frozen=True)
class VisualSignature:
    """Fixed-length visual summary of a rendered page."""

    vector: np.ndarray

    def distance(self, other: "VisualSignature") -> float:
        """Euclidean distance in signature space."""
        return float(np.linalg.norm(self.vector - other.vector))

    def similarity(self, other: "VisualSignature") -> float:
        """Similarity in (0, 1]: ``1 / (1 + distance)``."""
        return 1.0 / (1.0 + self.distance(other))


def region_signatures(
    doc_or_markup: Union[Document, str],
    max_regions: int = 24,
    min_subtree_size: int = 2,
) -> "list[VisualSignature]":
    """Signatures of the page's visual regions (DOM subtrees).

    The analogue of the region proposals a vision model extracts from a
    screenshot: every sufficiently large container subtree is rendered into
    its own signature, so a matcher can find a brand logo/panel inside an
    otherwise dissimilar page. Costs one signature computation per region —
    the dominant runtime of the visual baselines, as in their originals.
    """
    document = (
        doc_or_markup
        if isinstance(doc_or_markup, Document)
        else parse_html(doc_or_markup)
    )
    regions = []
    for element in document.root.iter():
        if len(element.children) >= min_subtree_size:
            regions.append(Document(root=element))
        if len(regions) >= max_regions:
            break
    return [render_signature(region) for region in regions]


def render_signature(doc_or_markup: Union[Document, str]) -> VisualSignature:
    """Render a document into its :class:`VisualSignature`.

    The vector layout (all values roughly unit-scaled):

    * ``[0:7]``   — counts of layout tags (log-scaled)
    * ``[7:15]``  — counts of content tags (log-scaled)
    * ``[15:19]`` — media / iframe structure
    * ``[19:23]`` — form geometry: forms, inputs, password inputs, buttons
    * ``[23:27]`` — brand block: hash buckets of title tokens
    * ``[27:31]`` — palette: hash buckets of style colour tokens
    * ``[31]``    — overall page size (log of markup length)
    """
    document = (
        doc_or_markup
        if isinstance(doc_or_markup, Document)
        else parse_html(doc_or_markup)
    )
    vector = np.zeros(SIGNATURE_DIM, dtype=np.float64)

    for i, tag in enumerate(_LAYOUT_TAGS):
        vector[i] = np.log1p(len(document.find_all(tag)))
    for i, tag in enumerate(_CONTENT_TAGS):
        vector[7 + i] = np.log1p(len(document.find_all(tag)))
    for i, tag in enumerate(_MEDIA_TAGS):
        vector[15 + i] = np.log1p(len(document.find_all(tag)))

    vector[19] = np.log1p(len(document.forms()))
    vector[20] = np.log1p(len(document.inputs()))
    vector[21] = np.log1p(len(document.password_inputs()))
    vector[22] = np.log1p(len(document.find_all("button")))

    for token in document.title.lower().split():
        vector[23 + _bucket_hash(token, 4)] += 0.5

    for element in document.root.iter():
        style = element.style_declarations()
        for prop in ("background", "background-color", "color"):
            value = style.get(prop)
            if value:
                vector[27 + _bucket_hash(value, 4)] += 0.25

    vector[31] = np.log1p(len(document.to_html())) / 4.0
    return VisualSignature(vector=vector)
