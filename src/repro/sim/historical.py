"""The §2 historical study: building dataset D1 from raw social streams.

The paper's two-year retrospective works bottom-up:

1. collect URLs from Twitter/Facebook that contain a **distinct
   second-level domain** (``mywebsite.000webhost.com`` → ``000webhost``) —
   the filter that targets sites *created under another domain*;
2. scan each URL with VirusTotal and label it phishing at **≥ 2 engine
   detections** (the literature's threshold);
3. keep the URLs on the 17 FWB services (25.2K = 16.3K Twitter + 8.9K
   Facebook); set aside dynamic-DNS/CDN subdomain hosts (DuckDNS, Netlify,
   ...) as out of scope.

:class:`HistoricalPipeline` reproduces that pipeline over a generated
two-year URL stream that mixes FWB phishing, FWB benign sites, dynamic-DNS
phishing (the out-of-scope population), and apex-domain links the SLD
filter must drop. The output :class:`D1Dataset` feeds Figure 1.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..ecosystem.intel import IntelService
from ..ecosystem.virustotal import VirusTotal
from ..simnet.browser import Browser
from ..simnet.url import URL, parse_url
from ..simnet.web import Web
from ..sitegen.brands import default_brand_catalog
from ..sitegen.legitimate import LegitimateSiteGenerator
from ..sitegen.phishing import PhishingSiteGenerator
from .scenario import HistoricalScenario, QuarterSeries

#: Detection threshold for labelling a URL phishing (§2, citing [71,74,87]).
VT_PHISHING_THRESHOLD = 2

#: Subdomain providers that are *not* FWBs (§2 sets these aside; Interisle
#: tracks them as Dynamic DNS / deployment platforms).
DYNDNS_PROVIDERS: Tuple[Tuple[str, str], ...] = (
    ("duckdns", "duckdns.org"),
    ("netlify", "netlify.app"),
    ("noip", "ddns.net"),
    ("herokuapp", "herokuapp.com"),
)


@dataclass
class StreamUrl:
    """One URL observed in the historical social stream."""

    url: URL
    platform: str
    month: int  # 0-based month since Jan 2020


@dataclass
class D1Dataset:
    """The paper's initial dataset D1 plus pipeline book-keeping."""

    fwb_phishing: List[StreamUrl] = field(default_factory=list)
    dyndns_phishing: List[StreamUrl] = field(default_factory=list)
    benign_or_undetected: int = 0
    dropped_no_sld: int = 0

    @property
    def n_twitter(self) -> int:
        return sum(1 for s in self.fwb_phishing if s.platform == "twitter")

    @property
    def n_facebook(self) -> int:
        return sum(1 for s in self.fwb_phishing if s.platform == "facebook")

    def quarterly_counts(self) -> Dict[Tuple[int, str], int]:
        """(quarter, platform) -> count, the Figure 1 series."""
        counts: Counter = Counter()
        for sample in self.fwb_phishing:
            counts[(sample.month // 3, sample.platform)] += 1
        return dict(counts)

    def fwb_mix_by_quarter(self) -> Dict[int, Counter]:
        mix: Dict[int, Counter] = {}
        for sample in self.fwb_phishing:
            mix.setdefault(sample.month // 3, Counter())[
                sample.url.second_level_domain
            ] += 1
        return mix


class HistoricalPipeline:
    """Generates the two-year stream and runs the §2 labelling pipeline."""

    def __init__(
        self,
        web: Optional[Web] = None,
        scenario: Optional[HistoricalScenario] = None,
        seed: int = 23,
        #: Benign FWB URLs per phishing URL in the raw stream.
        benign_noise_ratio: float = 0.6,
        #: Dynamic-DNS phishing per FWB phishing (the out-of-scope mass).
        dyndns_ratio: float = 0.35,
        #: Apex-domain URLs (no subdomain) that the SLD filter drops.
        apex_ratio: float = 0.4,
    ) -> None:
        self.web = web if web is not None else Web()
        self.scenario = scenario if scenario is not None else HistoricalScenario(seed=seed)
        self.seed = seed
        self.benign_noise_ratio = benign_noise_ratio
        self.dyndns_ratio = dyndns_ratio
        self.apex_ratio = apex_ratio
        self._register_dyndns_providers()

    def _register_dyndns_providers(self) -> None:
        for name, domain in DYNDNS_PROVIDERS:
            if domain not in self.web.registry:
                self.web.registry.register(
                    domain, registered_at=-9 * 365 * 24 * 60, registrant=name
                )

    # -- stream generation ------------------------------------------------------

    def _make_dyndns_phishing(self, rng: np.random.Generator, now: int) -> URL:
        """A phishing page on a dynamic-DNS subdomain (out of scope)."""
        name, domain = DYNDNS_PROVIDERS[int(rng.integers(len(DYNDNS_PROVIDERS)))]
        catalog = default_brand_catalog()
        brand = catalog.sample(rng)
        host = f"{brand.slug}-{int(rng.integers(1, 10 ** 6))}.{domain}"
        try:
            self.web.registry.add_subdomain(domain, host)
        except Exception:
            host = f"x{int(rng.integers(10 ** 9))}.{domain}"
            self.web.registry.add_subdomain(domain, host)
        # Host a minimal credential page so VT can score it.
        from ..simnet.hosting import HostedSite

        site = HostedSite(root_url=parse_url(f"https://{host}/"), created_at=now,
                          owner="attacker")
        site.add_page(
            "/",
            f"<html><head><title>{brand.name} - Sign In</title></head>"
            f"<body><h1>{brand.name}</h1><form action='/gate.php'>"
            f"<input type='email' name='email'>"
            f"<input type='password' name='password'></form></body></html>",
        )
        site.metadata.update({"is_phishing": True, "brand": brand.slug})
        provider = self.web.self_hosting
        provider._sites[host] = site  # hosted off-registry, like real DDNS
        return site.root_url

    def generate_stream(
        self, scale: float = 0.02
    ) -> Tuple[List[StreamUrl], QuarterSeries]:
        """Generate the raw two-year URL stream at ``scale`` of D1's size."""
        rng = np.random.default_rng(self.seed)
        quarters = self.scenario.generate()
        phishing_generator = PhishingSiteGenerator()
        benign_generator = LegitimateSiteGenerator()
        stream: List[StreamUrl] = []
        minute = 0
        for quarter_index, per_fwb in enumerate(quarters.by_fwb):
            twitter_total = quarters.twitter[quarter_index]
            quarter_total = twitter_total + quarters.facebook[quarter_index]
            twitter_share = twitter_total / max(quarter_total, 1)
            for fwb_name, count in per_fwb.items():
                provider = self.web.fwb_providers[fwb_name]
                for _ in range(int(round(count * scale))):
                    minute += 10
                    month = min(quarter_index * 3 + int(rng.integers(3)), 31)
                    platform = "twitter" if rng.random() < twitter_share else "facebook"
                    site = phishing_generator.create_site(provider, minute, rng)
                    stream.append(StreamUrl(site.root_url, platform, month))
                    if rng.random() < self.benign_noise_ratio:
                        benign = benign_generator.create_fwb_site(
                            provider, minute, rng
                        )
                        stream.append(StreamUrl(benign.root_url, platform, month))
                    if rng.random() < self.dyndns_ratio:
                        stream.append(
                            StreamUrl(
                                self._make_dyndns_phishing(rng, minute),
                                platform, month,
                            )
                        )
                    if rng.random() < self.apex_ratio:
                        # A link to some apex domain: no SLD, filtered out.
                        stream.append(
                            StreamUrl(
                                parse_url(
                                    f"https://news{int(rng.integers(10 ** 6))}.com/a"
                                ),
                                platform, month,
                            )
                        )
        rng.shuffle(stream)  # type: ignore[arg-type]
        return stream, quarters

    # -- the labelling pipeline ---------------------------------------------------

    def run(self, scale: float = 0.02) -> D1Dataset:
        """Run SLD filtering + VT labelling over the generated stream."""
        stream, _quarters = self.generate_stream(scale)
        browser = Browser(self.web)
        intel = IntelService(self.web, browser)
        from ..ecosystem.engines import default_engine_fleet
        from ..config import SeedBank

        virustotal = VirusTotal(default_engine_fleet(SeedBank(self.seed)), intel)
        dataset = D1Dataset()
        dyndns_domains = {domain for _n, domain in DYNDNS_PROVIDERS}
        week = 7 * 24 * 60

        for sample in stream:
            if not sample.url.has_subdomain:
                dataset.dropped_no_sld += 1
                continue
            virustotal.scan(sample.url, now=0)
            detections = virustotal.scan(sample.url, now=week).positives
            if detections < VT_PHISHING_THRESHOLD:
                dataset.benign_or_undetected += 1
                continue
            if sample.url.registered_domain in dyndns_domains:
                dataset.dyndns_phishing.append(sample)
            elif self.web.fwb_for(sample.url) is not None:
                dataset.fwb_phishing.append(sample)
            else:
                dataset.benign_or_undetected += 1
        return dataset
