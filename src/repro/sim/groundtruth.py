"""Ground-truth dataset construction (paper §4.2).

The paper's training corpus pairs 4,656 manually verified FWB phishing URLs
from dataset D1 with 4,656 manually verified benign FWB URLs (3,299 from
Twitter, 1,357 from Facebook). ``build_ground_truth`` reproduces that
construction at any scale: equal phishing/benign classes, phishing spread
over the services by the measured abuse distribution, every sample
snapshotted and featurized through the real pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..core.preprocess import Preprocessor, ProcessedPage
from ..simnet.browser import Browser
from ..simnet.web import Web
from ..sitegen.brands import BrandCatalog, default_brand_catalog
from ..sitegen.kits import PhishingKitGenerator
from ..sitegen.legitimate import LegitimateSiteGenerator
from ..sitegen.phishing import PhishingSiteGenerator, PhishingVariant


@dataclass
class GroundTruthDataset:
    """Featurized, labelled pages plus the world they live in."""

    web: Web
    pages: List[ProcessedPage]
    labels: np.ndarray
    #: Parallel metadata: (is_fwb, fwb_name, variant) per sample.
    variants: List[Optional[str]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pages)

    @property
    def n_phishing(self) -> int:
        return int(self.labels.sum())

    def split_arrays(self, names) -> Tuple[np.ndarray, np.ndarray]:
        X = np.vstack([p.features.vector(names) for p in self.pages])
        return X, self.labels


def build_ground_truth(
    n_per_class: int = 400,
    seed: int = 7,
    web: Optional[Web] = None,
    catalog: Optional[BrandCatalog] = None,
) -> GroundTruthDataset:
    """Build a balanced FWB phishing/benign ground-truth corpus.

    Phishing sites are distributed over the 17 services by attacker weight;
    benign sites uniformly (benign customers do not follow the abuse
    distribution). Pages that need an external target (two-step, iframe)
    point at synthetic self-hosted kit pages, as in the live pipeline.
    """
    rng = np.random.default_rng(seed)
    web = web if web is not None else Web()
    catalog = catalog if catalog is not None else default_brand_catalog()
    browser = Browser(web)
    preprocessor = Preprocessor(web, browser)
    phish_gen = PhishingSiteGenerator(catalog=catalog)
    benign_gen = LegitimateSiteGenerator()
    kit_gen = PhishingKitGenerator(catalog=catalog)

    providers = list(web.fwb_providers.values())
    weights = np.asarray([p.service.attacker_weight for p in providers], dtype=float)
    probabilities = weights / weights.sum()

    pages: List[ProcessedPage] = []
    labels: List[int] = []
    variants: List[Optional[str]] = []

    for index in range(n_per_class):
        provider = providers[int(rng.choice(len(providers), p=probabilities))]
        spec = phish_gen.sample_spec(provider.service, rng)
        if spec.variant in (PhishingVariant.TWO_STEP, PhishingVariant.IFRAME):
            # Two-step/iframe pages point at a real external landing page,
            # as in the live pipeline (the attacker deploys both halves).
            target = kit_gen.create_site(
                web.self_hosting, now=0, rng=rng, brand=spec.brand
            )
            target.metadata["linked_only"] = True
            spec.target_url = str(target.root_url)
        site = phish_gen.create_site(provider, now=0, rng=rng, spec=spec)
        page = preprocessor.process(site.root_url, now=10, keep=False)
        if page is None:  # pragma: no cover - generated sites are fetchable
            continue
        pages.append(page)
        labels.append(1)
        variants.append(spec.variant.value)

    for _ in range(n_per_class):
        provider = providers[int(rng.integers(len(providers)))]
        site = benign_gen.create_fwb_site(provider, now=0, rng=rng)
        page = preprocessor.process(site.root_url, now=10, keep=False)
        if page is None:  # pragma: no cover
            continue
        pages.append(page)
        labels.append(0)
        variants.append(None)

    return GroundTruthDataset(
        web=web,
        pages=pages,
        labels=np.asarray(labels, dtype=np.int64),
        variants=variants,
    )
