"""Attacker and benign-user behaviour models.

The attacker model reproduces the campaign mechanics the paper observed:

* FWB choice follows the measured per-service abuse distribution (the
  Table-4 URL counts baked into each service's ``attacker_weight``);
* each new FWB phishing site is announced on Twitter or Facebook with the
  measured 19,724 : 11,681 platform split;
* evasive variants that need an external landing page (two-step links,
  iframes) get one: usually a self-hosted kit page, sometimes another FWB
  site (the paper saw 174 of 539 Google Sites two-step pages link to other
  FWBs);
* a parallel stream of self-hosted kit attacks provides the comparison
  population.

The benign-user model posts ordinary FWB customer sites at a configurable
ratio, supplying the stream's negative class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..simnet.hosting import HostedSite
from ..simnet.web import Web
from ..sitegen.brands import BrandCatalog, default_brand_catalog
from ..sitegen.kits import PhishingKitGenerator
from ..sitegen.legitimate import LegitimateSiteGenerator
from ..sitegen.phishing import (
    PhishingSiteGenerator,
    PhishingSiteSpec,
    PhishingVariant,
)
from ..social.platform import SocialPlatform


@dataclass
class LaunchedAttack:
    """One attack instance: the site plus where it was announced."""

    site: HostedSite
    platform_name: str
    post_id: str
    launched_at: int
    is_fwb: bool


class AttackerModel:
    """Drives phishing-site creation and social announcement."""

    def __init__(
        self,
        web: Web,
        platforms: Dict[str, SocialPlatform],
        rng: np.random.Generator,
        catalog: Optional[BrandCatalog] = None,
        twitter_share: float = 19724 / 31405,
        #: Among two-step/iframe targets, the share hosted on another FWB
        #: rather than a self-hosted domain (§5.5: 174 of 539 on GSites).
        fwb_target_share: float = 0.32,
        #: Among FWB-hosted targets, the share that are *themselves*
        #: two-step pages — producing three-hop chains (landing -> relay ->
        #: credential page), the §5.5 "multi-step phishing" escalation.
        deep_chain_rate: float = 0.25,
    ) -> None:
        self.web = web
        self.platforms = platforms
        self.rng = rng
        self.catalog = catalog if catalog is not None else default_brand_catalog()
        self.twitter_share = twitter_share
        self.fwb_target_share = fwb_target_share
        self.deep_chain_rate = deep_chain_rate
        self.phishing_generator = PhishingSiteGenerator(catalog=self.catalog)
        self.kit_generator = PhishingKitGenerator(catalog=self.catalog)
        services = list(web.fwb_providers.values())
        weights = np.asarray(
            [p.service.attacker_weight for p in services], dtype=np.float64
        )
        self._providers = services
        self._provider_probabilities = weights / weights.sum()
        self.launched: List[LaunchedAttack] = []

    # -- helpers -----------------------------------------------------------------

    def _pick_platform(self) -> SocialPlatform:
        name = "twitter" if self.rng.random() < self.twitter_share else "facebook"
        return self.platforms[name]

    def _external_target(self, brand, now: int, depth: int = 0) -> str:
        """Create the landing page a two-step/iframe attack points at.

        With probability ``deep_chain_rate`` an FWB-hosted target is itself
        a relay two-step page, yielding a multi-hop chain (bounded at three
        hops total).
        """
        if self.rng.random() < self.fwb_target_share:
            provider = self._providers[
                int(self.rng.choice(len(self._providers), p=self._provider_probabilities))
            ]
            if provider.service.allows_credential_forms:
                variant = PhishingVariant.CREDENTIAL
                target_url = None
                if depth == 0 and self.rng.random() < self.deep_chain_rate:
                    variant = PhishingVariant.TWO_STEP
                    target_url = self._external_target(brand, now, depth=1)
                spec = self.phishing_generator.sample_spec(
                    provider.service, self.rng, brand=brand,
                    variant=variant, target_url=target_url,
                )
                site = self.phishing_generator.create_site(
                    provider, now, self.rng, spec=spec
                )
                site.metadata["linked_only"] = True
                site.metadata["chain_depth"] = depth + 1
                return str(site.root_url)
        site = self.kit_generator.create_site(
            self.web.self_hosting, now, self.rng, brand=brand
        )
        site.metadata["linked_only"] = True
        site.metadata["chain_depth"] = depth + 1
        return str(site.root_url)

    # -- attack launching -------------------------------------------------------------

    def launch_fwb_attack(self, now: int) -> LaunchedAttack:
        """Create one FWB phishing site and announce it on social media."""
        provider = self._providers[
            int(self.rng.choice(len(self._providers), p=self._provider_probabilities))
        ]
        spec = self.phishing_generator.sample_spec(provider.service, self.rng)
        if spec.variant in (PhishingVariant.TWO_STEP, PhishingVariant.IFRAME):
            spec.target_url = self._external_target(spec.brand, now)
        site = self.phishing_generator.create_site(provider, now, self.rng, spec=spec)
        return self._announce(site, now, is_fwb=True)

    def launch_self_hosted_attack(self, now: int) -> LaunchedAttack:
        """Create one self-hosted kit attack and announce it."""
        site = self.kit_generator.create_site(self.web.self_hosting, now, self.rng)
        return self._announce(site, now, is_fwb=False)

    def _announce(self, site: HostedSite, now: int, is_fwb: bool) -> LaunchedAttack:
        platform = self._pick_platform()
        post = platform.publish_url(
            site.root_url, author=f"attacker-{int(self.rng.integers(1e6))}",
            now=now, phishing=True,
        )
        attack = LaunchedAttack(
            site=site,
            platform_name=platform.name,
            post_id=post.post_id,
            launched_at=now,
            is_fwb=is_fwb,
        )
        self.launched.append(attack)
        return attack


class BenignUserModel:
    """Posts ordinary FWB customer sites into the same streams."""

    def __init__(
        self,
        web: Web,
        platforms: Dict[str, SocialPlatform],
        rng: np.random.Generator,
        twitter_share: float = 0.6,
    ) -> None:
        self.web = web
        self.platforms = platforms
        self.rng = rng
        self.twitter_share = twitter_share
        self.generator = LegitimateSiteGenerator()
        providers = list(web.fwb_providers.values())
        self._providers = providers
        self.posted: List[Tuple[HostedSite, str]] = []

    def post_benign_site(self, now: int) -> HostedSite:
        provider = self._providers[int(self.rng.integers(len(self._providers)))]
        site = self.generator.create_fwb_site(provider, now, self.rng)
        name = "twitter" if self.rng.random() < self.twitter_share else "facebook"
        platform = self.platforms[name]
        post = platform.publish_url(
            site.root_url, author=f"user-{int(self.rng.integers(1e6))}",
            now=now, phishing=False,
        )
        self.posted.append((site, post.post_id))
        return site
