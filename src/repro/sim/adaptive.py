"""Adaptive attacker: migration toward poorly-policed FWBs.

The paper closes §5.1 with a prediction: *"The lack of blocklist coverage
for a particular FWB might entice attackers to more frequently abuse that
service."* — and §5.3 makes the same argument for takedown laggards. This
module implements that feedback loop so the prediction can be tested:

:class:`AdaptiveAttackerModel` starts from the measured abuse distribution
and, after each feedback round, re-weights every service by the observed
survival of its own attacks (sites still alive and posts still up at the
horizon). Services that police poorly accumulate share; responsive
services (Weebly, 000webhost, Wix) lose it — quantified by
``benchmarks/bench_adaptive_attacker.py``.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..simnet.web import Web
from ..social.platform import SocialPlatform
from .attacker import AttackerModel, LaunchedAttack


@dataclass
class FeedbackRound:
    """Outcome statistics of one launch round, per FWB."""

    round_index: int
    launches: Dict[str, int] = field(default_factory=dict)
    survived: Dict[str, int] = field(default_factory=dict)

    def survival_rate(self, fwb: str) -> float:
        launched = self.launches.get(fwb, 0)
        if launched == 0:
            return 0.0
        return self.survived.get(fwb, 0) / launched


class AdaptiveAttackerModel(AttackerModel):
    """An attacker that re-weights FWB choice by observed survival.

    Parameters
    ----------
    learning_rate:
        How aggressively weights move toward observed survival. 0 keeps the
        static distribution; 1 jumps straight to the survival profile.
    exploration_floor:
        Minimum share kept on every service so the attacker keeps probing
        services it has abandoned (real campaigns do).
    """

    def __init__(
        self,
        web: Web,
        platforms: Dict[str, SocialPlatform],
        rng: np.random.Generator,
        learning_rate: float = 0.5,
        exploration_floor: float = 0.01,
        **kwargs,
    ) -> None:
        super().__init__(web, platforms, rng, **kwargs)
        self.learning_rate = learning_rate
        self.exploration_floor = exploration_floor
        self.rounds: List[FeedbackRound] = []

    # -- feedback -----------------------------------------------------------------

    def current_shares(self) -> Dict[str, float]:
        return {
            provider.service.name: float(probability)
            for provider, probability in zip(
                self._providers, self._provider_probabilities
            )
        }

    def observe_round(
        self,
        attacks: Sequence[LaunchedAttack],
        now: int,
    ) -> FeedbackRound:
        """Fold one round's survival outcomes back into the FWB weights.

        An attack "survived" if its site is still active *and* its
        announcement post is still live at ``now``.
        """
        feedback = FeedbackRound(round_index=len(self.rounds))
        launches: Counter = Counter()
        survived: Counter = Counter()
        for attack in attacks:
            if not attack.is_fwb:
                continue
            fwb = attack.site.metadata.get("fwb")
            launches[fwb] += 1
            platform = self.platforms[attack.platform_name]
            site_alive = attack.site.is_active(now)
            post_alive = platform.is_post_live(attack.post_id, now)
            if site_alive and post_alive:
                survived[fwb] += 1
        feedback.launches = dict(launches)
        feedback.survived = dict(survived)
        self.rounds.append(feedback)
        self._reweight(feedback)
        return feedback

    def _reweight(self, feedback: FeedbackRound) -> None:
        old = self._provider_probabilities
        survival = np.array(
            [
                feedback.survival_rate(provider.service.name)
                if feedback.launches.get(provider.service.name, 0) > 0
                # No data this round: assume the current mix's mean outcome.
                else float(np.dot(old, [
                    feedback.survival_rate(p.service.name)
                    for p in self._providers
                ]))
                for provider in self._providers
            ]
        )
        if survival.sum() <= 0:
            return  # everything died: nothing to learn toward
        target = survival / survival.sum()
        blended = (1.0 - self.learning_rate) * old + self.learning_rate * target
        blended = np.maximum(blended, self.exploration_floor)
        self._provider_probabilities = blended / blended.sum()


def run_adaptation_experiment(
    world,
    n_rounds: int = 4,
    launches_per_round: int = 120,
    survival_horizon_minutes: int = 24 * 60,
    learning_rate: float = 0.5,
) -> List[Dict[str, float]]:
    """Run the migration experiment inside an existing campaign world.

    Returns the FWB share distribution after each round (index 0 = the
    initial, measured distribution).
    """
    attacker = AdaptiveAttackerModel(
        world.web, world.platforms,
        world.rng_factory.child("adaptive.attacker"),
        learning_rate=learning_rate,
        twitter_share=world.config.twitter_share,
    )
    shares = [attacker.current_shares()]
    now = 0
    for _round in range(n_rounds):
        attacks = []
        for _ in range(launches_per_round):
            now += 10
            attack = attacker.launch_fwb_attack(now)
            attacks.append(attack)
            world._register_attack(attack, now)
            # The ecosystem (FreePhish, community reporters) files abuse
            # reports; each service handles them per its measured policy.
            fwb = attack.site.metadata.get("fwb")
            desk = world.abuse_desks.get(fwb)
            if desk is not None:
                desk.receive_report(attack.site.root_url, now)
        # Let the ecosystem react, then give feedback to the attacker.
        horizon = now + survival_horizon_minutes
        world._housekeeping(horizon)
        attacker.observe_round(attacks, horizon)
        shares.append(attacker.current_shares())
    return shares
