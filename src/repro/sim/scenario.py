"""Historical scenario generator (paper §2, Figure 1).

The two-year retrospective (Jan 2020 - Aug 2022) found 25.2K FWB phishing
URLs (16.3K Twitter, 8.9K Facebook) with (a) quarter-over-quarter growth
and (b) a strategic shift toward newer hosting services. The generator
reproduces both: quarterly volume follows a noisy exponential ramp, and
each service's share follows a logistic adoption curve anchored at its
(staggered) adoption quarter — so early quarters are dominated by the
veteran services and later quarters spread over newly-abused ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..simnet.fwb import FWBService, default_fwb_services

#: Jan 2020 .. Aug 2022 inclusive = 32 months = 11 quarters (last partial).
HISTORICAL_MONTHS = 32
D1_TWITTER_TOTAL = 16_300
D1_FACEBOOK_TOTAL = 8_900

#: Quarter in which attackers first abused each service at scale (0 = the
#: study's first quarter). Veterans from the start; newer platforms later.
ADOPTION_QUARTER: Dict[str, int] = {
    "weebly": 0, "000webhost": 0, "blogspot": 0, "wix": 0,
    "google_sites": 1, "wordpress": 1, "yolasite": 2, "sharepoint": 3,
    "github_io": 3, "google_forms": 4, "firebase": 5, "squareup": 5,
    "zoho_forms": 6, "godaddysites": 7, "mailchimp": 8, "glitch": 8,
    "hpage": 9,
}


@dataclass
class QuarterSeries:
    """Quarterly counts for Figure 1."""

    labels: List[str]
    twitter: List[int]
    facebook: List[int]
    #: per-quarter {fwb: count} over both platforms.
    by_fwb: List[Dict[str, int]]

    @property
    def totals(self) -> List[int]:
        return [t + f for t, f in zip(self.twitter, self.facebook)]

    def dominant_services(self, quarter_index: int, mass: float = 0.8) -> List[str]:
        """Services covering ``mass`` of that quarter's attacks (§2)."""
        counts = self.by_fwb[quarter_index]
        total = sum(counts.values())
        if total == 0:
            return []
        covered = 0
        out: List[str] = []
        for name, count in sorted(counts.items(), key=lambda kv: -kv[1]):
            if count == 0:
                break
            out.append(name)
            covered += count
            if covered >= mass * total:
                break
        return out


class HistoricalScenario:
    """Generates the Figure-1 time series and the D1 URL population."""

    def __init__(
        self,
        services: Optional[Sequence[FWBService]] = None,
        twitter_total: int = D1_TWITTER_TOTAL,
        facebook_total: int = D1_FACEBOOK_TOTAL,
        growth_per_quarter: float = 1.28,
        seed: int = 11,
    ) -> None:
        self.services = list(services) if services is not None else default_fwb_services()
        self.twitter_total = twitter_total
        self.facebook_total = facebook_total
        self.growth_per_quarter = growth_per_quarter
        self.seed = seed

    @property
    def n_quarters(self) -> int:
        return (HISTORICAL_MONTHS + 2) // 3

    def _quarter_labels(self) -> List[str]:
        labels = []
        for q in range(self.n_quarters):
            year = 2020 + (q // 4)
            labels.append(f"{year}Q{q % 4 + 1}")
        return labels

    def _volume_curve(self, total: int, rng: np.random.Generator) -> List[int]:
        """Noisy exponential ramp summing to ``total``."""
        raw = np.array(
            [self.growth_per_quarter ** q for q in range(self.n_quarters)]
        )
        raw = raw * rng.uniform(0.85, 1.15, size=raw.shape)
        raw = raw / raw.sum() * total
        counts = np.floor(raw).astype(int)
        counts[-1] += total - counts.sum()
        return counts.tolist()

    def _fwb_shares(self, quarter: int) -> np.ndarray:
        """Service mix in one quarter: weight × logistic adoption ramp."""
        shares = []
        for service in self.services:
            adopted = ADOPTION_QUARTER.get(service.name, 0)
            ramp = 1.0 / (1.0 + np.exp(-(quarter - adopted) * 1.4))
            shares.append(service.attacker_weight * ramp)
        shares = np.asarray(shares, dtype=np.float64)
        return shares / shares.sum()

    def generate(self) -> QuarterSeries:
        rng = np.random.default_rng(self.seed)
        twitter = self._volume_curve(self.twitter_total, rng)
        facebook = self._volume_curve(self.facebook_total, rng)
        by_fwb: List[Dict[str, int]] = []
        for quarter in range(self.n_quarters):
            total = twitter[quarter] + facebook[quarter]
            shares = self._fwb_shares(quarter)
            counts = rng.multinomial(total, shares)
            by_fwb.append(
                {service.name: int(count)
                 for service, count in zip(self.services, counts)}
            )
        return QuarterSeries(
            labels=self._quarter_labels(),
            twitter=twitter,
            facebook=facebook,
            by_fwb=by_fwb,
        )
