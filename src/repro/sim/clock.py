"""Simulation clock: a minute-resolution scheduler.

Time is integer minutes since the campaign epoch. The clock advances in
fixed ticks (the 10-minute streaming cadence by default) and runs any
callbacks scheduled at or before the new time — enough machinery for this
study's periodic-polling world without a full event queue.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..config import STREAM_INTERVAL_MINUTES
from ..errors import SimulationError

Callback = Callable[[int], None]


class SimulationClock:
    """Tick-driven clock with one-shot and periodic callbacks."""

    def __init__(self, start: int = 0,
                 tick_minutes: int = STREAM_INTERVAL_MINUTES) -> None:
        if tick_minutes <= 0:
            raise SimulationError("tick_minutes must be positive")
        self.now = start
        self.tick_minutes = tick_minutes
        self._queue: List[Tuple[int, int, Callback, Optional[int]]] = []
        self._counter = itertools.count()

    def schedule_at(self, when: int, callback: Callback) -> None:
        """Run ``callback(now)`` once, at the first tick reaching ``when``."""
        if when < self.now:
            raise SimulationError(f"cannot schedule in the past ({when} < {self.now})")
        heapq.heappush(self._queue, (when, next(self._counter), callback, None))

    def schedule_every(self, period: int, callback: Callback,
                       first: Optional[int] = None) -> None:
        """Run ``callback(now)`` every ``period`` minutes."""
        if period <= 0:
            raise SimulationError("period must be positive")
        start = self.now + period if first is None else first
        heapq.heappush(self._queue, (start, next(self._counter), callback, period))

    def _run_due(self) -> None:
        while self._queue and self._queue[0][0] <= self.now:
            when, _tie, callback, period = heapq.heappop(self._queue)
            callback(self.now)
            if period is not None:
                heapq.heappush(
                    self._queue, (when + period, next(self._counter), callback, period)
                )

    def tick(self) -> int:
        """Advance one tick and fire due callbacks; returns the new time."""
        self.now += self.tick_minutes
        self._run_due()
        return self.now

    def run_until(self, end: int) -> None:
        """Tick forward until ``now >= end``."""
        if end < self.now:
            raise SimulationError("cannot run backwards")
        while self.now < end:
            self.tick()
