"""Discrete-time simulation: scenarios, attacker behaviour, world assembly.

:class:`repro.sim.world.CampaignWorld` builds the full stack — simulated
web, social platforms, anti-phishing ecosystem, and the FreePhish framework
— and runs measurement campaigns mirroring the paper's six-month study.
:mod:`repro.sim.scenario` also provides the historical (Fig. 1) generator.
"""

from .clock import SimulationClock
from .attacker import AttackerModel, BenignUserModel
from .groundtruth import GroundTruthDataset, build_ground_truth
from .adaptive import AdaptiveAttackerModel, FeedbackRound, run_adaptation_experiment
from .historical import D1Dataset, HistoricalPipeline
from .scenario import HistoricalScenario, QuarterSeries
from .world import CampaignWorld, CampaignResult

__all__ = [
    "SimulationClock",
    "AttackerModel",
    "BenignUserModel",
    "GroundTruthDataset",
    "build_ground_truth",
    "AdaptiveAttackerModel",
    "FeedbackRound",
    "run_adaptation_experiment",
    "D1Dataset",
    "HistoricalPipeline",
    "HistoricalScenario",
    "QuarterSeries",
    "CampaignWorld",
    "CampaignResult",
]
