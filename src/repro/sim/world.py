"""Full-world assembly and the six-month measurement campaign.

:class:`CampaignWorld` instantiates every subsystem — the simulated web
(17 FWB providers + self-hosting), Twitter and Facebook, the four
blocklists, the 76-engine VirusTotal fleet, FWB abuse desks, the registrar
desk, and the FreePhish framework — and runs the paper's §5 measurement:

1. train the classifier on the ground-truth corpus;
2. stream attacker + benign activity through the platforms at the 10-minute
   cadence while FreePhish polls, classifies, reports and monitors;
3. resolve every tracked URL's timeline against blocklists, VirusTotal,
   host takedowns, and platform moderation.

Scaled-down configurations (``SimulationConfig.scaled``) preserve the
workload shape at laptop-friendly sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..config import SeedBank, SimulationConfig
from ..core.classifier import FreePhishClassifier
from ..core.framework import FreePhish
from ..core.monitor import AnalysisModule, UrlTimeline
from ..core.preprocess import Preprocessor
from ..core.reporting import ReportingModule
from ..core.streaming import StreamingModule
from ..ecosystem.blocklists import default_blocklists
from ..ecosystem.engines import default_engine_fleet
from ..ecosystem.intel import IntelService
from ..ecosystem.takedown import AbuseDesk, RegistrarDesk
from ..ecosystem.virustotal import VirusTotal
from ..ml import RandomForestClassifier
from ..obs.events import ConsoleSink
from ..obs.instrument import Instrumentation
from ..simnet.browser import Browser
from ..simnet.web import Web
from ..social.facebook import CrowdTangleAPI, FacebookPlatform
from ..social.twitter import TwitterAPI, TwitterPlatform
from .attacker import AttackerModel, BenignUserModel
from .groundtruth import GroundTruthDataset, build_ground_truth


@dataclass
class CampaignResult:
    """Everything a measurement campaign produced."""

    config: SimulationConfig
    timelines: List[UrlTimeline]
    detections: int
    observations: int
    ground_truth_size: int

    @property
    def fwb_timelines(self) -> List[UrlTimeline]:
        return [t for t in self.timelines if t.is_fwb]

    @property
    def self_hosted_timelines(self) -> List[UrlTimeline]:
        return [t for t in self.timelines if not t.is_fwb]


class CampaignWorld:
    """The assembled simulation world."""

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        train_samples_per_class: int = 250,
        use_light_classifier: bool = True,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.config = config if config is not None else SimulationConfig()
        self.rng_factory = SeedBank(self.config.seed)
        #: Shared observability hub; every subsystem records into it.
        #: Pass ``NULL_INSTRUMENTATION`` to opt out entirely (e.g. for
        #: overhead benchmarks) — all hooks collapse to no-op singletons.
        self.instr = (
            instrumentation if instrumentation is not None else Instrumentation()
        )
        self._console_sink: Optional[ConsoleSink] = None

        # Substrate.
        self.web = Web()
        self.browser = Browser(self.web)
        self.intel = IntelService(self.web, self.browser)

        # Social platforms.
        self.twitter = TwitterPlatform(
            self.rng_factory.child("social.twitter"), instrumentation=self.instr
        )
        self.facebook = FacebookPlatform(
            self.rng_factory.child("social.facebook"), instrumentation=self.instr
        )
        self.platforms = {"twitter": self.twitter, "facebook": self.facebook}

        # Ecosystem.
        self.blocklists = default_blocklists(
            self.intel, seed=self.config.seed, instrumentation=self.instr
        )
        self.engines = default_engine_fleet(self.rng_factory)
        self.virustotal = VirusTotal(
            self.engines, self.intel, instrumentation=self.instr
        )
        self.abuse_desks: Dict[str, AbuseDesk] = {
            name: AbuseDesk(
                provider, self.web, self.rng_factory.child(f"desk.{name}"),
                instrumentation=self.instr,
            )
            for name, provider in self.web.fwb_providers.items()
        }
        self.registrar = RegistrarDesk(
            self.web.self_hosting, self.web, self.intel,
            seed=self.rng_factory.child_seed("ecosystem.registrar"),
            instrumentation=self.instr,
        )

        # Behaviour models.
        self.attacker = AttackerModel(
            self.web, self.platforms, self.rng_factory.child("attacker"),
            twitter_share=self.config.twitter_share,
        )
        self.benign_users = BenignUserModel(
            self.web, self.platforms, self.rng_factory.child("benign"),
        )

        # FreePhish.
        self.preprocessor = Preprocessor(
            self.web, self.browser, instrumentation=self.instr
        )
        classifier_model = (
            RandomForestClassifier(
                n_estimators=40, max_depth=10, random_state=self.config.seed
            )
            if use_light_classifier
            else None
        )
        self.classifier = FreePhishClassifier(model=classifier_model)
        self.streaming = StreamingModule(
            self.web,
            TwitterAPI(self.twitter),
            CrowdTangleAPI(self.facebook),
            interval_minutes=self.config.stream_interval_minutes,
            instrumentation=self.instr,
        )
        self.reporting = ReportingModule(
            self.abuse_desks, self.platforms, instrumentation=self.instr
        )
        self.analysis = AnalysisModule(
            self.web, self.blocklists, self.virustotal, self.platforms,
            window_minutes=self.config.monitor_window_minutes,
            poll_interval=self.config.stream_interval_minutes,
            instrumentation=self.instr,
        )
        self.framework = FreePhish(
            self.web, self.streaming, self.preprocessor, self.classifier,
            self.reporting, self.analysis, fwb_only=False,
            instrumentation=self.instr,
        )
        self.train_samples_per_class = train_samples_per_class
        self._ground_truth: Optional[GroundTruthDataset] = None
        #: Ground-truth phishing labels for every URL that entered a stream.
        self.truth: Dict[str, bool] = {}

    # -- training -------------------------------------------------------------

    def train_classifier(self) -> GroundTruthDataset:
        """Build the ground-truth corpus and train the classifier on it."""
        dataset = build_ground_truth(
            n_per_class=self.train_samples_per_class,
            seed=self.rng_factory.child_seed("world.ground_truth"),
        )
        with self.instr.span("campaign.train"):
            self.classifier.fit_pages(dataset.pages, dataset.labels)
        self._ground_truth = dataset
        self.instr.emit("campaign.trained", samples=len(dataset))
        return dataset

    # -- campaign loop ------------------------------------------------------------

    def _arrivals_per_tick(self) -> float:
        ticks = self.config.duration_minutes / self.config.stream_interval_minutes
        return self.config.target_fwb_phishing / ticks

    def _launch_activity(self, now: int, rng: np.random.Generator,
                         rate: float) -> None:
        for _ in range(rng.poisson(rate)):
            attack = self.attacker.launch_fwb_attack(now)
            self._register_attack(attack, now)
        for _ in range(rng.poisson(rate)):
            attack = self.attacker.launch_self_hosted_attack(now)
            self._register_attack(attack, now)
        for _ in range(rng.poisson(rate * self.config.benign_per_phishing)):
            site = self.benign_users.post_benign_site(now)
            self.truth[str(site.root_url)] = False

    def _register_attack(self, attack, now: int) -> None:
        self.truth[str(attack.site.root_url)] = True
        platform = self.platforms[attack.platform_name]
        post = platform.get_post(attack.post_id)
        suspicion = self.intel.suspicion(attack.site.root_url, now)
        platform.scan(post, suspicion, now)
        if not attack.is_fwb:
            self.registrar.observe(attack.site.root_url, now)

    def run(self, verbose: bool = False) -> CampaignResult:
        """Run the full campaign and resolve all timelines.

        ``verbose`` subscribes a console sink to the event log, so daily
        progress events render to stdout as they are emitted.
        """
        if verbose and self._console_sink is None:
            self._console_sink = ConsoleSink()
            self.instr.events.subscribe(self._console_sink)
        interval = self.config.stream_interval_minutes
        end = self.config.duration_minutes
        self.instr.set_time(0)
        self.instr.emit(
            "campaign.start",
            duration_minutes=end,
            seed=self.config.seed,
            target_fwb_phishing=self.config.target_fwb_phishing,
        )
        if self._ground_truth is None:
            self.train_classifier()
        rng = self.rng_factory.child("world.arrivals")
        rate = self._arrivals_per_tick()

        now = 0
        while now < end:
            now += interval
            self.instr.set_time(now)
            self._launch_activity(now, rng, rate)
            self.framework.step(now)
            if now % (24 * 60) < interval:  # housekeeping once a day
                self._housekeeping(now)
                self.instr.emit(
                    "campaign.day",
                    day=now // (24 * 60),
                    detections=self.framework.stats.detections,
                    observations=self.framework.stats.observations,
                    tracked=self.analysis.n_tracked,
                )
        # Let every scheduled action (takedowns, moderation) play out across
        # the monitoring window before resolving timelines.
        horizon = end + self.config.takedown_window_minutes
        self.instr.set_time(horizon)
        self._housekeeping(horizon)

        with self.instr.span("campaign.resolve"):
            timelines = self.analysis.resolve_all(
                truth=self.truth,
                site_horizon_minutes=self.config.takedown_window_minutes,
            )
        self.instr.emit(
            "campaign.finished",
            detections=self.framework.stats.detections,
            observations=self.framework.stats.observations,
            timelines=len(timelines),
        )
        return CampaignResult(
            config=self.config,
            timelines=timelines,
            detections=self.framework.stats.detections,
            observations=self.framework.stats.observations,
            ground_truth_size=0 if self._ground_truth is None else len(self._ground_truth),
        )

    def _housekeeping(self, now: int) -> None:
        for desk in self.abuse_desks.values():
            desk.apply_takedowns(now)
        self.registrar.apply_takedowns(now)
        for platform in self.platforms.values():
            platform.apply_moderation(now)
