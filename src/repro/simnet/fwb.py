"""Profiles of the 17 Free Website Building services the paper studies.

Each :class:`FWBService` captures the properties that matter to the paper's
analysis:

* the hosting domain and whether it carries a **premium .com TLD** (14 of the
  17 do — §3 "Premium TLDs");
* the shared wildcard **OV/EV certificate** every customer site inherits
  (§3 "Immediate SSL Certification");
* the **domain age** — FWB domains are many years old, so WHOIS-age
  heuristics read FWB phishing pages as ancient (§3 "Longer Domain Age");
* whether free sites carry a **service banner** that phishers obfuscate
  (§4.2 "Obfuscating FWB Footer");
* whether the builder allows **custom HTML / credential forms**, which
  determines the mix of direct credential-phishing vs. the evasive
  variants of §5.5 (two-step link-outs, i-frames, drive-by downloads);
* the **abuse-handling policy** (:class:`FWBPolicy`) — how often and how
  fast the service removes reported phishing sites, and how it responds to
  reports. Policy parameters are calibrated from Table 4 / §5.3 of the
  paper and drive the *takedown behaviour model*, not the reported numbers
  directly: measured coverage in our benchmarks emerges from simulation.
* the **attacker popularity weight**: the per-FWB URL counts of Table 4
  (they sum to exactly the paper's 31,405).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError
from .tls import ValidationLevel
from .url import URL

MINUTES_PER_YEAR = 365 * 24 * 60


class ReportResponsiveness:
    """How an FWB abuse desk reacts to external phishing reports (§5.3)."""

    #: Never acknowledges reports (WordPress, GoDaddySites, Firebase, ...).
    SILENT = "silent"
    #: Opens a ticket for some reports but rarely follows through.
    ACKNOWLEDGES = "acknowledges"
    #: Responds, follows up, and removes site + account (Weebly, Wix, ...).
    RESPONSIVE = "responsive"


@dataclass(frozen=True)
class FWBPolicy:
    """Abuse-handling behaviour model for one FWB service.

    ``removal_rate`` is the long-run probability a *reported* phishing site
    is ever removed; ``median_removal_minutes`` sets the scale of the
    removal-delay distribution (log-normal around the median, as takedown
    delays are heavy-tailed). ``response_rate`` is the fraction of reports
    that receive any acknowledgement.
    """

    removal_rate: float
    median_removal_minutes: int
    responsiveness: str
    response_rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.removal_rate <= 1.0:
            raise ConfigError("removal_rate must lie in [0, 1]")
        if self.median_removal_minutes < 0:
            raise ConfigError("median_removal_minutes cannot be negative")
        if not 0.0 <= self.response_rate <= 1.0:
            raise ConfigError("response_rate must lie in [0, 1]")


@dataclass(frozen=True)
class FWBService:
    """Static profile of one Free Website Building service."""

    name: str
    domain: str
    organization: str
    founded_years_before_epoch: float
    cert_level: ValidationLevel
    has_banner: bool
    allows_custom_html: bool
    allows_credential_forms: bool
    #: Relative frequency with which attackers pick this FWB (Table 4 counts).
    attacker_weight: int
    policy: FWBPolicy
    #: Probability that a phishing site on this FWB is one of the §5.5
    #: evasive variants rather than a direct credential page.
    evasive_share: float = 0.0
    #: Mix over evasive variants (two_step, iframe, driveby); must sum to 1
    #: when ``evasive_share > 0``.
    evasive_mix: Tuple[float, float, float] = (0.34, 0.33, 0.33)
    #: How heavily blocklists scrutinise this service's subdomains, relative
    #: to 1.0 =average. Heavily-abused services (Weebly, 000webhost, Wix)
    #: attract dedicated detection rules (§5.1).
    scrutiny: float = 1.0

    def __post_init__(self) -> None:
        if self.attacker_weight < 0:
            raise ConfigError("attacker_weight cannot be negative")
        if not 0.0 <= self.evasive_share <= 1.0:
            raise ConfigError("evasive_share must lie in [0, 1]")
        if self.evasive_share > 0:
            total = sum(self.evasive_mix)
            if abs(total - 1.0) > 1e-9:
                raise ConfigError("evasive_mix must sum to 1")
        if self.scrutiny <= 0:
            raise ConfigError("scrutiny must be positive")

    @property
    def tld(self) -> str:
        return self.domain.rsplit(".", 1)[-1]

    @property
    def offers_com_tld(self) -> bool:
        return self.tld == "com"

    @property
    def registered_at(self) -> int:
        """Registration time in minutes relative to the simulation epoch."""
        return -int(self.founded_years_before_epoch * MINUTES_PER_YEAR)

    def site_host(self, site_name: str) -> str:
        """The fully-qualified host an FWB customer site receives."""
        return f"{site_name}.{self.domain}"

    def owns_url(self, url: URL) -> bool:
        """Is ``url`` hosted on this FWB (i.e. a customer subdomain)?"""
        return url.registered_domain == self.domain and url.has_subdomain


def _policy(rate: float, median_hhmm: str, responsiveness: str, response: float) -> FWBPolicy:
    hours, minutes = median_hhmm.split(":")
    return FWBPolicy(
        removal_rate=rate,
        median_removal_minutes=int(hours) * 60 + int(minutes),
        responsiveness=responsiveness,
        response_rate=response,
    )


def default_fwb_services() -> List[FWBService]:
    """The paper's 17 FWB services with Table-4-calibrated behaviour models.

    The epoch is November 2022 (start of the six-month measurement), so
    ``founded_years_before_epoch`` approximates each platform's real age at
    that point. Attacker weights are the exact per-FWB URL counts of
    Table 4 (sum = 31,405).
    """
    services = [
        FWBService(
            name="weebly", domain="weebly.com", organization="Weebly, Inc.",
            founded_years_before_epoch=16.5, cert_level=ValidationLevel.EV,
            has_banner=True, allows_custom_html=True, allows_credential_forms=True,
            attacker_weight=7031,
            policy=_policy(0.5856, "01:39", ReportResponsiveness.RESPONSIVE, 0.716),
            evasive_share=0.02, scrutiny=1.9,
        ),
        FWBService(
            name="000webhost", domain="000webhostapp.com", organization="Hostinger",
            founded_years_before_epoch=15.0, cert_level=ValidationLevel.OV,
            has_banner=True, allows_custom_html=True, allows_credential_forms=True,
            attacker_weight=5934,
            policy=_policy(0.5904, "00:45", ReportResponsiveness.RESPONSIVE, 0.827),
            evasive_share=0.02, scrutiny=1.9,
        ),
        FWBService(
            name="blogspot", domain="blogspot.com", organization="Google LLC",
            founded_years_before_epoch=23.0, cert_level=ValidationLevel.OV,
            has_banner=True, allows_custom_html=True, allows_credential_forms=True,
            attacker_weight=3156,
            policy=_policy(0.0852, "06:51", ReportResponsiveness.ACKNOWLEDGES, 0.283),
            evasive_share=0.37, evasive_mix=(0.38, 0.31, 0.31), scrutiny=0.55,
        ),
        FWBService(
            name="wix", domain="wixsite.com", organization="Wix.com Ltd.",
            founded_years_before_epoch=16.0, cert_level=ValidationLevel.EV,
            has_banner=True, allows_custom_html=True, allows_credential_forms=True,
            attacker_weight=2338,
            policy=_policy(0.6455, "02:16", ReportResponsiveness.RESPONSIVE, 0.653),
            evasive_share=0.02, scrutiny=1.5,
        ),
        FWBService(
            name="google_sites", domain="sites-google.com", organization="Google LLC",
            founded_years_before_epoch=14.5, cert_level=ValidationLevel.OV,
            has_banner=True, allows_custom_html=False, allows_credential_forms=False,
            attacker_weight=2247,
            policy=_policy(0.0776, "12:22", ReportResponsiveness.ACKNOWLEDGES, 0.152),
            evasive_share=0.72, evasive_mix=(0.34, 0.27, 0.39), scrutiny=0.35,
        ),
        FWBService(
            name="github_io", domain="github.io", organization="GitHub, Inc.",
            founded_years_before_epoch=14.7, cert_level=ValidationLevel.OV,
            has_banner=False, allows_custom_html=True, allows_credential_forms=True,
            attacker_weight=942,
            policy=_policy(0.0916, "20:34", ReportResponsiveness.ACKNOWLEDGES, 0.374),
            evasive_share=0.08, scrutiny=0.75,
        ),
        FWBService(
            name="firebase", domain="firebaseapp.com", organization="Google LLC",
            founded_years_before_epoch=11.0, cert_level=ValidationLevel.OV,
            has_banner=False, allows_custom_html=True, allows_credential_forms=True,
            attacker_weight=1416,
            policy=_policy(0.0722, "14:15", ReportResponsiveness.SILENT, 0.0),
            evasive_share=0.08, scrutiny=0.8,
        ),
        FWBService(
            name="squareup", domain="square.site", organization="Block, Inc.",
            founded_years_before_epoch=13.5, cert_level=ValidationLevel.EV,
            has_banner=True, allows_custom_html=False, allows_credential_forms=True,
            attacker_weight=1736,
            policy=_policy(0.1875, "10:11", ReportResponsiveness.ACKNOWLEDGES, 0.237),
            evasive_share=0.10, scrutiny=0.9,
        ),
        FWBService(
            name="zoho_forms", domain="zohopublic.com", organization="Zoho Corporation",
            founded_years_before_epoch=17.0, cert_level=ValidationLevel.OV,
            has_banner=True, allows_custom_html=False, allows_credential_forms=True,
            attacker_weight=498,
            policy=_policy(0.2457, "07:11", ReportResponsiveness.RESPONSIVE, 0.704),
            evasive_share=0.05, scrutiny=0.7,
        ),
        FWBService(
            name="wordpress", domain="wordpress.com", organization="Automattic Inc.",
            founded_years_before_epoch=17.5, cert_level=ValidationLevel.OV,
            has_banner=True, allows_custom_html=True, allows_credential_forms=True,
            attacker_weight=786,
            policy=_policy(0.0509, "20:50", ReportResponsiveness.SILENT, 0.0),
            evasive_share=0.06, scrutiny=0.8,
        ),
        FWBService(
            name="google_forms", domain="forms-google.com", organization="Google LLC",
            founded_years_before_epoch=14.5, cert_level=ValidationLevel.OV,
            has_banner=True, allows_custom_html=False, allows_credential_forms=True,
            attacker_weight=1397,
            policy=_policy(0.1196, "06:17", ReportResponsiveness.ACKNOWLEDGES, 0.20),
            evasive_share=0.45, evasive_mix=(0.55, 0.15, 0.30), scrutiny=0.45,
        ),
        FWBService(
            name="sharepoint", domain="sharepoint.com", organization="Microsoft Corporation",
            founded_years_before_epoch=21.5, cert_level=ValidationLevel.EV,
            has_banner=False, allows_custom_html=False, allows_credential_forms=False,
            attacker_weight=2181,
            policy=_policy(0.0764, "05:07", ReportResponsiveness.SILENT, 0.0),
            evasive_share=0.78, evasive_mix=(0.20, 0.10, 0.70), scrutiny=0.4,
        ),
        FWBService(
            name="yolasite", domain="yolasite.com", organization="Yola, Inc.",
            founded_years_before_epoch=14.0, cert_level=ValidationLevel.OV,
            has_banner=True, allows_custom_html=True, allows_credential_forms=True,
            attacker_weight=601,
            policy=_policy(0.0752, "07:05", ReportResponsiveness.SILENT, 0.0),
            evasive_share=0.03, scrutiny=0.55,
        ),
        FWBService(
            name="godaddysites", domain="godaddysites.com", organization="GoDaddy Inc.",
            founded_years_before_epoch=6.0, cert_level=ValidationLevel.OV,
            has_banner=True, allows_custom_html=False, allows_credential_forms=True,
            attacker_weight=418,
            policy=_policy(0.0584, "04:58", ReportResponsiveness.SILENT, 0.0),
            evasive_share=0.04, scrutiny=0.5,
        ),
        FWBService(
            name="mailchimp", domain="mailchimpsites.com", organization="Intuit Inc.",
            founded_years_before_epoch=21.0, cert_level=ValidationLevel.OV,
            has_banner=True, allows_custom_html=False, allows_credential_forms=True,
            attacker_weight=183,
            policy=_policy(0.2367, "18:11", ReportResponsiveness.ACKNOWLEDGES, 0.15),
            evasive_share=0.05, scrutiny=0.5,
        ),
        FWBService(
            name="glitch", domain="glitch.me", organization="Fastly, Inc.",
            founded_years_before_epoch=8.5, cert_level=ValidationLevel.OV,
            has_banner=False, allows_custom_html=True, allows_credential_forms=True,
            attacker_weight=480,
            policy=_policy(0.2131, "34:47", ReportResponsiveness.ACKNOWLEDGES, 0.10),
            evasive_share=0.06, scrutiny=0.55,
        ),
        FWBService(
            name="hpage", domain="hpage.com", organization="hPage GmbH",
            founded_years_before_epoch=12.0, cert_level=ValidationLevel.OV,
            has_banner=True, allows_custom_html=True, allows_credential_forms=True,
            attacker_weight=61,
            policy=_policy(0.1960, "11:45", ReportResponsiveness.ACKNOWLEDGES, 0.12),
            evasive_share=0.03, scrutiny=0.4,
        ),
    ]
    total = sum(s.attacker_weight for s in services)
    if total != 31405:
        raise ConfigError(
            f"attacker weights must sum to the paper's 31,405 (got {total})"
        )
    if len(services) != 17:
        raise ConfigError(
            f"expected the paper's 17 FWB services, got {len(services)}"
        )
    return services


def fwb_by_name(name: str, services: Optional[List[FWBService]] = None) -> FWBService:
    """Look up a service profile by name."""
    for service in services if services is not None else default_fwb_services():
        if service.name == name:
            return service
    raise ConfigError(f"unknown FWB service: {name!r}")


def fwb_domain_index(services: Optional[List[FWBService]] = None) -> Dict[str, FWBService]:
    """Map registrable domain → service, for URL attribution."""
    return {s.domain: s for s in (services if services is not None else default_fwb_services())}
