"""Simulated internet substrate.

This package models the pieces of internet infrastructure that the paper's
measurement depends on: URLs, DNS and domain registration, WHOIS records,
TLS certificates and the Certificate Transparency log, hosting providers
(including the 17 Free Website Builder services), a fetch/render browser,
and a search-engine index that honours ``<noindex>`` tags.
"""

from .url import URL, parse_url, extract_urls, URLStringStats
from .dns import DomainRegistry, DomainRecord
from .whois import WhoisService, WhoisRecord
from .tls import Certificate, CertificateAuthority, CTLog
from .fwb import FWBService, FWBPolicy, default_fwb_services, fwb_by_name
from .hosting import (
    FileAsset,
    FWBHostingProvider,
    HostedSite,
    HostingProvider,
    SelfHostingProvider,
    SiteStatus,
)
from .browser import Browser, FetchResult, PageSnapshot
from .search import SearchIndex
from .web import Web

__all__ = [
    "URL",
    "parse_url",
    "extract_urls",
    "URLStringStats",
    "Web",
    "DomainRegistry",
    "DomainRecord",
    "WhoisService",
    "WhoisRecord",
    "Certificate",
    "CertificateAuthority",
    "CTLog",
    "FWBService",
    "FWBPolicy",
    "default_fwb_services",
    "fwb_by_name",
    "FileAsset",
    "FWBHostingProvider",
    "HostedSite",
    "HostingProvider",
    "SelfHostingProvider",
    "SiteStatus",
    "Browser",
    "FetchResult",
    "PageSnapshot",
    "SearchIndex",
]
