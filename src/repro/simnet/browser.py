"""Simulated browser: fetch, render, follow redirects, resolve iframes.

The pre-processing module (paper §4.1) stores a "full snapshot" of each
website — screenshot plus source code. :meth:`Browser.snapshot` reproduces
that: it fetches the page, parses it, renders a visual signature, collects
iframe sources and their (client-side rendered) contents, and records any
file downloads the page triggers.

The iframe point matters for §5.5: scanners that look only at the fetched
markup never see the phishing content inside an embedded iframe, because it
is rendered client-side. The snapshot therefore keeps iframe contents
*separate* from the top-level markup, and detection engines differ in
whether they look inside.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import FetchError, SiteRemovedError, URLError
from ..webdoc import Document, VisualSignature, parse_html, render_signature
from .hosting import FileAsset, HostedSite
from .tls import Certificate
from .url import URL, parse_url
from .web import Web

#: Maximum redirect / link hops the browser will follow.
MAX_HOPS = 5


@dataclass
class FetchResult:
    """Outcome of fetching one URL."""

    url: URL
    status: int
    markup: str = ""
    download: Optional[FileAsset] = None
    certificate: Optional[Certificate] = None

    @property
    def ok(self) -> bool:
        return self.status == 200


@dataclass
class PageSnapshot:
    """Full snapshot of a page, as stored by the pre-processing module."""

    url: URL
    fetched_at: int
    markup: str
    document: Document
    certificate: Optional[Certificate]
    #: (iframe src URL, markup of the framed page) for same-session resolvable
    #: frames; unresolvable/external-dead frames carry empty markup.
    iframe_contents: List[Tuple[URL, str]] = field(default_factory=list)
    #: Files the page offers for download.
    downloads: List[FileAsset] = field(default_factory=list)
    #: External link-out targets (the §5.5 two-step vector).
    outbound_links: List[URL] = field(default_factory=list)
    #: Lazily rendered visual signature (see the ``signature`` property).
    _signature: Optional[VisualSignature] = field(
        default=None, repr=False, compare=False
    )

    @property
    def signature(self) -> VisualSignature:
        """The rendered :class:`~repro.webdoc.VisualSignature`.

        Rendered on first access and memoized: only the visual baselines
        (VisualPhishNet, PhishIntention) consume it, so the classifier hot
        path never pays the rendering cost.
        """
        if self._signature is None:
            self._signature = render_signature(self.document)
        return self._signature


class Browser:
    """A headless browser over the simulated :class:`Web`."""

    def __init__(self, web: Web) -> None:
        self.web = web

    # -- fetching ----------------------------------------------------------------

    def fetch(self, url: URL, now: int) -> FetchResult:
        """Fetch a URL. 404s and removed sites yield non-200 statuses."""
        site = self.web.site_for(url)
        if site is None:
            return FetchResult(url=url, status=404)
        if not site.is_active(now):
            return FetchResult(url=url, status=410)
        certificate = None
        if url.scheme == "https":
            certificate = self.web.ca.certificate_for(url)
        download = site.file_for(url)
        if download is not None:
            return FetchResult(url=url, status=200, download=download,
                               certificate=certificate)
        markup = site.page_for(url)
        if markup is None:
            return FetchResult(url=url, status=404, certificate=certificate)
        return FetchResult(url=url, status=200, markup=markup,
                           certificate=certificate)

    def is_reachable(self, url: URL, now: int) -> bool:
        return self.fetch(url, now).ok

    # -- snapshotting -------------------------------------------------------------

    def snapshot(self, url: URL, now: int) -> PageSnapshot:
        """Take the pre-processing module's full page snapshot.

        Raises :class:`~repro.errors.FetchError` if the page cannot be
        retrieved (the streaming pipeline skips such URLs).
        """
        return self.snapshot_from(self.fetch(url, now), now)

    def snapshot_from(self, result: FetchResult, now: int) -> PageSnapshot:
        """Complete a snapshot from an already-fetched :class:`FetchResult`.

        The preprocessing cache probes with a cheap :meth:`fetch` before
        deciding whether to parse; on a cache miss this entry point
        finishes the snapshot without fetching the markup a second time.
        The simulated web is deterministic at fixed ``now``, so the result
        is identical to :meth:`snapshot` on ``result.url``.
        """
        url = result.url
        if not result.ok:
            raise SiteRemovedError(f"cannot snapshot {url} (status {result.status})")
        if result.download is not None:
            # A bare file URL: wrap it in an empty page carrying the download.
            document = parse_html("<html><head></head><body></body></html>")
            return PageSnapshot(
                url=url,
                fetched_at=now,
                markup="",
                document=document,
                certificate=result.certificate,
                downloads=[result.download],
            )

        document = parse_html(result.markup)
        snapshot = PageSnapshot(
            url=url,
            fetched_at=now,
            markup=result.markup,
            document=document,
            certificate=result.certificate,
        )
        self._resolve_iframes(snapshot, now)
        self._collect_links(snapshot, now)
        return snapshot

    # -- helpers -----------------------------------------------------------------

    def _absolute(self, base: URL, href: str) -> Optional[URL]:
        href = (href or "").strip()
        if not href or href.startswith(("#", "javascript:", "mailto:")):
            return None
        try:
            if href.startswith(("http://", "https://")):
                return parse_url(href)
            if href.startswith("/"):
                return base.with_path(href)
            return base.with_path("/" + href)
        except URLError:
            return None

    def _resolve_iframes(self, snapshot: PageSnapshot, now: int) -> None:
        for iframe in snapshot.document.iframes():
            src = self._absolute(snapshot.url, iframe.get("src"))
            if src is None:
                continue
            framed = self.fetch(src, now)
            snapshot.iframe_contents.append(
                (src, framed.markup if framed.ok else "")
            )

    def _collect_links(self, snapshot: PageSnapshot, now: int) -> None:
        for anchor in snapshot.document.links():
            target = self._absolute(snapshot.url, anchor.get("href"))
            if target is None:
                continue
            if target.host != snapshot.url.host:
                snapshot.outbound_links.append(target)
        for anchor in snapshot.document.download_links():
            target = self._absolute(snapshot.url, anchor.get("href"))
            if target is None:
                continue
            fetched = self.fetch(target, now)
            if fetched.ok and fetched.download is not None:
                snapshot.downloads.append(fetched.download)

    # -- multi-hop navigation (PhishIntention-style dynamic analysis) -------------

    def follow_workflow(self, url: URL, now: int, max_hops: int = MAX_HOPS) -> List[PageSnapshot]:
        """Simulate a user clicking through the page's primary call-to-action.

        Returns the chain of snapshots starting at ``url``. Used by the
        PhishIntention baseline (dynamic analysis) and by the §5.5 two-step
        heuristics.
        """
        chain: List[PageSnapshot] = []
        seen = set()
        current: Optional[URL] = url
        for _ in range(max_hops):
            if current is None or str(current) in seen:
                break
            seen.add(str(current))
            try:
                snapshot = self.snapshot(current, now)
            except FetchError:
                break
            chain.append(snapshot)
            current = self._primary_action_target(snapshot)
        return chain

    def _primary_action_target(self, snapshot: PageSnapshot) -> Optional[URL]:
        """The URL a user lands on after clicking the page's main button."""
        # Prefer explicit button-like anchors, then any outbound link.
        for anchor in snapshot.document.links():
            classes = " ".join(anchor.classes).lower()
            text = anchor.text_content().lower()
            if "button" in classes or "btn" in classes or any(
                word in text for word in ("continue", "login", "sign in", "verify", "claim")
            ):
                target = self._absolute(snapshot.url, anchor.get("href"))
                if target is not None and target.host != snapshot.url.host:
                    return target
        if snapshot.outbound_links:
            return snapshot.outbound_links[0]
        return None
