"""Simulated search-engine index.

The paper (§3, "Increased Difficulty of Discovery") finds that only 4.1% of
FWB phishing URLs were indexed by Google: subdomain sites with no incoming
links are not crawled, and 44.7% carried a ``<noindex>`` meta tag. Several
anti-phishing crawlers mine search indexes for fresh attacks, so absence
from the index is an evasion channel.

The index models exactly that policy: a submitted page is indexed only if
it has at least one incoming link (or is explicitly submitted as linked)
**and** does not request ``noindex``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from ..webdoc import parse_html
from .url import URL


@dataclass
class IndexEntry:
    url: URL
    indexed_at: int
    title: str


class SearchIndex:
    """A toy Google: indexes pages subject to linking/noindex policy."""

    def __init__(self) -> None:
        self._entries: Dict[str, IndexEntry] = {}
        self._incoming_links: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def record_incoming_link(self, url: URL) -> None:
        """Another page (or a crawled social post) links to ``url``."""
        key = str(url.root())
        self._incoming_links[key] = self._incoming_links.get(key, 0) + 1

    def incoming_links(self, url: URL) -> int:
        return self._incoming_links.get(str(url.root()), 0)

    def submit(self, url: URL, markup: str, now: int) -> bool:
        """Attempt to index ``url``; returns whether it was indexed.

        Refuses pages with a ``noindex`` directive and pages that no other
        site links to (the common state of a phishing subdomain).
        """
        document = parse_html(markup)
        if document.has_noindex():
            return False
        if self.incoming_links(url) == 0:
            return False
        key = str(url.root())
        if key not in self._entries:
            self._entries[key] = IndexEntry(
                url=url.root(), indexed_at=now, title=document.title
            )
        return True

    def is_indexed(self, url: URL) -> bool:
        return str(url.root()) in self._entries

    def remove(self, url: URL) -> None:
        self._entries.pop(str(url.root()), None)

    def search_hosts(self, substring: str) -> Set[str]:
        """All indexed hosts containing ``substring`` (crawler discovery)."""
        substring = substring.lower()
        return {
            entry.url.host
            for entry in self._entries.values()
            if substring in entry.url.host or substring in entry.title.lower()
        }
