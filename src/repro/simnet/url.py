"""URL model and parsing for the simulated web.

The paper's feature extraction (§4.2) and FWB identification both operate on
URL *strings*: second-level-domain extraction identifies the FWB service a
site is hosted on (e.g. ``mysite.weebly.com`` → ``weebly``), and eight of the
classifier's features are URL-derived. This module provides a small, strict
URL value type tailored to those needs — it is not a general RFC 3986
implementation, but it handles everything the generators emit and everything
the paper's regex-based extractor would encounter in social-media posts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import URLError

# Multi-label public suffixes we must treat as a single TLD unit so that
# e.g. ``example.co.uk`` yields registered domain ``example.co.uk``.
_MULTI_SUFFIXES = frozenset(
    {
        "co.uk",
        "org.uk",
        "ac.uk",
        "com.au",
        "com.br",
        "co.in",
        "co.jp",
        "com.mx",
    }
)

_SCHEME_RE = re.compile(r"^(?P<scheme>[a-zA-Z][a-zA-Z0-9+.-]*)://")
_HOST_LABEL_RE = re.compile(r"^[a-z0-9]([a-z0-9-]*[a-z0-9])?$")

#: Regex used by the streaming module to pull URLs out of post text
#: (paper §4.1 extracts URLs from tweets/posts with a regular expression).
URL_IN_TEXT_RE = re.compile(
    r"https?://[a-zA-Z0-9.-]+(?::\d+)?(?:/[^\s\"'<>)\]]*)?",
)


@dataclass(frozen=True)
class URL:
    """A parsed URL.

    Attributes
    ----------
    scheme:
        ``http`` or ``https``.
    host:
        Full lowercase hostname, e.g. ``login-paypa1.weebly.com``.
    path:
        Path beginning with ``/`` (``/`` for the root).
    query:
        Query string without the leading ``?`` (empty if absent).
    """

    scheme: str
    host: str
    path: str = "/"
    query: str = ""

    def __post_init__(self) -> None:
        if self.scheme not in ("http", "https"):
            raise URLError(f"unsupported scheme: {self.scheme!r}")
        if not self.host:
            raise URLError("empty host")
        for label in self.host.split("."):
            if not _HOST_LABEL_RE.match(label):
                raise URLError(f"invalid host label {label!r} in {self.host!r}")
        if len(self.host.split(".")) < 2:
            raise URLError(f"host must contain at least two labels: {self.host!r}")
        if not self.path.startswith("/"):
            raise URLError(f"path must start with '/': {self.path!r}")

    # -- structural accessors ------------------------------------------------

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(self.host.split("."))

    @property
    def tld(self) -> str:
        """The public suffix, e.g. ``com`` or ``co.uk``."""
        labels = self.labels
        if len(labels) >= 2 and ".".join(labels[-2:]) in _MULTI_SUFFIXES:
            return ".".join(labels[-2:])
        return labels[-1]

    @property
    def registered_domain(self) -> str:
        """The registrable domain: one label plus the public suffix.

        ``mysite.weebly.com`` → ``weebly.com``;
        ``shop.example.co.uk`` → ``example.co.uk``.
        """
        suffix = self.tld
        n_suffix = suffix.count(".") + 1
        labels = self.labels
        if len(labels) <= n_suffix:
            raise URLError(f"host {self.host!r} is a bare public suffix")
        return ".".join(labels[-(n_suffix + 1):])

    @property
    def second_level_domain(self) -> str:
        """The label left of the public suffix (the paper's SLD notion).

        For ``mywebsite.000webhost.com`` this is ``000webhost`` — the paper
        uses it to identify the hosting FWB service.
        """
        return self.registered_domain.split(".")[0]

    @property
    def subdomain(self) -> str:
        """Labels left of the registered domain (empty string if none)."""
        reg = self.registered_domain
        if self.host == reg:
            return ""
        return self.host[: -(len(reg) + 1)]

    @property
    def has_subdomain(self) -> bool:
        return bool(self.subdomain)

    @property
    def depth(self) -> int:
        """Number of non-empty path segments."""
        return len([seg for seg in self.path.split("/") if seg])

    # -- rendering -----------------------------------------------------------

    def __str__(self) -> str:
        base = f"{self.scheme}://{self.host}{self.path}"
        if self.query:
            return f"{base}?{self.query}"
        return base

    def with_path(self, path: str) -> "URL":
        return URL(self.scheme, self.host, path, self.query)

    def root(self) -> "URL":
        """The site root (path ``/``, no query)."""
        return URL(self.scheme, self.host, "/", "")


def parse_url(text: str) -> URL:
    """Parse a URL string into a :class:`URL`.

    Raises :class:`~repro.errors.URLError` on anything malformed. Hostnames
    are lowercased; an absent path becomes ``/``.
    """
    if not isinstance(text, str) or not text.strip():
        raise URLError("empty URL")
    text = text.strip()
    match = _SCHEME_RE.match(text)
    if not match:
        raise URLError(f"missing scheme in {text!r}")
    scheme = match.group("scheme").lower()
    rest = text[match.end():]
    if not rest:
        raise URLError(f"missing host in {text!r}")

    for cut in ("/", "?", "#"):
        idx = rest.find(cut)
        if idx != -1:
            host_part, tail = rest[:idx], rest[idx:]
            break
    else:
        host_part, tail = rest, ""

    # Strip port and credentials if present; the simulation never uses them
    # but attacker URLs sometimes carry a deceptive ``user@`` prefix.
    if "@" in host_part:
        host_part = host_part.rsplit("@", 1)[1]
    if ":" in host_part:
        host_part = host_part.split(":", 1)[0]
    host = host_part.lower().rstrip(".")

    path, query = "/", ""
    if tail.startswith("/") or tail.startswith("?") or tail.startswith("#"):
        frag_idx = tail.find("#")
        if frag_idx != -1:
            tail = tail[:frag_idx]
        if tail.startswith("?"):
            path, query = "/", tail[1:]
        elif tail:
            q_idx = tail.find("?")
            if q_idx != -1:
                path, query = tail[:q_idx], tail[q_idx + 1:]
            else:
                path = tail
    return URL(scheme=scheme, host=host, path=path or "/", query=query)


def extract_urls(text: str) -> List[URL]:
    """Extract every parseable URL from free-form post text.

    Mirrors the streaming module's regex extraction (§4.1): find candidate
    ``http(s)`` substrings, parse them, and silently drop candidates that do
    not survive strict parsing (truncated links, punctuation run-ins).
    """
    found: List[URL] = []
    for raw in URL_IN_TEXT_RE.findall(text or ""):
        raw = raw.rstrip(".,;:!")
        try:
            found.append(parse_url(raw))
        except URLError:
            continue
    return found


# -- URL string features (shared by feature extractors) ----------------------

SUSPICIOUS_SYMBOLS = "@-_~%"

SENSITIVE_VOCABULARY = (
    "login",
    "signin",
    "sign-in",
    "verify",
    "verification",
    "secure",
    "security",
    "account",
    "update",
    "confirm",
    "banking",
    "password",
    "webscr",
    "auth",
    "wallet",
    "recover",
    "unlock",
    "support",
    "billing",
    "invoice",
)


def count_suspicious_symbols(url: URL) -> int:
    """Count occurrences of symbols phishers use for look-alike URLs."""
    text = str(url)
    return sum(text.count(symbol) for symbol in SUSPICIOUS_SYMBOLS)


def count_sensitive_words(url: URL) -> int:
    """Count sensitive vocabulary hits anywhere in the URL string."""
    text = str(url).lower()
    return sum(1 for word in SENSITIVE_VOCABULARY if word in text)


def count_digits(url: URL) -> int:
    return sum(ch.isdigit() for ch in str(url))


@dataclass(frozen=True)
class URLStringStats:
    """Precomputed lexical statistics for one URL string."""

    length: int
    n_dots: int
    n_digits: int
    n_suspicious: int
    n_sensitive: int
    subdomain_labels: int
    path_depth: int
    has_query: bool

    @classmethod
    def of(cls, url: URL) -> "URLStringStats":
        return cls(
            length=len(str(url)),
            n_dots=str(url).count("."),
            n_digits=count_digits(url),
            n_suspicious=count_suspicious_symbols(url),
            n_sensitive=count_sensitive_words(url),
            subdomain_labels=len(url.subdomain.split(".")) if url.subdomain else 0,
            path_depth=url.depth,
            has_query=bool(url.query),
        )
