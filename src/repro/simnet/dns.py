"""Simulated domain registration and resolution.

The registry tracks registered (registrable) domains and the subdomains
allocated under them. It is the ground truth consulted by the WHOIS service
(domain age), hosting providers (subdomain allocation for FWB sites), and
anti-phishing engines (existence checks).

Times are integer minutes relative to the simulation epoch; domains that
pre-date the simulation (the FWB services themselves, benign infrastructure)
carry negative registration times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from ..errors import DomainTakenError, UnknownDomainError
from .url import URL


@dataclass
class DomainRecord:
    """Registration record for one registrable domain.

    Attributes
    ----------
    domain:
        Registrable domain, e.g. ``weebly.com``.
    registered_at:
        Minutes relative to the simulation epoch (negative = before).
    registrant:
        Owner label (an FWB service name, ``attacker``, ``benign``...).
    subdomains:
        Set of fully-qualified subdomain hosts allocated under this domain.
    """

    domain: str
    registered_at: int
    registrant: str
    subdomains: Set[str] = field(default_factory=set)

    def age_minutes(self, now: int) -> int:
        """Domain age at simulation time ``now`` (clamped at zero)."""
        return max(0, now - self.registered_at)

    def age_days(self, now: int) -> float:
        return self.age_minutes(now) / (24 * 60)


class DomainRegistry:
    """Authoritative registry of domains and subdomains.

    The registry answers three questions the ecosystem cares about:

    * Does this host exist? (``resolve``)
    * When was the *registrable* domain registered? (``record_for`` → WHOIS)
    * Which subdomains live under a domain? (FWB abuse-desk views)
    """

    def __init__(self) -> None:
        self._records: Dict[str, DomainRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, domain: str) -> bool:
        return domain.lower() in self._records

    def register(self, domain: str, registered_at: int, registrant: str) -> DomainRecord:
        """Register a new registrable domain.

        Raises :class:`~repro.errors.DomainTakenError` if already present.
        """
        key = domain.lower()
        if key in self._records:
            raise DomainTakenError(f"domain already registered: {domain}")
        record = DomainRecord(domain=key, registered_at=registered_at, registrant=registrant)
        self._records[key] = record
        return record

    def drop(self, domain: str) -> None:
        """Remove a domain entirely (registrar-level takedown)."""
        key = domain.lower()
        if key not in self._records:
            raise UnknownDomainError(f"unknown domain: {domain}")
        del self._records[key]

    def record_for(self, domain: str) -> DomainRecord:
        key = domain.lower()
        try:
            return self._records[key]
        except KeyError:
            raise UnknownDomainError(f"unknown domain: {domain}") from None

    def add_subdomain(self, domain: str, host: str) -> None:
        """Allocate fully-qualified ``host`` under ``domain``.

        FWB site creation calls this; duplicate allocation is an error (two
        users cannot claim the same site name).
        """
        record = self.record_for(domain)
        host = host.lower()
        if not host.endswith("." + record.domain):
            raise UnknownDomainError(
                f"host {host!r} does not belong to domain {record.domain!r}"
            )
        if host in record.subdomains:
            raise DomainTakenError(f"subdomain already allocated: {host}")
        record.subdomains.add(host)

    def remove_subdomain(self, domain: str, host: str) -> None:
        record = self.record_for(domain)
        record.subdomains.discard(host.lower())

    def resolve(self, url: URL) -> Optional[DomainRecord]:
        """Resolve a URL's host to its domain record.

        Returns the record if the registrable domain is registered *and*
        either the host equals the registrable domain or the subdomain has
        been allocated. Returns ``None`` otherwise (NXDOMAIN).
        """
        try:
            record = self._records[url.registered_domain]
        except KeyError:
            return None
        if url.host == record.domain or url.host in record.subdomains:
            return record
        return None

    def domains_of(self, registrant: str) -> List[DomainRecord]:
        return [r for r in self._records.values() if r.registrant == registrant]

    def iter_records(self) -> Iterator[DomainRecord]:
        return iter(self._records.values())
