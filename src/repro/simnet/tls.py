"""Simulated TLS certificates and the Certificate Transparency log.

Two properties from the paper drive this module's design (§3, "Immediate SSL
Certification" and "Increased Difficulty of Discovery"):

* Every site created on an FWB **inherits the FWB's own wildcard EV/OV
  certificate** — the phishing page at ``scam.weebly.com`` presents the same
  certificate (same common name, organization, validity window, fingerprint)
  as ``weebly.com`` itself. Figure 3 of the paper shows a Google Sites
  phishing page sharing YouTube's certificate.
* Because no *new* certificate is issued, FWB phishing sites **never appear
  in Certificate Transparency logs**, defeating the CT-monitoring crawlers
  many anti-phishing pipelines rely on. Self-hosted phishing sites, in
  contrast, obtain fresh DV certificates (Let's Encrypt-style) that are
  logged at issuance.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from ..errors import CertificateError
from .url import URL


class ValidationLevel(str, Enum):
    """Certificate validation tiers, in increasing rigor."""

    DV = "domain-validated"
    OV = "organization-validated"
    EV = "extended-validation"


#: DV certificates (Let's Encrypt / ZeroSSL) are valid for 90 days.
DV_VALIDITY_MINUTES = 90 * 24 * 60
#: OV/EV certificates typically run for a year.
OV_EV_VALIDITY_MINUTES = 365 * 24 * 60


@dataclass(frozen=True)
class Certificate:
    """An issued certificate.

    ``wildcard`` certificates cover every first-level subdomain of
    ``common_name`` (``*.weebly.com``), which is how FWB sites inherit their
    host's certificate.
    """

    common_name: str
    organization: str
    level: ValidationLevel
    issued_at: int
    expires_at: int
    wildcard: bool = False
    issuer: str = "SimCA"

    @property
    def fingerprint(self) -> str:
        """Stable SHA-256 fingerprint of the certificate's identity fields."""
        payload = "|".join(
            [
                self.common_name,
                self.organization,
                self.level.value,
                str(self.issued_at),
                str(self.expires_at),
                str(self.wildcard),
                self.issuer,
            ]
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def covers(self, host: str) -> bool:
        """Does this certificate authenticate ``host``?"""
        host = host.lower()
        if host == self.common_name:
            return True
        if self.wildcard and host.endswith("." + self.common_name):
            # A classic wildcard covers one additional label only.
            extra = host[: -(len(self.common_name) + 1)]
            return "." not in extra
        return False

    def valid_at(self, now: int) -> bool:
        return self.issued_at <= now < self.expires_at


@dataclass
class CTLogEntry:
    """One Certificate Transparency log entry."""

    certificate: Certificate
    logged_at: int


class CTLog:
    """Append-only Certificate Transparency log.

    Anti-phishing CT monitors scan entries appended since their last poll for
    suspicious common names. FWB phishing sites never generate entries.
    """

    def __init__(self) -> None:
        self._entries: List[CTLogEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, certificate: Certificate, now: int) -> None:
        self._entries.append(CTLogEntry(certificate=certificate, logged_at=now))

    def entries_since(self, since: int) -> List[CTLogEntry]:
        return [e for e in self._entries if e.logged_at >= since]

    def entries_from(self, index: int) -> List[CTLogEntry]:
        """Entries appended at or after position ``index`` (monitor cursor).

        The log is append-only, so index-based cursors never miss an entry
        even when certificates are back-dated relative to wall-clock polls.
        """
        return list(self._entries[max(index, 0):])

    def contains_host(self, host: str) -> bool:
        """Is there an entry whose common name is exactly ``host``?

        Wildcard parents do **not** count: the point of the FWB evasion is
        that the phishing host itself never shows up.
        """
        host = host.lower()
        return any(e.certificate.common_name == host for e in self._entries)


class CertificateAuthority:
    """Issues certificates and (for non-wildcard reuse) logs them to CT.

    ``issue_dv`` mimics Let's Encrypt: instant issuance, 90-day validity,
    logged to CT. ``issue_shared`` creates the long-lived wildcard OV/EV
    certificates the FWB services deploy; these are logged once — for the FWB
    itself — and then silently cover every customer subdomain.
    """

    def __init__(self, ct_log: Optional[CTLog] = None) -> None:
        self.ct_log = ct_log if ct_log is not None else CTLog()
        self._by_host: Dict[str, Certificate] = {}

    def issue_dv(self, host: str, now: int, organization: str = "") -> Certificate:
        cert = Certificate(
            common_name=host.lower(),
            organization=organization or host.lower(),
            level=ValidationLevel.DV,
            issued_at=now,
            expires_at=now + DV_VALIDITY_MINUTES,
            wildcard=False,
            issuer="SimEncrypt",
        )
        self._by_host[cert.common_name] = cert
        self.ct_log.append(cert, now)
        return cert

    def issue_shared(
        self,
        domain: str,
        organization: str,
        now: int,
        level: ValidationLevel = ValidationLevel.OV,
    ) -> Certificate:
        if level is ValidationLevel.DV:
            raise CertificateError("shared FWB certificates are OV or EV")
        cert = Certificate(
            common_name=domain.lower(),
            organization=organization,
            level=level,
            issued_at=now,
            expires_at=now + OV_EV_VALIDITY_MINUTES,
            wildcard=True,
        )
        self._by_host[cert.common_name] = cert
        self.ct_log.append(cert, now)
        return cert

    def certificate_for(self, url: URL) -> Optional[Certificate]:
        """The certificate a TLS client would be presented for ``url``.

        Exact host match wins; otherwise walk up the label chain looking for
        a covering wildcard (the FWB inheritance path).
        """
        host = url.host
        cert = self._by_host.get(host)
        if cert is not None:
            return cert
        labels = host.split(".")
        for i in range(1, len(labels) - 1):
            parent = ".".join(labels[i:])
            candidate = self._by_host.get(parent)
            if candidate is not None and candidate.covers(host):
                return candidate
        return None
