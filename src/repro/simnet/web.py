"""The assembled simulated web.

:class:`Web` wires the registry, certificate authority, CT log, WHOIS, the
17 FWB hosting providers, a self-hosting provider, and the search index into
one object the rest of the library (site generators, browser, ecosystem,
simulation) talks to.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..errors import ConfigError
from .dns import DomainRegistry
from .fwb import FWBService, default_fwb_services
from .hosting import FWBHostingProvider, HostedSite, HostingProvider, SelfHostingProvider
from .search import SearchIndex
from .tls import CertificateAuthority, CTLog
from .url import URL
from .whois import WhoisService


class Web:
    """Top-level container for the simulated internet.

    Parameters
    ----------
    services:
        FWB service profiles; defaults to the paper's 17.
    """

    def __init__(self, services: Optional[List[FWBService]] = None) -> None:
        self.services = list(services) if services is not None else default_fwb_services()
        if not self.services:
            raise ConfigError("at least one FWB service is required")
        self.registry = DomainRegistry()
        self.ct_log = CTLog()
        self.ca = CertificateAuthority(ct_log=self.ct_log)
        self.whois = WhoisService(self.registry)
        self.search_index = SearchIndex()

        self.fwb_providers: Dict[str, FWBHostingProvider] = {}
        for service in self.services:
            provider = FWBHostingProvider(service, self.registry, self.ca)
            provider.ensure_registered()
            self.fwb_providers[service.name] = provider
        self.self_hosting = SelfHostingProvider(self.registry, self.ca)
        self._domain_to_fwb: Dict[str, FWBHostingProvider] = {
            p.service.domain: p for p in self.fwb_providers.values()
        }

    # -- lookup ---------------------------------------------------------------

    def provider_for(self, url: URL) -> Optional[HostingProvider]:
        fwb = self._domain_to_fwb.get(url.registered_domain)
        if fwb is not None:
            return fwb
        if self.self_hosting.site_for_host(url.host) is not None:
            return self.self_hosting
        return None

    def fwb_for(self, url: URL) -> Optional[FWBService]:
        """Which FWB service hosts this URL, if any (SLD attribution)."""
        provider = self._domain_to_fwb.get(url.registered_domain)
        if provider is not None and url.has_subdomain:
            return provider.service
        return None

    def site_for(self, url: URL) -> Optional[HostedSite]:
        provider = self.provider_for(url)
        if provider is None:
            return None
        return provider.site_for_host(url.host)

    def iter_sites(self) -> Iterator[HostedSite]:
        for provider in self.fwb_providers.values():
            yield from provider.iter_sites()
        yield from self.self_hosting.iter_sites()

    # -- takedown -------------------------------------------------------------

    def take_down(self, url: URL, now: int) -> bool:
        provider = self.provider_for(url)
        if provider is None:
            return False
        removed = provider.take_down(url.host, now)
        if removed:
            self.search_index.remove(url)
        return removed

    def is_active(self, url: URL, now: int) -> bool:
        site = self.site_for(url)
        return site is not None and site.is_active(now)
