"""Simulated WHOIS service.

Anti-phishing heuristics weight *domain age* heavily (paper §3, "Longer
Domain Age"): self-hosted phishing domains are days old, while FWB-hosted
attacks inherit the age of the FWB's own domain (median 13.7 **years** in the
paper's dataset vs. 71 **days** for self-hosted PhishTank URLs).

The WHOIS service exposes exactly that semantics: a query for any host
returns the record of its *registrable* domain, so a lookup of
``scam-page.weebly.com`` reports Weebly's multi-year-old registration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .dns import DomainRegistry
from .url import URL, parse_url


@dataclass(frozen=True)
class WhoisRecord:
    """Response to a WHOIS query."""

    queried_host: str
    registered_domain: str
    registrant: str
    registered_at: int
    age_minutes: int

    @property
    def age_days(self) -> float:
        return self.age_minutes / (24 * 60)

    @property
    def age_years(self) -> float:
        return self.age_days / 365.25


class WhoisService:
    """WHOIS lookups backed by the simulated :class:`DomainRegistry`."""

    def __init__(self, registry: DomainRegistry) -> None:
        self._registry = registry

    def lookup(self, url_or_host, now: int) -> Optional[WhoisRecord]:
        """Look up the WHOIS record for a URL or bare hostname.

        Returns ``None`` for unregistered domains (mirroring a WHOIS miss).
        """
        if isinstance(url_or_host, URL):
            url = url_or_host
        else:
            host = str(url_or_host)
            if "://" not in host:
                host = "https://" + host
            url = parse_url(host)
        try:
            record = self._registry.record_for(url.registered_domain)
        except Exception:
            return None
        return WhoisRecord(
            queried_host=url.host,
            registered_domain=record.domain,
            registrant=record.registrant,
            registered_at=record.registered_at,
            age_minutes=record.age_minutes(now),
        )

    def domain_age_days(self, url_or_host, now: int) -> Optional[float]:
        """Convenience: the age in days, or ``None`` if unregistered."""
        record = self.lookup(url_or_host, now)
        return None if record is None else record.age_days
