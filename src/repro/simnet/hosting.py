"""Hosting providers and hosted sites.

Two hosting models exist in the study:

* **FWB hosting** (:class:`FWBHostingProvider`): the attacker or a benign
  user claims a free subdomain under the service's domain. The site
  instantly inherits the service's shared wildcard certificate (no CT-log
  entry), the service's domain age, and — for most services — a ``.com``
  TLD. The provider's abuse desk follows the service's
  :class:`~repro.simnet.fwb.FWBPolicy` when phishing is reported.
* **Self-hosting** (:class:`SelfHostingProvider`): the attacker registers a
  fresh domain (typically on a cheap TLD), obtains a DV certificate — which
  *is* CT-logged — and serves the kit there. Domain age is ~0 at attack
  time, and registrars take these down comparatively quickly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional

from ..errors import DomainTakenError, FetchError, SiteRemovedError, UnknownDomainError
from .dns import DomainRegistry
from .fwb import FWBService
from .tls import Certificate, CertificateAuthority
from .url import URL, parse_url


class SiteStatus(str, Enum):
    ACTIVE = "active"
    REMOVED = "removed"
    ABANDONED = "abandoned"


@dataclass
class FileAsset:
    """A downloadable file hosted by a site (the §5.5 drive-by vector)."""

    filename: str
    malicious: bool
    #: Number of VirusTotal engines that flag the file when scanned; the
    #: paper marks files with >= 4 detections as malware.
    vt_detections: int = 0
    size_bytes: int = 0


@dataclass
class HostedSite:
    """One website: a bundle of pages and file assets under a single host."""

    root_url: URL
    created_at: int
    owner: str
    pages: Dict[str, str] = field(default_factory=dict)
    files: Dict[str, FileAsset] = field(default_factory=dict)
    status: SiteStatus = SiteStatus.ACTIVE
    removed_at: Optional[int] = None
    #: Free-form labels the generators attach (is_phishing, brand, variant...).
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def host(self) -> str:
        return self.root_url.host

    def add_page(self, path: str, html: str) -> None:
        if not path.startswith("/"):
            raise FetchError(f"page path must start with '/': {path!r}")
        self.pages[path] = html

    def add_file(self, path: str, asset: FileAsset) -> None:
        if not path.startswith("/"):
            raise FetchError(f"file path must start with '/': {path!r}")
        self.files[path] = asset

    def is_active(self, now: int) -> bool:
        return self.status is SiteStatus.ACTIVE or (
            self.removed_at is not None and now < self.removed_at
        )

    def remove(self, now: int, status: SiteStatus = SiteStatus.REMOVED) -> None:
        if self.status is SiteStatus.ACTIVE:
            self.status = status
            self.removed_at = now

    def page_for(self, url: URL) -> Optional[str]:
        return self.pages.get(url.path)

    def file_for(self, url: URL) -> Optional[FileAsset]:
        return self.files.get(url.path)


class HostingProvider:
    """Base class: a collection of hosted sites keyed by host name."""

    def __init__(self, name: str, registry: DomainRegistry) -> None:
        self.name = name
        self.registry = registry
        self._sites: Dict[str, HostedSite] = {}

    def __len__(self) -> int:
        return len(self._sites)

    def site_for_host(self, host: str) -> Optional[HostedSite]:
        return self._sites.get(host.lower())

    def iter_sites(self) -> Iterator[HostedSite]:
        return iter(self._sites.values())

    def take_down(self, host: str, now: int) -> bool:
        """Remove a site; returns ``True`` if it was active."""
        site = self._sites.get(host.lower())
        if site is None or not site.is_active(now):
            return False
        site.remove(now)
        return True

    def _store(self, site: HostedSite) -> HostedSite:
        key = site.host
        if key in self._sites and self._sites[key].is_active(site.created_at):
            raise DomainTakenError(f"host already serving a site: {key}")
        self._sites[key] = site
        return site


class FWBHostingProvider(HostingProvider):
    """Hosting provider for one FWB service.

    ``ensure_registered`` must run once (the world-builder does it) so the
    service's apex domain, shared certificate and WHOIS record exist before
    customer sites are created.
    """

    def __init__(
        self,
        service: FWBService,
        registry: DomainRegistry,
        ca: CertificateAuthority,
    ) -> None:
        super().__init__(name=service.name, registry=registry)
        self.service = service
        self.ca = ca
        self.shared_certificate: Optional[Certificate] = None

    def ensure_registered(self) -> None:
        if self.service.domain not in self.registry:
            self.registry.register(
                self.service.domain,
                registered_at=self.service.registered_at,
                registrant=self.service.name,
            )
        if self.shared_certificate is None:
            self.shared_certificate = self.ca.issue_shared(
                domain=self.service.domain,
                organization=self.service.organization,
                now=self.service.registered_at,
                level=self.service.cert_level,
            )

    def create_site(self, site_name: str, owner: str, now: int) -> HostedSite:
        """Claim ``site_name`` and return the (empty) hosted site.

        No certificate is issued and no CT entry appears: the site rides the
        provider's shared wildcard certificate.
        """
        if self.shared_certificate is None:
            raise UnknownDomainError(
                f"provider {self.name} not registered; call ensure_registered()"
            )
        host = self.service.site_host(site_name)
        self.registry.add_subdomain(self.service.domain, host)
        site = HostedSite(
            root_url=parse_url(f"https://{host}/"),
            created_at=now,
            owner=owner,
        )
        site.metadata["fwb"] = self.service.name
        return self._store(site)

    def take_down(self, host: str, now: int) -> bool:
        removed = super().take_down(host, now)
        if removed:
            self.registry.remove_subdomain(self.service.domain, host)
        return removed


class SelfHostingProvider(HostingProvider):
    """Attacker- (or user-) registered standalone domains.

    Each ``create_site`` registers a brand-new domain and requests a DV
    certificate, which lands in the CT log immediately — the discovery
    channel FWB attacks avoid.
    """

    #: Cheap TLDs attackers favour for throwaway phishing domains (§6).
    CHEAP_TLDS = ("xyz", "top", "live", "online", "site", "store", "club", "info")

    def __init__(self, registry: DomainRegistry, ca: CertificateAuthority) -> None:
        super().__init__(name="self-hosted", registry=registry)
        self.ca = ca

    def create_site(
        self,
        domain: str,
        owner: str,
        now: int,
        registered_at: Optional[int] = None,
        https: bool = True,
    ) -> HostedSite:
        """Register ``domain`` outright and return its hosted site.

        ``registered_at`` defaults to ``now`` (fresh registration); benign
        long-lived sites pass an older timestamp.
        """
        self.registry.register(
            domain, registered_at=now if registered_at is None else registered_at,
            registrant=owner,
        )
        scheme = "https" if https else "http"
        if https:
            self.ca.issue_dv(domain, now=now, organization=owner)
        site = HostedSite(
            root_url=parse_url(f"{scheme}://{domain}/"),
            created_at=now,
            owner=owner,
        )
        site.metadata["fwb"] = None
        return self._store(site)

    def take_down(self, host: str, now: int) -> bool:
        removed = super().take_down(host, now)
        if removed and host in self.registry:
            self.registry.drop(host)
        return removed
