"""Statistical utilities shared by the table/figure builders."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError


def median_or_none(values: Sequence[float]) -> Optional[float]:
    """Median of a possibly-empty sequence."""
    values = [v for v in values if v is not None]
    if not values:
        return None
    return float(np.median(values))


def coverage_fraction(offsets: Iterable[Optional[int]]) -> float:
    """Fraction of non-``None`` entries (detected / removed within window)."""
    offsets = list(offsets)
    if not offsets:
        return 0.0
    return sum(1 for o in offsets if o is not None) / len(offsets)


def empirical_cdf(values: Sequence[float], grid: Sequence[float]) -> List[float]:
    """P(X <= g) for each grid point ``g``."""
    data = np.sort(np.asarray(values, dtype=np.float64))
    if data.size == 0:
        return [0.0 for _ in grid]
    return [float(np.searchsorted(data, g, side="right") / data.size) for g in grid]


def cohens_kappa(labels_a: Sequence[int], labels_b: Sequence[int]) -> float:
    """Cohen's kappa inter-rater agreement for two label sequences.

    The paper reports κ = 0.78 for its two coders over the 5K sample (§3).
    """
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if a.shape != b.shape or a.size == 0:
        raise ConfigError("label sequences must be equal-length and non-empty")
    categories = np.union1d(np.unique(a), np.unique(b))
    n = a.size
    observed = float(np.mean(a == b))
    expected = 0.0
    for category in categories:
        expected += float(np.mean(a == category)) * float(np.mean(b == category))
    if expected >= 1.0:
        return 1.0
    return (observed - expected) / (1.0 - expected)


def survival_at(
    offsets: Sequence[Optional[int]], horizon_minutes: float
) -> float:
    """Fraction still *undetected/unremoved* at ``horizon_minutes``."""
    offsets = list(offsets)
    if not offsets:
        return 1.0
    hit = sum(1 for o in offsets if o is not None and o <= horizon_minutes)
    return 1.0 - hit / len(offsets)


def min_max(values: Sequence[Optional[int]]) -> Tuple[Optional[int], Optional[int]]:
    """(min, max) over non-``None`` entries."""
    present = [v for v in values if v is not None]
    if not present:
        return None, None
    return min(present), max(present)


def bootstrap_ci(
    values: Sequence[float],
    statistic=np.mean,
    confidence: float = 0.95,
    n_resamples: int = 1000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for any statistic.

    Used to put uncertainty bands on scaled-down campaign measurements —
    a 1/40-scale run's coverage estimate carries sampling error the paper's
    31K-URL study does not.
    """
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ConfigError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ConfigError("confidence must lie in (0, 1)")
    rng = np.random.default_rng(seed)
    stats = np.empty(n_resamples)
    for i in range(n_resamples):
        resample = data[rng.integers(0, data.size, size=data.size)]
        stats[i] = statistic(resample)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(stats, alpha)),
        float(np.quantile(stats, 1.0 - alpha)),
    )


def coverage_ci(
    offsets: Sequence[Optional[int]],
    confidence: float = 0.95,
    n_resamples: int = 1000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Bootstrap CI on a coverage fraction (None = not detected)."""
    indicator = [0.0 if offset is None else 1.0 for offset in offsets]
    return bootstrap_ci(
        indicator, statistic=np.mean, confidence=confidence,
        n_resamples=n_resamples, seed=seed,
    )
