"""Plain-text rendering of tables and figures.

The benchmark harness prints these so a run's output reads like the paper's
evaluation section.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .coverage import CoverageStats
from .figures import SeriesFigure
from .tables import Table1Row, Table2Row, Table3Row, Table4Row


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width text table."""
    columns = [list(column) for column in zip(headers, *rows)]
    widths = [max(len(cell) for cell in column) for column in columns]
    def line(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def render_table1(rows: Sequence[Table1Row]) -> str:
    body = [
        [
            row.fwb,
            str(row.n_sites),
            f"{row.median_similarity * 100:.1f}%",
            "n/a" if row.paper_similarity is None else f"{row.paper_similarity * 100:.1f}%",
        ]
        for row in rows
    ]
    return format_table(
        ["FWB", "# sites", "measured median sim", "paper median sim"], body
    )


def render_table2(rows: Sequence[Table2Row]) -> str:
    body = [
        [
            row.model,
            f"{row.accuracy:.2f}",
            f"{row.precision:.2f}",
            f"{row.recall:.2f}",
            f"{row.f1:.2f}",
            f"{row.total_time_seconds:.2f}",
            f"{row.median_runtime_seconds * 1000:.1f}ms",
        ]
        for row in rows
    ]
    return format_table(
        ["Model", "Acc", "Prec", "Rec", "F1", "Total(s)", "Median"], body
    )


def render_table3(rows: Sequence[Table3Row]) -> str:
    body = [
        [
            row.entity,
            f"{row.fwb.coverage * 100:.1f}%",
            row.fwb.min_max_hhmm,
            row.fwb.median_hhmm,
            f"{row.self_hosted.coverage * 100:.1f}%",
            row.self_hosted.min_max_hhmm,
            row.self_hosted.median_hhmm,
        ]
        for row in rows
    ]
    return format_table(
        [
            "Method", "FWB cov", "FWB min/max", "FWB median",
            "Self cov", "Self min/max", "Self median",
        ],
        body,
    )


def render_table4(rows: Sequence[Table4Row]) -> str:
    headers = ["FWB", "URLs"]
    entities = list(rows[0].entities) if rows else []
    for entity in entities:
        headers += [f"{entity} cov", f"{entity} med"]
    body = []
    for row in rows:
        cells = [row.fwb, str(row.n_urls)]
        for entity in entities:
            stats: CoverageStats = row.entities[entity]
            cells += [f"{stats.coverage * 100:.1f}%", stats.median_hhmm]
        body.append(cells)
    return format_table(headers, body)


def render_figure(figure: SeriesFigure, precision: int = 3) -> str:
    headers = [figure.x_label] + list(figure.series)
    body = []
    for index, x in enumerate(figure.x_values):
        row = [str(x)]
        for name in figure.series:
            value = figure.series[name][index]
            row.append(f"{value:.{precision}f}")
        body.append(row)
    return figure.title + "\n" + format_table(headers, body)


def render_rows(rows) -> str:
    """Dispatch on row type."""
    if not rows:
        return "(empty)"
    first = rows[0]
    if isinstance(first, Table1Row):
        return render_table1(rows)
    if isinstance(first, Table2Row):
        return render_table2(rows)
    if isinstance(first, Table3Row):
        return render_table3(rows)
    if isinstance(first, Table4Row):
        return render_table4(rows)
    if isinstance(rows, SeriesFigure):
        return render_figure(rows)
    raise TypeError(f"cannot render rows of type {type(first).__name__}")
