"""Builders for the paper's Tables 1-4."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.classifier import FreePhishClassifier
from ..core.monitor import UrlTimeline
from ..core.preprocess import ProcessedPage
from ..ml import classification_summary, train_test_split
from ..simnet.web import Web
from ..sitegen.legitimate import LegitimateSiteGenerator
from ..sitegen.phishing import PhishingSiteGenerator
from ..webdoc.similarity import median_pairwise_similarity
from .coverage import (
    CoverageStats,
    ENTITY_EXTRACTORS,
    coverage_stats,
    group_by_fwb,
    split_fwb_self,
)

# --------------------------------------------------------------------------
# Table 1: code similarity between FWB phishing and benign websites
# --------------------------------------------------------------------------

#: The six services the paper reports, with its measured medians.
TABLE1_PAPER_VALUES: Dict[str, float] = {
    "weebly": 0.794,
    "000webhost": 0.681,
    "blogspot": 0.638,
    "google_sites": 0.724,
    "wix": 0.637,
    "github_io": 0.374,
}


@dataclass(frozen=True)
class Table1Row:
    fwb: str
    n_sites: int
    median_similarity: float
    paper_similarity: Optional[float]


def build_table1(
    seed: int = 21,
    sites_per_class: int = 12,
    max_pairs: int = 60,
    services: Sequence[str] = tuple(TABLE1_PAPER_VALUES),
) -> List[Table1Row]:
    """Regenerate Table 1: per-FWB benign↔phishing code similarity."""
    rng = np.random.default_rng(seed)
    web = Web()
    phishing_gen = PhishingSiteGenerator()
    benign_gen = LegitimateSiteGenerator()
    rows: List[Table1Row] = []
    for name in services:
        provider = web.fwb_providers[name]
        phishing_pages = [
            phishing_gen.create_site(provider, now=0, rng=rng).pages["/"]
            for _ in range(sites_per_class)
        ]
        benign_pages = [
            benign_gen.create_fwb_site(provider, now=0, rng=rng).pages["/"]
            for _ in range(sites_per_class)
        ]
        similarity = median_pairwise_similarity(
            phishing_pages, benign_pages, rng, max_pairs=max_pairs
        )
        rows.append(
            Table1Row(
                fwb=name,
                n_sites=2 * sites_per_class,
                median_similarity=similarity,
                paper_similarity=TABLE1_PAPER_VALUES.get(name),
            )
        )
    return rows


# --------------------------------------------------------------------------
# Table 2: model comparison
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Table2Row:
    model: str
    accuracy: float
    precision: float
    recall: float
    f1: float
    total_time_seconds: float
    median_runtime_seconds: float


def _evaluate_detector(
    name: str,
    detector,
    train_pages: List[ProcessedPage],
    train_labels: np.ndarray,
    test_pages: List[ProcessedPage],
    test_labels: np.ndarray,
) -> Table2Row:
    detector.fit_pages(train_pages, train_labels)
    runtimes: List[float] = []
    predictions: List[int] = []
    # Table 2's runtime column times *real* inference; it is measurement
    # metadata, not simulated state, so the wall-clock rule is waived.
    total_start = time.perf_counter()  # reprolint: disable=RP101,RP105 — times real inference for Table 2
    for page in test_pages:
        start = time.perf_counter()  # reprolint: disable=RP101,RP105 — times real inference for Table 2
        predictions.append(int(detector.predict_page(page)))
        runtimes.append(time.perf_counter() - start)  # reprolint: disable=RP101,RP105 — times real inference for Table 2
    total = time.perf_counter() - total_start  # reprolint: disable=RP101,RP105 — times real inference for Table 2
    summary = classification_summary(test_labels, np.asarray(predictions))
    return Table2Row(
        model=name,
        accuracy=summary.accuracy,
        precision=summary.precision,
        recall=summary.recall,
        f1=summary.f1,
        total_time_seconds=total,
        median_runtime_seconds=float(np.median(runtimes)),
    )


class _OurModelAdapter:
    """Gives FreePhishClassifier the detector interface for Table 2."""

    def __init__(self, **kwargs) -> None:
        self.classifier = FreePhishClassifier(**kwargs)

    def fit_pages(self, pages, labels):
        self.classifier.fit_pages(pages, labels)
        return self

    def predict_page(self, page) -> int:
        return self.classifier.classify_page(page).label


def build_table2(
    pages: Sequence[ProcessedPage],
    labels: np.ndarray,
    web: Web,
    test_size: float = 0.3,
    seed: int = 7,
    n_estimators: int = 40,
    models: Optional[Sequence[str]] = None,
) -> List[Table2Row]:
    """Regenerate Table 2 over a featurized ground-truth corpus.

    ``models`` selects a subset of
    ``("visualphishnet", "phishintention", "urlnet", "stackmodel", "ours")``.
    """
    from ..baselines import (
        BaseStackModelDetector,
        PhishIntentionDetector,
        URLNetDetector,
        VisualPhishNetDetector,
    )
    from ..simnet.browser import Browser

    wanted = tuple(models) if models is not None else (
        "visualphishnet", "phishintention", "urlnet", "stackmodel", "ours",
    )
    indices = np.arange(len(pages))
    train_idx, test_idx, train_labels, test_labels = train_test_split(
        indices.reshape(-1, 1), np.asarray(labels), test_size=test_size,
        random_state=seed,
    )
    train_pages = [pages[int(i)] for i in train_idx.ravel()]
    test_pages = [pages[int(i)] for i in test_idx.ravel()]

    factories: Dict[str, Callable[[], object]] = {
        "visualphishnet": lambda: VisualPhishNetDetector(random_state=seed),
        "phishintention": lambda: PhishIntentionDetector(
            Browser(web), random_state=seed
        ),
        "urlnet": lambda: URLNetDetector(random_state=seed),
        "stackmodel": lambda: BaseStackModelDetector(
            n_estimators=n_estimators, random_state=seed
        ),
        "ours": lambda: _OurModelAdapter(
            n_estimators=n_estimators, random_state=seed
        ),
    }
    display = {
        "visualphishnet": "VisualPhishNet",
        "phishintention": "PhishIntention",
        "urlnet": "URLNet",
        "stackmodel": "Base StackModel",
        "ours": "Our Model",
    }
    rows = []
    for key in wanted:
        rows.append(
            _evaluate_detector(
                display[key], factories[key](),
                train_pages, train_labels, test_pages, test_labels,
            )
        )
    return rows


# --------------------------------------------------------------------------
# Table 3: blocklisting performance, FWB vs self-hosted
# --------------------------------------------------------------------------

TABLE3_ENTITIES = ("phishtank", "openphish", "gsb", "ecrimex", "platform", "domain")


@dataclass(frozen=True)
class Table3Row:
    entity: str
    fwb: CoverageStats
    self_hosted: CoverageStats


def build_table3(timelines: Sequence[UrlTimeline]) -> List[Table3Row]:
    """Regenerate Table 3 from resolved campaign timelines."""
    groups = split_fwb_self(timelines)
    rows = []
    for entity in TABLE3_ENTITIES:
        rows.append(
            Table3Row(
                entity=entity,
                fwb=coverage_stats(groups["fwb"], entity),
                self_hosted=coverage_stats(groups["self_hosted"], entity),
            )
        )
    return rows


# --------------------------------------------------------------------------
# Table 4: per-FWB coverage and response times
# --------------------------------------------------------------------------

TABLE4_ENTITIES = ("domain", "platform", "phishtank", "openphish", "gsb", "ecrimex")


@dataclass(frozen=True)
class Table4Row:
    fwb: str
    n_urls: int
    entities: Dict[str, CoverageStats]


def build_table4(timelines: Sequence[UrlTimeline]) -> List[Table4Row]:
    """Regenerate Table 4 from resolved campaign timelines."""
    rows = []
    for fwb_name, group in sorted(
        group_by_fwb(timelines).items(), key=lambda kv: -len(kv[1])
    ):
        rows.append(
            Table4Row(
                fwb=fwb_name,
                n_urls=len(group),
                entities={
                    entity: coverage_stats(group, entity)
                    for entity in TABLE4_ENTITIES
                },
            )
        )
    return rows
