"""Measurement post-processing: the paper's tables and figures.

:mod:`repro.analysis.coverage` computes coverage/response-time statistics
from URL timelines; :mod:`repro.analysis.tables` builds Tables 1-4;
:mod:`repro.analysis.figures` builds the series behind Figures 1 and 5-9;
:mod:`repro.analysis.report` renders everything as text.
"""

from .stats import (
    cohens_kappa,
    empirical_cdf,
    median_or_none,
    coverage_fraction,
)
from .coverage import CoverageStats, coverage_stats, coverage_over_time
from .tables import (
    Table1Row,
    Table2Row,
    Table3Row,
    Table4Row,
    build_table1,
    build_table2,
    build_table3,
    build_table4,
)
from .figures import (
    build_fig1,
    build_fig5,
    build_fig6,
    build_fig7,
    build_fig8,
    build_fig9,
)
from .characterization import CharacterizationReport, characterize
from .report import format_table, render_rows

__all__ = [
    "cohens_kappa",
    "empirical_cdf",
    "median_or_none",
    "coverage_fraction",
    "CoverageStats",
    "coverage_stats",
    "coverage_over_time",
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "Table4Row",
    "build_table1",
    "build_table2",
    "build_table3",
    "build_table4",
    "build_fig1",
    "build_fig5",
    "build_fig6",
    "build_fig7",
    "build_fig8",
    "build_fig9",
    "CharacterizationReport",
    "characterize",
    "format_table",
    "render_rows",
]
