"""Export measurement artefacts to CSV and JSON.

The paper releases its dataset on request; this module is the library's
equivalent: campaign timelines, tables, and figure series serialize to
plain files for downstream analysis (pandas, R, spreadsheets).
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Iterable, List, Sequence, Union

from ..core.monitor import UrlTimeline
from .coverage import CoverageStats
from .figures import SeriesFigure
from .tables import Table1Row, Table2Row, Table3Row, Table4Row

PathLike = Union[str, Path]


def timelines_to_rows(timelines: Sequence[UrlTimeline]) -> List[dict]:
    """Flatten timelines into one dict per URL (CSV-friendly)."""
    rows = []
    for timeline in timelines:
        row = {
            "url": timeline.url,
            "platform": timeline.platform,
            "fwb": timeline.fwb_name or "",
            "hosting": "fwb" if timeline.is_fwb else "self_hosted",
            "first_seen_min": timeline.first_seen,
            "site_removal_min": timeline.site_removal_offset,
            "post_removal_min": timeline.post_removal_offset,
            "vt_final": timeline.vt_final(),
        }
        for name, offset in timeline.blocklist_offsets.items():
            row[f"{name}_min"] = offset
        rows.append(row)
    return rows


def write_timelines_csv(timelines: Sequence[UrlTimeline], path: PathLike) -> Path:
    """Write one CSV row per monitored URL; returns the path written."""
    rows = timelines_to_rows(timelines)
    path = Path(path)
    if not rows:
        path.write_text("")
        return path
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
        writer.writeheader()
        for row in rows:
            writer.writerow({k: ("" if v is None else v) for k, v in row.items()})
    return path


def _coverage_dict(stats: CoverageStats) -> dict:
    return {
        "n_urls": stats.n_urls,
        "coverage": stats.coverage,
        "median_minutes": stats.median_minutes,
        "min_minutes": stats.min_minutes,
        "max_minutes": stats.max_minutes,
    }


def table_to_dicts(rows: Sequence) -> List[dict]:
    """Serialize any Table1-4 row list into JSON-ready dicts."""
    out: List[dict] = []
    for row in rows:
        if isinstance(row, Table3Row):
            out.append({
                "entity": row.entity,
                "fwb": _coverage_dict(row.fwb),
                "self_hosted": _coverage_dict(row.self_hosted),
            })
        elif isinstance(row, Table4Row):
            out.append({
                "fwb": row.fwb,
                "n_urls": row.n_urls,
                "entities": {
                    name: _coverage_dict(stats)
                    for name, stats in row.entities.items()
                },
            })
        elif is_dataclass(row):
            out.append(asdict(row))
        else:
            raise TypeError(f"cannot export row of type {type(row).__name__}")
    return out


def write_table_json(rows: Sequence, path: PathLike) -> Path:
    path = Path(path)
    path.write_text(json.dumps(table_to_dicts(rows), indent=2))
    return path


def figure_to_dict(figure: SeriesFigure) -> dict:
    return {
        "title": figure.title,
        "x_label": figure.x_label,
        "x_values": list(figure.x_values),
        "series": {name: list(values) for name, values in figure.series.items()},
    }


def write_figure_json(figure: SeriesFigure, path: PathLike) -> Path:
    path = Path(path)
    path.write_text(json.dumps(figure_to_dict(figure), indent=2))
    return path


def write_figure_csv(figure: SeriesFigure, path: PathLike) -> Path:
    """Figure series as columns, x values as the first column."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([figure.x_label, *figure.series.keys()])
        for index, x in enumerate(figure.x_values):
            writer.writerow(
                [x, *(figure.series[name][index] for name in figure.series)]
            )
    return path
