"""Builders for the series behind Figures 1 and 5-9.

Each builder returns plain data structures (labels + numeric series) that
the benchmarks print and tests assert on; no plotting dependency.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.monitor import UrlTimeline
from ..sim.scenario import HistoricalScenario, QuarterSeries
from .coverage import coverage_over_time, split_fwb_self
from .stats import empirical_cdf

#: Hour grid used by the Figure 6 / Figure 9 curves (up to one week).
HOUR_GRID: Tuple[float, ...] = (1, 3, 6, 12, 16, 24, 48, 72, 96, 120, 144, 168)


@dataclass
class SeriesFigure:
    """A generic labelled multi-series figure."""

    title: str
    x_label: str
    x_values: List
    series: Dict[str, List[float]] = field(default_factory=dict)


# -- Figure 1: historical distribution ------------------------------------------


def build_fig1(scenario: Optional[HistoricalScenario] = None) -> SeriesFigure:
    """Quarterly FWB phishing counts on Twitter/Facebook, 2020-2022."""
    scenario = scenario if scenario is not None else HistoricalScenario()
    quarters: QuarterSeries = scenario.generate()
    figure = SeriesFigure(
        title="Fig.1 FWB phishing shared on Twitter and Facebook (Jan 2020 - Aug 2022)",
        x_label="quarter",
        x_values=list(quarters.labels),
    )
    figure.series["twitter"] = [float(v) for v in quarters.twitter]
    figure.series["facebook"] = [float(v) for v in quarters.facebook]
    return figure


# -- Figure 5: targeted organizations ---------------------------------------------


def build_fig5(
    brand_slugs: Sequence[Optional[str]],
    top_n: int = 15,
) -> SeriesFigure:
    """Histogram of the most frequently imitated brands."""
    counts = Counter(slug for slug in brand_slugs if slug)
    top = counts.most_common(top_n)
    figure = SeriesFigure(
        title="Fig.5 Targeted organizations",
        x_label="brand",
        x_values=[slug for slug, _count in top],
    )
    figure.series["attacks"] = [float(count) for _slug, count in top]
    figure.series["unique_brands_total"] = [float(len(counts))] * len(top)
    return figure


# -- Figure 6: blocklist coverage over time -----------------------------------------


def build_fig6(timelines: Sequence[UrlTimeline]) -> SeriesFigure:
    """Blocklist coverage curves, FWB vs self-hosted (hours since seen)."""
    groups = split_fwb_self(timelines)
    figure = SeriesFigure(
        title="Fig.6 Coverage and speed of blocklists",
        x_label="hours",
        x_values=list(HOUR_GRID),
    )
    for blocklist in ("gsb", "phishtank", "openphish", "ecrimex"):
        for kind, subset in groups.items():
            figure.series[f"{blocklist}_{kind}"] = coverage_over_time(
                subset, blocklist, HOUR_GRID
            )
    return figure


# -- Figure 7: cumulative distribution of engine detections --------------------------


def build_fig7(
    timelines: Sequence[UrlTimeline],
    max_detections: int = 30,
) -> SeriesFigure:
    """CDF of one-week VirusTotal detections per hosting type + platform."""
    grid = list(range(0, max_detections + 1))
    figure = SeriesFigure(
        title="Fig.7 Cumulative distribution of anti-phishing detections",
        x_label="detections after one week",
        x_values=grid,
    )
    for kind, subset in split_fwb_self(timelines).items():
        for platform in ("twitter", "facebook"):
            values = [
                t.vt_final() for t in subset if t.platform == platform
            ]
            figure.series[f"{kind}_{platform}"] = empirical_cdf(values, grid)
    return figure


# -- Figure 8: daily detection progression --------------------------------------------


def build_fig8(
    timelines: Sequence[UrlTimeline],
    thresholds: Sequence[int] = (2, 4, 8),
) -> SeriesFigure:
    """Share of URLs at or below k detections, per day over a week."""
    days = list(range(1, 8))
    figure = SeriesFigure(
        title="Fig.8 Detections by anti-phishing engines over seven days",
        x_label="day",
        x_values=days,
    )
    for kind, subset in split_fwb_self(timelines).items():
        for threshold in thresholds:
            series = []
            for day in days:
                offset = day * 24 * 60
                counts = [t.vt_at(offset) for t in subset]
                series.append(
                    float(np.mean([c <= threshold for c in counts]))
                    if counts else 0.0
                )
            figure.series[f"{kind}_le_{threshold}"] = series
    return figure


# -- Figure 9: platform removal curves --------------------------------------------------


def build_fig9(timelines: Sequence[UrlTimeline]) -> SeriesFigure:
    """Platform post-removal coverage over time, per platform + hosting."""
    figure = SeriesFigure(
        title="Fig.9 Coverage and speed of platforms",
        x_label="hours",
        x_values=list(HOUR_GRID),
    )
    for kind, subset in split_fwb_self(timelines).items():
        for platform in ("twitter", "facebook"):
            matching = [t for t in subset if t.platform == platform]
            figure.series[f"{platform}_{kind}"] = coverage_over_time(
                matching, "platform", HOUR_GRID
            )
    return figure
