"""Coverage and response-time computation over URL timelines.

The paper's two key performance indicators (§4.4): **coverage** — the share
of URLs an entity detected/removed within the monitoring window — and
**response time** — minutes from a URL's first dataset appearance to the
entity's action. Both are computed here for arbitrary timeline subsets, so
the same code produces Table 3 (all FWB vs. all self-hosted), Table 4
(per-FWB), and the Figure 6/9 time curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..config import minutes_to_hhmm
from ..core.monitor import UrlTimeline
from .stats import coverage_fraction, median_or_none, min_max

#: Extractors for the offset of each measured entity on a timeline.
ENTITY_EXTRACTORS: Dict[str, Callable[[UrlTimeline], Optional[int]]] = {
    "gsb": lambda t: t.blocklist_offsets.get("gsb"),
    "phishtank": lambda t: t.blocklist_offsets.get("phishtank"),
    "openphish": lambda t: t.blocklist_offsets.get("openphish"),
    "ecrimex": lambda t: t.blocklist_offsets.get("ecrimex"),
    "platform": lambda t: t.post_removal_offset,
    "domain": lambda t: t.site_removal_offset,
}


@dataclass(frozen=True)
class CoverageStats:
    """Coverage + response-time summary for one entity over one subset."""

    entity: str
    n_urls: int
    coverage: float
    median_minutes: Optional[float]
    min_minutes: Optional[int]
    max_minutes: Optional[int]

    @property
    def median_hhmm(self) -> str:
        return "n/a" if self.median_minutes is None else minutes_to_hhmm(self.median_minutes)

    @property
    def min_max_hhmm(self) -> str:
        if self.min_minutes is None or self.max_minutes is None:
            return "n/a"
        return f"{minutes_to_hhmm(self.min_minutes)}/{minutes_to_hhmm(self.max_minutes)}"


def coverage_stats(
    timelines: Sequence[UrlTimeline],
    entity: str,
) -> CoverageStats:
    """Coverage/response stats for ``entity`` over ``timelines``."""
    extractor = ENTITY_EXTRACTORS[entity]
    offsets = [extractor(t) for t in timelines]
    low, high = min_max(offsets)
    return CoverageStats(
        entity=entity,
        n_urls=len(timelines),
        coverage=coverage_fraction(offsets),
        median_minutes=median_or_none([o for o in offsets if o is not None]),
        min_minutes=low,
        max_minutes=high,
    )


def coverage_over_time(
    timelines: Sequence[UrlTimeline],
    entity: str,
    hour_grid: Sequence[float],
) -> List[float]:
    """Coverage fraction at each horizon in ``hour_grid`` (Figures 6/9)."""
    extractor = ENTITY_EXTRACTORS[entity]
    offsets = [extractor(t) for t in timelines]
    n = max(len(offsets), 1)
    curve = []
    for hours in hour_grid:
        horizon = hours * 60.0
        curve.append(
            sum(1 for o in offsets if o is not None and o <= horizon) / n
        )
    return curve


def split_fwb_self(
    timelines: Sequence[UrlTimeline],
) -> Dict[str, List[UrlTimeline]]:
    """Partition timelines into the paper's two comparison populations."""
    return {
        "fwb": [t for t in timelines if t.is_fwb],
        "self_hosted": [t for t in timelines if not t.is_fwb],
    }


def group_by_fwb(
    timelines: Sequence[UrlTimeline],
) -> Dict[str, List[UrlTimeline]]:
    """Group FWB timelines by hosting service (Table 4 rows)."""
    groups: Dict[str, List[UrlTimeline]] = {}
    for timeline in timelines:
        if timeline.fwb_name is not None:
            groups.setdefault(timeline.fwb_name, []).append(timeline)
    return groups
