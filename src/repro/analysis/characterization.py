"""§3 characterization study: manual coding and FWB-feature statistics.

The paper's qualitative phase takes a 5K random sample of candidate FWB
phishing URLs, has two security-trained coders label them (Cohen's κ =
0.78, 4,656 confirmed), and derives the headline FWB statistics:

* ~89% of confirmed phishing sits on the 14 ``.com``-TLD services;
* median WHOIS domain age 13.7 *years* (vs. 71 *days* for a same-size
  PhishTank self-hosted sample);
* only 4.1% of FWB phishing URLs were Google-indexed;
* 44.7% carried a ``noindex`` directive.

This module reproduces the study mechanically: a candidate population is
generated (93% true phishing, the remainder benign-but-flagged), two
simulated coders label it with the paper's documented failure modes
(two-step/evasive pages missed, address/phone fields overlooked,
non-English pages misjudged), disagreements resolve to truth, and the
statistics are computed through the real WHOIS/search-index substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..simnet.hosting import HostedSite
from ..simnet.web import Web
from ..sitegen.kits import PhishingKitGenerator
from ..sitegen.legitimate import LegitimateSiteGenerator
from ..sitegen.phishing import PhishingSiteGenerator
from .stats import cohens_kappa

#: Lognormal sigma for the PhishTank comparison sample's domain ages.
_PHISHTANK_AGE_SIGMA = 1.1


@dataclass
class CoderProfile:
    """Failure modes of one human coder (§3's disagreement analysis)."""

    #: Chance of missing an evasive (credential-free) phishing page.
    evasive_miss_rate: float
    #: Chance of dismissing pages whose only sensitive fields are
    #: address/phone (Coder #1's documented blind spot).
    soft_field_miss_rate: float
    #: Chance of misjudging a non-English page (Coder #2's blind spot).
    foreign_miss_rate: float
    #: Baseline labelling noise on clear-cut pages.
    base_error_rate: float

    def label(self, site: HostedSite, rng: np.random.Generator) -> int:
        truth = 1 if site.metadata.get("is_phishing") else 0
        if truth == 0:
            flip = rng.random() < self.base_error_rate
            return 1 if flip else 0
        error = self.base_error_rate
        if not site.metadata.get("has_credential_form", True):
            error = max(error, self.evasive_miss_rate)
        if site.metadata.get("variant") == "credential" and rng.random() < 0.15:
            # Pages where only soft fields look sensitive.
            error = max(error, self.soft_field_miss_rate)
        if site.metadata.get("language", "en") != "en":
            error = max(error, self.foreign_miss_rate)
        return 0 if rng.random() < error else 1


CODER_ONE = CoderProfile(
    evasive_miss_rate=0.06, soft_field_miss_rate=0.05,
    foreign_miss_rate=0.01, base_error_rate=0.005,
)
CODER_TWO = CoderProfile(
    evasive_miss_rate=0.015, soft_field_miss_rate=0.01,
    foreign_miss_rate=0.40, base_error_rate=0.005,
)


@dataclass
class CharacterizationReport:
    """The §3 headline numbers, as measured on the simulated sample."""

    n_sample: int
    n_confirmed: int
    kappa: float
    com_share: float
    median_fwb_age_years: float
    median_self_hosted_age_days: float
    indexed_rate: float
    noindex_rate: float

    @property
    def confirmation_rate(self) -> float:
        return self.n_confirmed / self.n_sample if self.n_sample else 0.0


def _generate_candidate_sample(
    web: Web,
    n_sample: int,
    rng: np.random.Generator,
    phishing_share: float,
) -> List[HostedSite]:
    """The D1-style candidate population: mostly real phishing, plus the
    benign-but-VT-flagged noise manual coding weeds out."""
    phishing_generator = PhishingSiteGenerator()
    benign_generator = LegitimateSiteGenerator()
    providers = list(web.fwb_providers.values())
    weights = np.asarray([p.service.attacker_weight for p in providers], float)
    probabilities = weights / weights.sum()
    sites: List[HostedSite] = []
    n_phishing = int(round(n_sample * phishing_share))
    for _ in range(n_phishing):
        provider = providers[int(rng.choice(len(providers), p=probabilities))]
        sites.append(phishing_generator.create_site(provider, now=0, rng=rng))
    for _ in range(n_sample - n_phishing):
        provider = providers[int(rng.integers(len(providers)))]
        sites.append(benign_generator.create_fwb_site(provider, now=0, rng=rng))
    rng.shuffle(sites)  # type: ignore[arg-type]
    return sites


def characterize(
    n_sample: int = 1000,
    seed: int = 13,
    web: Optional[Web] = None,
    phishing_share: float = 4656 / 5000,
    #: Probability an FWB phishing page has at least one incoming link —
    #: the precondition for search indexing (§3: only 4.1% indexed).
    incoming_link_rate: float = 0.075,
    now: int = 0,
) -> CharacterizationReport:
    """Run the §3 characterization study at the given sample size."""
    rng = np.random.default_rng(seed)
    web = web if web is not None else Web()
    sites = _generate_candidate_sample(web, n_sample, rng, phishing_share)

    labels_one = np.array([CODER_ONE.label(site, rng) for site in sites])
    labels_two = np.array([CODER_TWO.label(site, rng) for site in sites])
    kappa = cohens_kappa(labels_one, labels_two)
    # Disagreements are resolved by discussion — to ground truth.
    confirmed = [site for site in sites if site.metadata.get("is_phishing")]

    com_hits = 0
    fwb_ages_years: List[float] = []
    indexed = 0
    noindexed = 0
    for site in confirmed:
        url = site.root_url
        service = web.fwb_for(url)
        if service is not None and service.offers_com_tld:
            com_hits += 1
        record = web.whois.lookup(url, now=now)
        if record is not None:
            fwb_ages_years.append(record.age_years)
        if rng.random() < incoming_link_rate:
            web.search_index.record_incoming_link(url)
        if web.search_index.submit(url, site.pages.get("/", ""), now=now):
            indexed += 1
        if site.metadata.get("noindex"):
            noindexed += 1

    # PhishTank comparison sample: self-hosted phishing domains whose ages
    # follow the feed's measured distribution (median 71 days).
    self_hosted_ages = rng.lognormal(
        mean=np.log(71.0), sigma=_PHISHTANK_AGE_SIGMA, size=max(len(confirmed), 1)
    )

    n_confirmed = len(confirmed)
    return CharacterizationReport(
        n_sample=n_sample,
        n_confirmed=n_confirmed,
        kappa=float(kappa),
        com_share=com_hits / n_confirmed if n_confirmed else 0.0,
        median_fwb_age_years=float(np.median(fwb_ages_years)) if fwb_ages_years else 0.0,
        median_self_hosted_age_days=float(np.median(self_hosted_ages)),
        indexed_rate=indexed / n_confirmed if n_confirmed else 0.0,
        noindex_rate=noindexed / n_confirmed if n_confirmed else 0.0,
    )
