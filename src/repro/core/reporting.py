"""Reporting module (paper §4.3).

URLs the classifier flags as phishing are reported immediately to (a) the
hosting FWB service's abuse desk and (b) the social platform the URL was
found on. Reports carry the evidence bundle the paper describes — full URL,
screenshot (visual signature), and the spoofed organization — since
evidence-backed reports are actioned faster. Blocklists are deliberately
**not** notified: community lists ingest reports unverified, which would
contaminate the longitudinal measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ecosystem.takedown import AbuseDesk, ReportOutcome, TakedownTicket
from ..errors import ReportingError
from ..obs.instrument import NULL_INSTRUMENTATION, Instrumentation
from ..simnet.url import URL
from ..social.platform import SocialPlatform
from .preprocess import ProcessedPage
from .streaming import StreamObservation


@dataclass
class AbuseReport:
    """One filed report and what became of it."""

    url: str
    fwb_name: Optional[str]
    platform: str
    post_id: str
    reported_at: int
    spoofed_brand: Optional[str]
    fwb_outcome: Optional[ReportOutcome] = None
    platform_actioned: bool = False


class ReportingModule:
    """Files reports with FWB abuse desks and social platforms."""

    def __init__(
        self,
        abuse_desks: Dict[str, AbuseDesk],
        platforms: Dict[str, SocialPlatform],
        #: Platforms action a fraction of external reports directly; the
        #: rest ride the platform's own moderation pipeline.
        platform_report_action_rate: float = 0.0,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.abuse_desks = dict(abuse_desks)
        self.platforms = dict(platforms)
        self.platform_report_action_rate = platform_report_action_rate
        self.reports: List[AbuseReport] = []
        instr = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        self._c_filed = instr.counter("reporting.filed")
        self._c_fwb = instr.counter("reporting.fwb_reports")
        self._c_platform_actioned = instr.counter("reporting.platform_actioned")

    def report(
        self,
        observation: StreamObservation,
        page: Optional[ProcessedPage],
        now: int,
    ) -> AbuseReport:
        """Report one detected phishing URL everywhere it should go."""
        brand = None
        if page is not None:
            title = page.snapshot.document.title
            brand = title.split(" - ")[0].lower() if title else None
        report = AbuseReport(
            url=str(observation.url),
            fwb_name=observation.fwb_name,
            platform=observation.platform,
            post_id=observation.post.post_id,
            reported_at=now,
            spoofed_brand=brand,
        )
        if observation.fwb_name is not None:
            desk = self.abuse_desks.get(observation.fwb_name)
            if desk is None:
                raise ReportingError(
                    f"no abuse desk registered for FWB {observation.fwb_name!r}"
                )
            ticket: TakedownTicket = desk.receive_report(observation.url, now)
            report.fwb_outcome = ticket.outcome
            self._c_fwb.inc()
        platform = self.platforms.get(observation.platform)
        if platform is not None and self.platform_report_action_rate > 0:
            if platform.rng.random() < self.platform_report_action_rate:
                report.platform_actioned = platform.remove_reported(
                    observation.post.post_id, now
                )
                if report.platform_actioned:
                    self._c_platform_actioned.inc()
        self.reports.append(report)
        self._c_filed.inc()
        return report

    # -- §5.3 "Response to reporting" aggregation ------------------------------

    def response_rates_by_fwb(self) -> Dict[str, Dict[str, float]]:
        """Per-FWB shares of no-response / acknowledged / resolved reports."""
        counts: Dict[str, Dict[str, int]] = {}
        for report in self.reports:
            if report.fwb_name is None or report.fwb_outcome is None:
                continue
            bucket = counts.setdefault(
                report.fwb_name,
                {outcome.value: 0 for outcome in ReportOutcome},
            )
            bucket[report.fwb_outcome.value] += 1
        rates: Dict[str, Dict[str, float]] = {}
        for fwb, bucket in counts.items():
            total = sum(bucket.values())
            rates[fwb] = {key: value / total for key, value in bucket.items()}
        return rates
