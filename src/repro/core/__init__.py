"""FreePhish: the paper's primary contribution.

Five cooperating modules (paper Figure 4):

1. :mod:`repro.core.streaming` — polls the social platforms every 10
   minutes for posts containing FWB URLs;
2. :mod:`repro.core.preprocess` — snapshots each website and extracts the
   URL/HTML/FWB feature set (:mod:`repro.core.features`);
3. :mod:`repro.core.classifier` — the augmented StackModel;
4. :mod:`repro.core.reporting` — files abuse reports with the hosting FWB
   and the social platform;
5. :mod:`repro.core.monitor` — longitudinally measures blocklists, browser
   protection tools, FWB takedowns, and platform moderation.

:class:`repro.core.framework.FreePhish` wires them together;
:mod:`repro.core.extension` is the browser-extension navigation guard.
"""

from .features import (
    BASE_FEATURE_NAMES,
    FWB_FEATURE_NAMES,
    FeatureExtractor,
)
from .preprocess import Preprocessor, ProcessedPage
from .classifier import FreePhishClassifier
from .streaming import StreamingModule, StreamObservation
from .reporting import ReportingModule, AbuseReport
from .monitor import AnalysisModule, UrlTimeline
from .framework import FreePhish
from .extension import FreePhishExtension, NavigationVerdict

__all__ = [
    "BASE_FEATURE_NAMES",
    "FWB_FEATURE_NAMES",
    "FeatureExtractor",
    "Preprocessor",
    "ProcessedPage",
    "FreePhishClassifier",
    "StreamingModule",
    "StreamObservation",
    "ReportingModule",
    "AbuseReport",
    "AnalysisModule",
    "UrlTimeline",
    "FreePhish",
    "FreePhishExtension",
    "NavigationVerdict",
]
