"""The assembled FreePhish framework (paper Figure 4).

``FreePhish.step`` executes one 10-minute cycle: poll both social streams,
snapshot and featurize every new URL, classify, report the positives to the
hosting service and the platform, and enrol them in longitudinal
monitoring. ``run`` drives the cycle across a time window.

Every stage is traced through the :mod:`repro.obs` instrumentation layer:
``framework.step`` wraps one cycle, with nested ``framework.poll`` /
``framework.preprocess`` / ``framework.classify`` / ``framework.report``
spans, and the run counters live in the shared
:class:`~repro.obs.metrics.MetricsRegistry` (``framework.*``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import STREAM_INTERVAL_MINUTES
from ..obs.instrument import Instrumentation
from ..simnet.web import Web
from .classifier import FreePhishClassifier
from .monitor import AnalysisModule
from .preprocess import Preprocessor, ProcessedPage
from .reporting import ReportingModule
from .streaming import StreamingModule, StreamObservation


@dataclass
class DetectionRecord:
    """One classifier-positive URL, with its provenance."""

    observation: StreamObservation
    page: ProcessedPage
    probability: float
    detected_at: int


class FrameworkStats:
    """Run counters — a live, read-only view over the metrics registry.

    The six ad-hoc integer fields this class used to hold were folded
    into the ``framework.*`` counters of the shared
    :class:`~repro.obs.metrics.MetricsRegistry`; the attribute surface is
    unchanged, so ``framework.stats.detections`` keeps working. A
    framework wired to :data:`~repro.obs.NULL_INSTRUMENTATION` counts
    nothing, so this view reads zero there.
    """

    __slots__ = ("_metrics",)

    def __init__(self, metrics) -> None:
        self._metrics = metrics

    @property
    def polls(self) -> int:
        return self._metrics.counter("framework.polls").value

    @property
    def observations(self) -> int:
        return self._metrics.counter("framework.observations").value

    @property
    def fwb_observations(self) -> int:
        return self._metrics.counter("framework.fwb_observations").value

    @property
    def unreachable(self) -> int:
        return self._metrics.counter("framework.unreachable").value

    @property
    def detections(self) -> int:
        return self._metrics.counter("framework.detections").value

    @property
    def reports_filed(self) -> int:
        return self._metrics.counter("framework.reports_filed").value

    def as_dict(self) -> Dict[str, int]:
        return {
            "polls": self.polls,
            "observations": self.observations,
            "fwb_observations": self.fwb_observations,
            "unreachable": self.unreachable,
            "detections": self.detections,
            "reports_filed": self.reports_filed,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"FrameworkStats({body})"


class FreePhish:
    """Streaming → preprocessing → classification → reporting → analysis."""

    def __init__(
        self,
        web: Web,
        streaming: StreamingModule,
        preprocessor: Preprocessor,
        classifier: FreePhishClassifier,
        reporting: ReportingModule,
        analysis: AnalysisModule,
        #: Track only FWB-hosted URLs (the paper's main dataset); the
        #: self-hosted comparison stream is collected separately.
        fwb_only: bool = True,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.web = web
        self.streaming = streaming
        self.preprocessor = preprocessor
        self.classifier = classifier
        self.reporting = reporting
        self.analysis = analysis
        self.fwb_only = fwb_only
        self.detections: List[DetectionRecord] = []
        # A standalone framework gets its own live instrumentation so the
        # stats view counts; CampaignWorld passes its shared object in.
        self.instr = (
            instrumentation if instrumentation is not None else Instrumentation()
        )
        metrics = self.instr.metrics
        self._c_polls = metrics.counter("framework.polls")
        self._c_observations = metrics.counter("framework.observations")
        self._c_fwb_observations = metrics.counter("framework.fwb_observations")
        self._c_unreachable = metrics.counter("framework.unreachable")
        self._c_detections = metrics.counter("framework.detections")
        self._c_reports_filed = metrics.counter("framework.reports_filed")
        self._c_batch_calls = metrics.counter("classify.batch.calls")
        self._c_batch_rows = metrics.counter("classify.batch.rows")
        self._h_batch_size = self.instr.histogram("classify.batch.size")
        self.stats = FrameworkStats(metrics)

    def step(self, now: int) -> List[DetectionRecord]:
        """One polling cycle at time ``now``; returns fresh detections.

        The cycle is batched: one preprocessing pass collects every
        reachable page, the classifier scores them as a **single** feature
        matrix (one ``predict_proba`` call per tick), and the positives are
        then reported in arrival order. Batch scoring is elementwise per
        row, and reports only take effect at daily housekeeping, so
        detections and probabilities are identical to the sequential
        per-observation cycle.
        """
        instr = self.instr
        instr.set_time(now)
        fresh: List[DetectionRecord] = []
        with instr.span("framework.step"):
            with instr.span("framework.poll"):
                observations = self.streaming.poll(now)
            self._c_polls.inc()
            self._c_observations.inc(len(observations))

            eligible = []
            for observation in observations:
                if observation.is_fwb:
                    self._c_fwb_observations.inc()
                elif self.fwb_only:
                    continue
                eligible.append(observation)

            pages: List[ProcessedPage] = []
            kept: List[StreamObservation] = []
            with instr.span("framework.preprocess"):
                for observation in eligible:
                    page = self.preprocessor.process(
                        observation.url, now, keep=False
                    )
                    if page is None:
                        self._c_unreachable.inc()
                        continue
                    pages.append(page)
                    kept.append(observation)

            with instr.span("framework.classify"):
                predictions = self.classifier.classify_pages(pages)
                if pages:
                    self._c_batch_calls.inc()
                    self._c_batch_rows.inc(len(pages))
                    self._h_batch_size.observe(len(pages))

            for observation, page, prediction in zip(kept, pages, predictions):
                if prediction.label != 1:
                    continue
                record = DetectionRecord(
                    observation=observation,
                    page=page,
                    probability=prediction.probability,
                    detected_at=now,
                )
                self.detections.append(record)
                fresh.append(record)
                self._c_detections.inc()
                instr.emit(
                    "framework.detection",
                    url=str(observation.url),
                    platform=observation.platform,
                    fwb=observation.fwb_name,
                    probability=round(float(prediction.probability), 6),
                )
                with instr.span("framework.report"):
                    self.reporting.report(observation, page, now)
                self._c_reports_filed.inc()
                self.analysis.track(observation)
        return fresh

    def run(self, start: int, end: int,
            interval: int = STREAM_INTERVAL_MINUTES) -> List[DetectionRecord]:
        """Run polling cycles over ``[start, end]``."""
        all_fresh: List[DetectionRecord] = []
        tick = start + interval
        while tick <= end:
            all_fresh.extend(self.step(tick))
            tick += interval
        return all_fresh

    def detected_urls(self) -> List[str]:
        return [str(record.observation.url) for record in self.detections]
