"""The assembled FreePhish framework (paper Figure 4).

``FreePhish.step`` executes one 10-minute cycle: poll both social streams,
snapshot and featurize every new URL, classify, report the positives to the
hosting service and the platform, and enrol them in longitudinal
monitoring. ``run`` drives the cycle across a time window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import STREAM_INTERVAL_MINUTES
from ..simnet.web import Web
from .classifier import FreePhishClassifier
from .monitor import AnalysisModule
from .preprocess import Preprocessor, ProcessedPage
from .reporting import ReportingModule
from .streaming import StreamingModule, StreamObservation


@dataclass
class DetectionRecord:
    """One classifier-positive URL, with its provenance."""

    observation: StreamObservation
    page: ProcessedPage
    probability: float
    detected_at: int


@dataclass
class FrameworkStats:
    """Run counters."""

    polls: int = 0
    observations: int = 0
    fwb_observations: int = 0
    unreachable: int = 0
    detections: int = 0
    reports_filed: int = 0


class FreePhish:
    """Streaming → preprocessing → classification → reporting → analysis."""

    def __init__(
        self,
        web: Web,
        streaming: StreamingModule,
        preprocessor: Preprocessor,
        classifier: FreePhishClassifier,
        reporting: ReportingModule,
        analysis: AnalysisModule,
        #: Track only FWB-hosted URLs (the paper's main dataset); the
        #: self-hosted comparison stream is collected separately.
        fwb_only: bool = True,
    ) -> None:
        self.web = web
        self.streaming = streaming
        self.preprocessor = preprocessor
        self.classifier = classifier
        self.reporting = reporting
        self.analysis = analysis
        self.fwb_only = fwb_only
        self.detections: List[DetectionRecord] = []
        self.stats = FrameworkStats()

    def step(self, now: int) -> List[DetectionRecord]:
        """One polling cycle at time ``now``; returns fresh detections."""
        fresh: List[DetectionRecord] = []
        observations = self.streaming.poll(now)
        self.stats.polls += 1
        self.stats.observations += len(observations)
        for observation in observations:
            if observation.is_fwb:
                self.stats.fwb_observations += 1
            elif self.fwb_only:
                continue
            page = self.preprocessor.process(observation.url, now, keep=False)
            if page is None:
                self.stats.unreachable += 1
                continue
            prediction = self.classifier.classify_page(page)
            if prediction.label != 1:
                continue
            record = DetectionRecord(
                observation=observation,
                page=page,
                probability=prediction.probability,
                detected_at=now,
            )
            self.detections.append(record)
            fresh.append(record)
            self.stats.detections += 1
            self.reporting.report(observation, page, now)
            self.stats.reports_filed += 1
            self.analysis.track(observation)
        return fresh

    def run(self, start: int, end: int,
            interval: int = STREAM_INTERVAL_MINUTES) -> List[DetectionRecord]:
        """Run polling cycles over ``[start, end]``."""
        all_fresh: List[DetectionRecord] = []
        tick = start + interval
        while tick <= end:
            all_fresh.extend(self.step(tick))
            tick += interval
        return all_fresh

    def detected_urls(self) -> List[str]:
        return [str(record.observation.url) for record in self.detections]
