"""Pre-processing module (paper §4.1).

Stores a full snapshot of each streamed website (source + rendered
signature, the stand-in for a screenshot) and extracts the classifier's
feature set. Unreachable URLs are dropped, mirroring the real pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import FetchError
from ..simnet.browser import Browser, PageSnapshot
from ..simnet.url import URL
from ..simnet.web import Web
from .features import FWB_FEATURE_NAMES, FeatureExtractor, PageFeatures


@dataclass
class ProcessedPage:
    """Snapshot + features for one streamed URL."""

    url: URL
    snapshot: PageSnapshot
    features: PageFeatures
    fwb_name: Optional[str]

    @property
    def fwb_vector(self) -> np.ndarray:
        return self.features.fwb_vector

    @property
    def base_vector(self) -> np.ndarray:
        return self.features.base_vector


@dataclass(frozen=True)
class SkippedURL:
    """One URL a batch could not snapshot, with the reason it was skipped."""

    url: URL
    reason: str


@dataclass
class PreprocessBatch:
    """Outcome of a batched preprocessing pass.

    A single unreachable URL must never abort a serving batch: reachable
    pages are returned in ``pages`` (input order preserved) and every
    failure is reported in ``skipped`` rather than raised.
    """

    pages: List[ProcessedPage]
    skipped: List[SkippedURL]

    @property
    def n_processed(self) -> int:
        return len(self.pages)

    @property
    def n_skipped(self) -> int:
        return len(self.skipped)


class Preprocessor:
    """Snapshot + feature-extraction stage of the pipeline."""

    def __init__(
        self,
        web: Web,
        browser: Optional[Browser] = None,
        extractor: Optional[FeatureExtractor] = None,
    ) -> None:
        self.web = web
        self.browser = browser if browser is not None else Browser(web)
        self.extractor = extractor if extractor is not None else FeatureExtractor()
        #: Snapshot archive, as the paper stores full website snapshots.
        self.archive: List[ProcessedPage] = []

    def process(self, url: URL, now: int, keep: bool = True) -> Optional[ProcessedPage]:
        """Snapshot and featurize one URL; ``None`` if it cannot be fetched."""
        try:
            snapshot = self.browser.snapshot(url, now)
        except FetchError:
            return None
        features = self.extractor.extract(url, snapshot)
        service = self.web.fwb_for(url)
        page = ProcessedPage(
            url=url,
            snapshot=snapshot,
            features=features,
            fwb_name=service.name if service is not None else None,
        )
        if keep:
            self.archive.append(page)
        return page

    def process_batch(
        self, urls: List[URL], now: int, keep: bool = False
    ) -> List[ProcessedPage]:
        """Reachable pages only; see :meth:`process_batch_report` for the
        skip-and-report variant the serving layer uses."""
        return self.process_batch_report(urls, now, keep=keep).pages

    def process_batch_report(
        self, urls: List[URL], now: int, keep: bool = False
    ) -> PreprocessBatch:
        """Snapshot and featurize a batch, skipping-and-reporting failures.

        One dead URL (taken down mid-batch, or a custom browser raising
        :class:`~repro.errors.FetchError` while resolving sub-resources)
        must not abort the other N-1: every failure becomes a
        :class:`SkippedURL` entry instead of propagating.
        """
        pages: List[ProcessedPage] = []
        skipped: List[SkippedURL] = []
        for url in urls:
            try:
                page = self.process(url, now, keep=keep)
            except FetchError as exc:
                # process() shields the snapshot call, but browser
                # subclasses may raise while resolving iframes/downloads.
                skipped.append(SkippedURL(url=url, reason=str(exc)))
                continue
            if page is None:
                skipped.append(SkippedURL(url=url, reason="unreachable"))
                continue
            pages.append(page)
        return PreprocessBatch(pages=pages, skipped=skipped)

    def feature_matrix(self, pages: List[ProcessedPage]) -> np.ndarray:
        """Stacked FWB-augmented feature vectors for a batch."""
        if not pages:
            return np.empty((0, len(FWB_FEATURE_NAMES)))
        return np.vstack([page.fwb_vector for page in pages])
