"""Pre-processing module (paper §4.1).

Stores a full snapshot of each streamed website (source + rendered
signature, the stand-in for a screenshot) and extracts the classifier's
feature set. Unreachable URLs are dropped, mirroring the real pipeline.

Re-observations are memoized: each processed page is cached under its
:func:`~repro.core.features.snapshot_key` content hash, so observing a URL
whose markup has not changed (the monitor re-checks every tracked URL for
days) skips HTML parsing and feature extraction entirely. The cache is a
bounded LRU; a page whose markup changed — or that became unreachable —
never hits it, because the cheap ``fetch`` runs first and the key covers
the fetched markup. See ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import FetchError
from ..obs.instrument import NULL_INSTRUMENTATION, Instrumentation
from ..simnet.browser import Browser, PageSnapshot
from ..simnet.url import URL
from ..simnet.web import Web
from .features import (
    DEFAULT_FEATURE_CACHE_SIZE,
    FWB_FEATURE_NAMES,
    FeatureExtractor,
    PageFeatures,
    snapshot_key,
)


@dataclass
class ProcessedPage:
    """Snapshot + features for one streamed URL."""

    url: URL
    snapshot: PageSnapshot
    features: PageFeatures
    fwb_name: Optional[str]

    @property
    def fwb_vector(self) -> np.ndarray:
        return self.features.fwb_vector

    @property
    def base_vector(self) -> np.ndarray:
        return self.features.base_vector


@dataclass(frozen=True)
class SkippedURL:
    """One URL a batch could not snapshot, with the reason it was skipped."""

    url: URL
    reason: str


@dataclass
class PreprocessBatch:
    """Outcome of a batched preprocessing pass.

    A single unreachable URL must never abort a serving batch: reachable
    pages are returned in ``pages`` (input order preserved) and every
    failure is reported in ``skipped`` rather than raised.
    """

    pages: List[ProcessedPage]
    skipped: List[SkippedURL]

    @property
    def n_processed(self) -> int:
        return len(self.pages)

    @property
    def n_skipped(self) -> int:
        return len(self.skipped)


class Preprocessor:
    """Snapshot + feature-extraction stage of the pipeline."""

    def __init__(
        self,
        web: Web,
        browser: Optional[Browser] = None,
        extractor: Optional[FeatureExtractor] = None,
        instrumentation: Optional[Instrumentation] = None,
        cache_size: int = DEFAULT_FEATURE_CACHE_SIZE,
    ) -> None:
        self.web = web
        self.browser = browser if browser is not None else Browser(web)
        self._instr = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        self.extractor = (
            extractor
            if extractor is not None
            else FeatureExtractor(instrumentation=self._instr)
        )
        #: Snapshot archive, as the paper stores full website snapshots.
        #: Only populated by ``keep=True`` calls — never by the cache.
        self.archive: List[ProcessedPage] = []
        self.cache_size = cache_size
        self._page_cache: "OrderedDict[str, ProcessedPage]" = OrderedDict()
        self._c_hit = self._instr.counter("preprocess.cache.hit")
        self._c_miss = self._instr.counter("preprocess.cache.miss")
        self._c_evicted = self._instr.counter("preprocess.cache.evicted")

    @property
    def cache_len(self) -> int:
        """Number of processed pages currently memoized."""
        return len(self._page_cache)

    def process(self, url: URL, now: int, keep: bool = True) -> Optional[ProcessedPage]:
        """Snapshot and featurize one URL; ``None`` if it cannot be fetched.

        Fetch-first fast path: the markup fetch is cheap, so it runs
        first; if the fetched content hashes to an already-processed page,
        the cached :class:`ProcessedPage` is returned without re-parsing.
        An unreachable or changed page can therefore never be served
        stale. On a miss the probe's :class:`~repro.simnet.browser.FetchResult`
        is handed to ``snapshot_from``, so the markup is fetched once, not
        twice.
        """
        try:
            if self.cache_size > 0:
                result = self.browser.fetch(url, now)
                if not result.ok:
                    # snapshot() raises SiteRemovedError for this status.
                    return None
                key = snapshot_key(url, result.markup)
                cached = self._page_cache.get(key)
                if cached is not None:
                    self._page_cache.move_to_end(key)
                    self._c_hit.inc()
                    if keep:
                        self.archive.append(cached)
                    return cached
                snapshot = self.browser.snapshot_from(result, now)
            else:
                snapshot = self.browser.snapshot(url, now)
        except FetchError:
            return None
        features = self.extractor.extract(url, snapshot)
        service = self.web.fwb_for(url)
        page = ProcessedPage(
            url=url,
            snapshot=snapshot,
            features=features,
            fwb_name=service.name if service is not None else None,
        )
        if self.cache_size > 0:
            self._c_miss.inc()
            self._page_cache[snapshot_key(url, snapshot.markup)] = page
            while len(self._page_cache) > self.cache_size:
                self._page_cache.popitem(last=False)
                self._c_evicted.inc()
        if keep:
            self.archive.append(page)
        return page

    def process_batch(
        self, urls: List[URL], now: int, keep: bool = False
    ) -> List[ProcessedPage]:
        """Reachable pages only; see :meth:`process_batch_report` for the
        skip-and-report variant the serving layer uses."""
        return self.process_batch_report(urls, now, keep=keep).pages

    def process_batch_report(
        self, urls: List[URL], now: int, keep: bool = False
    ) -> PreprocessBatch:
        """Snapshot and featurize a batch, skipping-and-reporting failures.

        One dead URL (taken down mid-batch, or a custom browser raising
        :class:`~repro.errors.FetchError` while resolving sub-resources)
        must not abort the other N-1: every failure becomes a
        :class:`SkippedURL` entry instead of propagating.
        """
        pages: List[ProcessedPage] = []
        skipped: List[SkippedURL] = []
        for url in urls:
            try:
                page = self.process(url, now, keep=keep)
            except FetchError as exc:
                # process() shields the snapshot call, but browser
                # subclasses may raise while resolving iframes/downloads.
                skipped.append(SkippedURL(url=url, reason=str(exc)))
                continue
            if page is None:
                skipped.append(SkippedURL(url=url, reason="unreachable"))
                continue
            pages.append(page)
        return PreprocessBatch(pages=pages, skipped=skipped)

    def feature_matrix(self, pages: List[ProcessedPage]) -> np.ndarray:
        """One ``(n, d)`` float64 matrix of FWB-augmented feature vectors.

        This is the batch hand-off to the classifier: both the framework's
        per-tick batch and the serving MicroBatcher score exactly one such
        matrix per flush.
        """
        if not pages:
            return np.empty((0, len(FWB_FEATURE_NAMES)), dtype=np.float64)
        return np.vstack([page.fwb_vector for page in pages])
