"""Heuristics for the §5.5 evasive attack vectors.

14.2% of the paper's dataset had no credential fields; qualitative review of
a 1K sample surfaced three variants, for which the authors "developed
heuristics to automatically identify these attack vectors across our
dataset". These are those heuristics, over page snapshots:

* **two-step link-out**: no credential fields, and the page's primary
  call-to-action button leads to a different domain that *does* present a
  credential interface (or is unreachable — already taken down);
* **iframe embedding**: an ``<iframe>`` whose source lives on another
  domain (client-side rendered, invisible to markup-only scanners);
* **drive-by download**: a link that triggers a file download whose
  VirusTotal score reaches the 4-detection malware threshold.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from ..simnet.browser import Browser, PageSnapshot
from ..webdoc import parse_html

#: File detections at/above which the paper marks a payload malicious.
MALWARE_DETECTION_THRESHOLD = 4


class EvasiveVector(str, Enum):
    TWO_STEP = "two_step"
    IFRAME = "iframe"
    DRIVEBY = "driveby"


def has_credential_fields(snapshot: PageSnapshot) -> bool:
    document = snapshot.document
    return bool(document.password_inputs()) or len(document.credential_inputs()) >= 2


def classify_evasive(
    snapshot: PageSnapshot,
    browser: Browser,
    now: Optional[int] = None,
) -> Optional[EvasiveVector]:
    """Classify a credential-field-free page into an evasive vector.

    Returns ``None`` when the page has credential fields (not evasive) or
    matches none of the three vectors.
    """
    if has_credential_fields(snapshot):
        return None
    moment = snapshot.fetched_at if now is None else now

    # Drive-by: any malicious download offered by the page.
    for asset in snapshot.downloads:
        if asset.vt_detections >= MALWARE_DETECTION_THRESHOLD:
            return EvasiveVector.DRIVEBY

    # iframe: externally sourced frame.
    for src, _markup in snapshot.iframe_contents:
        if src.host != snapshot.url.host:
            return EvasiveVector.IFRAME

    # Two-step: follow the primary call-to-action to another domain.
    chain = browser.follow_workflow(snapshot.url, moment, max_hops=2)
    for hop in chain[1:]:
        if hop.url.host == snapshot.url.host:
            continue
        document = parse_html(hop.markup)
        if document.password_inputs() or len(document.credential_inputs()) >= 2:
            return EvasiveVector.TWO_STEP
    # The landing page may point at an already-removed external target;
    # an outbound button with a dead cross-domain target still counts.
    for anchor in snapshot.document.links():
        classes = " ".join(anchor.classes).lower()
        href = anchor.get("href")
        if ("btn" in classes or "button" in classes) and href.startswith(
            ("http://", "https://")
        ):
            target_host = href.split("//", 1)[1].split("/", 1)[0]
            if target_host != snapshot.url.host:
                return EvasiveVector.TWO_STEP
    return None
