"""Analysis module (paper §4.4): longitudinal effectiveness measurement.

For every URL entering the dataset the module tracks, on the paper's
10-minute polling grid:

* presence on each of the four blocklists;
* VirusTotal engine detections (sampled at 3 h, 6 h, then daily to 7 days);
* liveness of the hosting website (FWB takedown / registrar takedown);
* liveness of the social post that carried the URL.

Timelines record *offsets from first appearance in the dataset*, which is
exactly what the paper's coverage/response-time metrics are computed over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import MONITOR_WINDOW_MINUTES, STREAM_INTERVAL_MINUTES
from ..obs.instrument import NULL_INSTRUMENTATION, Instrumentation
from ..ecosystem.blocklists import Blocklist
from ..ecosystem.virustotal import VirusTotal
from ..simnet.url import URL
from ..simnet.web import Web
from ..social.platform import SocialPlatform
from .streaming import StreamObservation

#: VT sampling offsets (minutes): 3 h, 6 h, then daily through one week.
VT_SAMPLE_OFFSETS: Tuple[int, ...] = (
    180, 360, *(day * 24 * 60 for day in range(1, 8)),
)


def _round_up_to_poll(offset: Optional[int], interval: int) -> Optional[int]:
    """A 10-minute poll observes an event at the next grid point."""
    if offset is None:
        return None
    if offset <= 0:
        return interval
    remainder = offset % interval
    return offset if remainder == 0 else offset + (interval - remainder)


@dataclass
class UrlTimeline:
    """Everything measured about one URL over the monitoring window."""

    url: str
    platform: str
    fwb_name: Optional[str]
    first_seen: int
    is_phishing_truth: bool = True
    #: Blocklist name -> minutes from first_seen to listing (None = missed).
    blocklist_offsets: Dict[str, Optional[int]] = field(default_factory=dict)
    #: Minutes to site takedown by the host (None = still up at window end).
    site_removal_offset: Optional[int] = None
    #: Minutes to post removal by the platform (None = still live).
    post_removal_offset: Optional[int] = None
    #: (offset_minutes, VT positives) samples.
    vt_samples: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def is_fwb(self) -> bool:
        return self.fwb_name is not None

    def vt_final(self) -> int:
        return self.vt_samples[-1][1] if self.vt_samples else 0

    def vt_at(self, offset: int) -> int:
        """Detections at the latest sample not after ``offset``."""
        best = 0
        for sample_offset, positives in self.vt_samples:
            if sample_offset <= offset:
                best = positives
        return best


class AnalysisModule:
    """Tracks URLs and resolves their timelines against the ecosystem."""

    def __init__(
        self,
        web: Web,
        blocklists: Dict[str, Blocklist],
        virustotal: VirusTotal,
        platforms: Dict[str, SocialPlatform],
        window_minutes: int = MONITOR_WINDOW_MINUTES,
        poll_interval: int = STREAM_INTERVAL_MINUTES,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.web = web
        self.blocklists = dict(blocklists)
        self.virustotal = virustotal
        self.platforms = dict(platforms)
        self.window_minutes = window_minutes
        self.poll_interval = poll_interval
        self._tracked: List[StreamObservation] = []
        self.instr = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        self._c_tracked = self.instr.counter("monitor.tracked")
        self._c_resolved = self.instr.counter("monitor.timelines_resolved")

    def track(self, observation: StreamObservation) -> None:
        """Start monitoring a URL (also primes blocklist/VT first-sight)."""
        self._tracked.append(observation)
        self._c_tracked.inc()
        for blocklist in self.blocklists.values():
            blocklist.observe(observation.url, observation.observed_at)
        self.virustotal.scan(observation.url, observation.observed_at)

    @property
    def n_tracked(self) -> int:
        return len(self._tracked)

    # -- timeline resolution -----------------------------------------------------

    def _blocklist_offset(
        self, blocklist: Blocklist, url: URL, first_seen: int
    ) -> Optional[int]:
        listed_at = blocklist.listing_time(url)
        if listed_at is None:
            return None
        offset = listed_at - first_seen
        offset = _round_up_to_poll(offset, self.poll_interval)
        if offset is None or offset > self.window_minutes:
            return None
        return offset

    def _site_removal_offset(self, url: URL, first_seen: int,
                             horizon_minutes: int) -> Optional[int]:
        site = self.web.site_for(url)
        if site is None or site.removed_at is None:
            return None
        offset = _round_up_to_poll(site.removed_at - first_seen, self.poll_interval)
        if offset is None or offset > horizon_minutes:
            return None
        return offset

    def _post_removal_offset(self, observation: StreamObservation) -> Optional[int]:
        platform = self.platforms.get(observation.platform)
        if platform is None:
            return None
        post = platform.get_post(observation.post.post_id)
        if post is None or post.removed_at is None:
            return None
        offset = post.removed_at - observation.observed_at
        offset = _round_up_to_poll(offset, self.poll_interval)
        if offset is None or offset > self.window_minutes:
            return None
        return offset

    def resolve(
        self,
        observation: StreamObservation,
        truth_label: bool = True,
        site_horizon_minutes: Optional[int] = None,
    ) -> UrlTimeline:
        """Resolve one observation's complete timeline."""
        first_seen = observation.observed_at
        timeline = UrlTimeline(
            url=str(observation.url),
            platform=observation.platform,
            fwb_name=observation.fwb_name,
            first_seen=first_seen,
            is_phishing_truth=truth_label,
        )
        for name, blocklist in self.blocklists.items():
            timeline.blocklist_offsets[name] = self._blocklist_offset(
                blocklist, observation.url, first_seen
            )
        timeline.site_removal_offset = self._site_removal_offset(
            observation.url, first_seen,
            self.window_minutes if site_horizon_minutes is None else site_horizon_minutes,
        )
        timeline.post_removal_offset = self._post_removal_offset(observation)
        for offset in VT_SAMPLE_OFFSETS:
            report = self.virustotal.scan(observation.url, first_seen + offset)
            timeline.vt_samples.append((offset, report.positives))
        return timeline

    def resolve_all(
        self,
        truth: Optional[Dict[str, bool]] = None,
        site_horizon_minutes: Optional[int] = None,
    ) -> List[UrlTimeline]:
        """Resolve timelines for every tracked URL."""
        timelines = []
        with self.instr.span("monitor.resolve_all"):
            for observation in self._tracked:
                label = True if truth is None else truth.get(str(observation.url), True)
                timelines.append(
                    self.resolve(observation, label, site_horizon_minutes)
                )
            self._c_resolved.inc(len(timelines))
        return timelines
