"""Streaming module (paper §4.1).

Polls Twitter (search API) and Facebook (CrowdTangle) every 10 minutes,
extracts URLs from fresh posts with the library's URL regex, and forwards
FWB-hosted URLs (plus, optionally, everything else for the self-hosted
comparison stream) downstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import STREAM_INTERVAL_MINUTES
from ..errors import StreamError
from ..obs.instrument import NULL_INSTRUMENTATION, Instrumentation
from ..simnet.url import URL
from ..simnet.web import Web
from ..social.facebook import CrowdTangleAPI
from ..social.posts import Post
from ..social.twitter import TwitterAPI


@dataclass(frozen=True)
class StreamObservation:
    """One URL observed in one post on one platform."""

    url: URL
    post: Post
    platform: str
    observed_at: int
    fwb_name: Optional[str]

    @property
    def is_fwb(self) -> bool:
        return self.fwb_name is not None


class StreamingModule:
    """The 10-minute social-stream poller."""

    def __init__(
        self,
        web: Web,
        twitter: TwitterAPI,
        crowdtangle: CrowdTangleAPI,
        interval_minutes: int = STREAM_INTERVAL_MINUTES,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        if interval_minutes <= 0:
            raise StreamError("interval must be positive")
        self.web = web
        self.twitter = twitter
        self.crowdtangle = crowdtangle
        self.interval_minutes = interval_minutes
        self._cursor: Optional[int] = None
        #: De-duplication across the whole run: each URL is handled once,
        #: at its first sighting.
        self._seen_urls: set = set()
        instr = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        self._c_posts = instr.counter("stream.posts_scanned")
        self._c_urls = instr.counter("stream.urls_extracted")
        self._c_duplicates = instr.counter("stream.urls_deduplicated")

    def poll(self, now: int) -> List[StreamObservation]:
        """Collect observations since the previous poll (or from 0)."""
        start = self._cursor if self._cursor is not None else 0
        if now < start:
            raise StreamError("stream polled backwards in time")
        observations: List[StreamObservation] = []
        posts: List[Tuple[str, Post]] = []
        posts += [("twitter", p) for p in self.twitter.search_recent(start, now)]
        posts += [("facebook", p) for p in self.crowdtangle.posts(start, now)]
        self._c_posts.inc(len(posts))
        for platform, post in posts:
            for url in post.urls:
                key = str(url)
                if key in self._seen_urls:
                    self._c_duplicates.inc()
                    continue
                self._seen_urls.add(key)
                self._c_urls.inc()
                service = self.web.fwb_for(url)
                observations.append(
                    StreamObservation(
                        url=url,
                        post=post,
                        platform=platform,
                        observed_at=now,
                        fwb_name=service.name if service is not None else None,
                    )
                )
        self._cursor = now
        return observations

    def run_window(self, start: int, end: int) -> List[StreamObservation]:
        """Poll repeatedly at the configured cadence over [start, end)."""
        if self._cursor is None:
            self._cursor = start
        observations = []
        tick = self._cursor + self.interval_minutes
        while tick <= end:
            observations.extend(self.poll(tick))
            tick += self.interval_minutes
        return observations
