"""The FreePhish classification module: the augmented StackModel.

This is the paper's detector ("Our Model" in Table 2): the Li et al.
two-layer StackModel trained on the FWB-adjusted feature set — the base 20
features minus (https, multi-TLD), plus (obfuscated FWB banner, noindex).
Reported performance: 0.97 accuracy, 0.96 F1, 2.8 s median runtime on the
authors' hardware.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import NotFittedError
from ..ml import StackModel, classification_summary
from ..ml.metrics import ClassificationSummary
from .features import FWB_FEATURE_NAMES
from .preprocess import ProcessedPage


@dataclass
class TimedPrediction:
    """A prediction plus its wall-clock cost (Table 2's runtime columns)."""

    label: int
    probability: float
    runtime_seconds: float


class FreePhishClassifier:
    """Augmented StackModel over the FWB feature set."""

    feature_names: Tuple[str, ...] = FWB_FEATURE_NAMES

    def __init__(
        self,
        n_estimators: int = 60,
        n_splits: int = 5,
        random_state: Optional[int] = 7,
        threshold: float = 0.5,
        model=None,
    ) -> None:
        """``model`` overrides the default StackModel with any estimator
        exposing ``fit``/``predict_proba`` — campaign simulations use a
        Random Forest here for speed, as §4 permits."""
        self.model = model if model is not None else StackModel(
            n_estimators=n_estimators,
            n_splits=n_splits,
            random_state=random_state,
        )
        self.threshold = threshold
        self._fitted = False

    # -- training -------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "FreePhishClassifier":
        self.model.fit(np.asarray(X, dtype=np.float64), np.asarray(y))
        self._fitted = True
        return self

    def fit_pages(
        self, pages: Sequence[ProcessedPage], labels: Sequence[int]
    ) -> "FreePhishClassifier":
        X = np.vstack([page.fwb_vector for page in pages])
        return self.fit(X, np.asarray(labels))

    # -- prediction -------------------------------------------------------------

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("FreePhishClassifier is not fitted")
        return self.model.predict_proba(X)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X)[:, 1] >= self.threshold).astype(np.int64)

    def classify_page(self, page: ProcessedPage) -> TimedPrediction:
        """Classify one processed page, timing the inference."""
        start = time.perf_counter()  # reprolint: disable=RP101,RP105 — runtime_seconds reports real inference latency
        probability = float(self.predict_proba(page.fwb_vector.reshape(1, -1))[0, 1])
        elapsed = time.perf_counter() - start  # reprolint: disable=RP101,RP105 — runtime_seconds reports real inference latency
        return TimedPrediction(
            label=int(probability >= self.threshold),
            probability=probability,
            runtime_seconds=elapsed,
        )

    def classify_pages(self, pages: Sequence[ProcessedPage]) -> List[TimedPrediction]:
        """Classify a batch of pages with **one** ``predict_proba`` call.

        Inference over the flattened ensembles is elementwise per row, so
        each returned probability is bit-identical to what
        :meth:`classify_page` would produce for that page alone. The
        measured runtime is amortized equally across the batch (Table 2's
        per-URL runtime column).
        """
        if not pages:
            return []
        start = time.perf_counter()  # reprolint: disable=RP101,RP105 — runtime_seconds reports real inference latency
        X = np.vstack([page.fwb_vector for page in pages])
        probabilities = self.predict_proba(X)[:, 1]
        elapsed = time.perf_counter() - start  # reprolint: disable=RP101,RP105 — runtime_seconds reports real inference latency
        per_page = elapsed / len(pages)
        return [
            TimedPrediction(
                label=int(probability >= self.threshold),
                probability=float(probability),
                runtime_seconds=per_page,
            )
            for probability in probabilities
        ]

    def is_phishing(self, page: ProcessedPage) -> bool:
        return self.classify_page(page).label == 1

    # -- evaluation --------------------------------------------------------------

    def evaluate(self, X: np.ndarray, y: np.ndarray) -> ClassificationSummary:
        return classification_summary(np.asarray(y), self.predict(X))
