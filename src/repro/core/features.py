"""URL, HTML, and FWB-specific feature extraction (paper §4.2).

The base StackModel (Li et al. 2019) uses 8 URL-based and 12 HTML-based
features. Two of those — the presence of ``https`` and multiple TLD tokens
— carry no signal for FWB-hosted pages (every FWB site is https with a
single TLD), so the paper's augmented model drops them and adds two
FWB-specific features:

* **Obfuscated FWB banner** — free-tier sites carry a service banner;
  phishers hide it with ``visibility:hidden``-style tricks;
* **Preventing indexing** — a ``noindex`` robots directive keeps the page
  out of search indexes that anti-phishing crawlers mine.

``FeatureExtractor`` emits both variants from a single page snapshot.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import FeatureError
from ..obs.instrument import NULL_INSTRUMENTATION, Instrumentation
from ..sitegen.brands import BrandCatalog, default_brand_catalog
from ..simnet.browser import PageSnapshot
from ..simnet.url import (
    URL,
    URLStringStats,
    count_sensitive_words,
    count_suspicious_symbols,
)
from ..webdoc import Document, parse_html

#: Feature order of the base StackModel (8 URL + 12 HTML).
BASE_FEATURE_NAMES: Tuple[str, ...] = (
    # URL-based (8)
    "url_length",
    "n_suspicious_symbols",
    "n_sensitive_words",
    "brand_in_url",
    "n_dots",
    "n_digits",
    "has_https",
    "n_tld_tokens",
    # HTML-based (12)
    "n_internal_links",
    "n_external_links",
    "n_empty_links",
    "has_login_form",
    "n_password_fields",
    "n_credential_inputs",
    "html_length",
    "n_iframes",
    "n_forms",
    "n_images",
    "external_form_action",
    "title_brand_mismatch",
)

#: The augmented model: https / multi-TLD replaced by the FWB pair.
FWB_FEATURE_NAMES: Tuple[str, ...] = tuple(
    name for name in BASE_FEATURE_NAMES if name not in ("has_https", "n_tld_tokens")
) + ("obfuscated_fwb_banner", "has_noindex")

#: The URL-derived prefix of the base schema: everything computable from the
#: URL string alone, without fetching the page. The serving layer's degraded
#: fast path (``repro.serve``) scores requests on exactly these features when
#: the full snapshot pipeline is overloaded.
URL_FEATURE_NAMES: Tuple[str, ...] = BASE_FEATURE_NAMES[:8]

_TLD_TOKENS = (".com", ".net", ".org", ".info", ".xyz", ".top", ".live", ".io", ".me", ".app", ".site")

_BANNER_CLASS_HINT = "fwb-banner"
_BANNER_TEXT_HINTS = (
    "powered by", "create your own", "create a free website", "made with",
    "report abuse", "blog at", "free website",
)

#: Default capacity of the snapshot-keyed feature/page caches.
DEFAULT_FEATURE_CACHE_SIZE = 2048


def snapshot_key(url: Union[URL, str], markup: str) -> str:
    """Deterministic content hash identifying one observed page version.

    The **only** sanctioned producer of feature-cache keys (reprolint
    RP304): every memoized feature vector or processed page is stored under
    ``snapshot_key(url, markup)``, so a re-observation whose markup changed
    in any way misses the cache and is re-featurized, while byte-identical
    re-observations skip HTML parsing entirely.
    """
    digest = hashlib.sha256()
    digest.update(str(url).encode("utf-8"))
    digest.update(b"\x00")
    digest.update(markup.encode("utf-8"))
    return "snap:" + digest.hexdigest()


@dataclass
class PageFeatures:
    """All raw feature values for one page; views select model variants."""

    values: Dict[str, float]

    def vector(self, names: Sequence[str]) -> np.ndarray:
        try:
            return np.asarray([self.values[name] for name in names], dtype=np.float64)
        except KeyError as exc:
            raise FeatureError(f"unknown feature requested: {exc}") from exc

    @property
    def base_vector(self) -> np.ndarray:
        return self.vector(BASE_FEATURE_NAMES)

    @property
    def fwb_vector(self) -> np.ndarray:
        return self.vector(FWB_FEATURE_NAMES)


class FeatureExtractor:
    """Extracts :class:`PageFeatures` from a URL + page snapshot/markup.

    Extraction is memoized under :func:`snapshot_key`: re-extracting a page
    whose (URL, markup) pair is unchanged returns the cached
    :class:`PageFeatures` without touching the DOM. The cache is a bounded
    LRU (``cache_size`` entries, 0 disables); hit/miss/eviction counts flow
    into the attached instrumentation as ``features.cache.*`` counters.
    """

    def __init__(
        self,
        catalog: Optional[BrandCatalog] = None,
        cache_size: int = DEFAULT_FEATURE_CACHE_SIZE,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.catalog = catalog if catalog is not None else default_brand_catalog()
        self._brand_tokens: List[Tuple[str, str]] = []
        for brand in self.catalog:
            for token in brand.tokens():
                if len(token) >= 4:
                    self._brand_tokens.append((token, brand.legitimate_domain))
        self.cache_size = cache_size
        self._cache: "OrderedDict[str, PageFeatures]" = OrderedDict()
        self.bind_instrumentation(instrumentation)

    def bind_instrumentation(
        self, instrumentation: Optional[Instrumentation]
    ) -> None:
        """(Re)attach the cache counters to an instrumentation object."""
        self._instr = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        self._c_hit = self._instr.counter("features.cache.hit")
        self._c_miss = self._instr.counter("features.cache.miss")
        self._c_evicted = self._instr.counter("features.cache.evicted")

    # -- URL features ------------------------------------------------------------

    def _brand_token_in(self, text: str) -> Optional[Tuple[str, str]]:
        text = text.lower()
        for token, legit_domain in self._brand_tokens:
            if token in text:
                return token, legit_domain
        return None

    def _url_features(self, url: URL) -> Dict[str, float]:
        stats = URLStringStats.of(url)
        text = str(url).lower()
        brand_hit = self._brand_token_in(url.host + url.path)
        return {
            "url_length": float(stats.length),
            "n_suspicious_symbols": float(stats.n_suspicious),
            "n_sensitive_words": float(stats.n_sensitive),
            "brand_in_url": 1.0 if brand_hit is not None else 0.0,
            "n_dots": float(stats.n_dots),
            "n_digits": float(stats.n_digits),
            "has_https": 1.0 if url.scheme == "https" else 0.0,
            "n_tld_tokens": float(sum(text.count(token) for token in _TLD_TOKENS)),
        }

    # -- HTML features -------------------------------------------------------------

    @staticmethod
    def _banner_elements(document: Document) -> List:
        def looks_like_banner(element) -> bool:
            if _BANNER_CLASS_HINT in element.classes or element.id == "fwb-banner":
                return True
            if element.tag in ("div", "footer"):
                text = element.text_content().lower()
                return any(hint in text for hint in _BANNER_TEXT_HINTS)
            return False

        return document.root.find_all(predicate=looks_like_banner)

    def _html_features(self, url: URL, document: Document, markup: str) -> Dict[str, float]:
        internal = external = empty = 0
        for anchor in document.links():
            href = anchor.get("href").strip()
            if not href or href in ("#", "javascript:void(0)"):
                empty += 1
            elif href.startswith(("http://", "https://")):
                target_host = href.split("//", 1)[1].split("/", 1)[0].lower()
                # Same registrable domain counts as internal: an FWB site
                # linking to its host's apex is not an outbound link.
                if target_host.endswith(url.registered_domain):
                    internal += 1
                else:
                    external += 1
            else:
                internal += 1

        forms = document.forms()
        password_fields = document.password_inputs()
        credential_inputs = document.credential_inputs()
        has_login_form = 0.0
        external_action = 0.0
        for form in forms:
            inputs = form.find_all("input")
            types = {i.get("type").lower() for i in inputs}
            if "password" in types or len(credential_inputs) >= 2:
                has_login_form = 1.0
            action = form.get("action").strip()
            if action.startswith(("http://", "https://")) and url.host not in action:
                external_action = 1.0

        title = document.title.lower()
        brand_hit = self._brand_token_in(title)
        mismatch = 0.0
        if brand_hit is not None:
            _token, legit_domain = brand_hit
            legit_core = legit_domain.split(".")[0]
            # Compare against the registrable domain only: a brand token
            # smuggled into the *subdomain* does not legitimize the host.
            if legit_core not in url.registered_domain:
                mismatch = 1.0

        banners = self._banner_elements(document)
        # Either hiding mechanism counts: inline visibility/display styles
        # (the paper's example) or an injected stylesheet rule.
        obfuscated = any(document.is_element_hidden(b) for b in banners)

        return {
            "n_internal_links": float(internal),
            "n_external_links": float(external),
            "n_empty_links": float(empty),
            "has_login_form": has_login_form,
            "n_password_fields": float(len(password_fields)),
            "n_credential_inputs": float(len(credential_inputs)),
            "html_length": float(len(markup)),
            "n_iframes": float(len(document.iframes())),
            "n_forms": float(len(forms)),
            "n_images": float(len(document.find_all("img"))),
            "external_form_action": external_action,
            "title_brand_mismatch": mismatch,
            "obfuscated_fwb_banner": 1.0 if obfuscated else 0.0,
            "has_noindex": 1.0 if document.has_noindex() else 0.0,
        }

    # -- public API ------------------------------------------------------------------

    def extract_url_only(self, url: URL) -> PageFeatures:
        """Extract only the URL-derived features — no page fetch required.

        The returned :class:`PageFeatures` carries just the
        :data:`URL_FEATURE_NAMES` columns; asking it for ``base_vector`` or
        ``fwb_vector`` raises :class:`~repro.errors.FeatureError`. This is
        the input to the serving layer's degraded fast path, which must
        produce a verdict even when the snapshot pipeline cannot keep up.
        """
        return PageFeatures(values=self._url_features(url))

    def extract(
        self,
        url: URL,
        page: Union[PageSnapshot, Document, str],
    ) -> PageFeatures:
        """Extract every feature from a page.

        ``page`` may be a browser snapshot, a parsed document, or raw
        markup; snapshots are the framework's normal path.
        """
        if isinstance(page, PageSnapshot):
            document, markup = page.document, page.markup
        elif isinstance(page, Document):
            document, markup = page, page.to_html()
        elif isinstance(page, str):
            # Parsing is deferred: a cache hit never needs the DOM.
            document, markup = None, page
        else:
            raise FeatureError(
                f"unsupported page type: {type(page).__name__}"
            )

        key = snapshot_key(url, markup) if self.cache_size > 0 else None
        if key is not None:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self._c_hit.inc()
                return cached
            self._c_miss.inc()
        if document is None:
            document = parse_html(markup)
        values = self._url_features(url)
        values.update(self._html_features(url, document, markup))
        features = PageFeatures(values=values)
        if key is not None:
            self._cache[key] = features
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
                self._c_evicted.inc()
        return features

    def extract_matrix(
        self,
        pairs: Sequence[Tuple[URL, Union[PageSnapshot, Document, str]]],
        names: Sequence[str] = FWB_FEATURE_NAMES,
    ) -> np.ndarray:
        """Feature matrix for a batch of (url, page) pairs."""
        return np.vstack([self.extract(url, page).vector(names) for url, page in pairs])
