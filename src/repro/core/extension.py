"""The FreePhish browser extension (paper §1/§7, Figure 13).

A Chromium extension that intercepts navigation and blocks FWB-hosted
phishing before the page renders. The simulated equivalent guards a
:class:`~repro.simnet.browser.Browser`: ``check`` combines three layers,
cheapest first —

1. a local verdict cache (previously resolved URLs);
2. the FreePhish backend feed (URLs the framework already detected);
3. on-the-fly classification of FWB-hosted pages with the shipped model.

Non-FWB URLs are allowed through (the extension's scope is FWB attacks;
ordinary Safe-Browsing covers the rest).

Since the ``repro.serve`` subsystem landed, the extension is a thin
client over :class:`~repro.serve.service.VerdictService`, which owns the
cache/feed/model layering (plus batching and admission control for the
high-throughput path). The extension keeps only what is genuinely
client-side: the user-override allowlist, the warning interstitial, and
its historical ``stats`` surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Set

from ..simnet.browser import Browser, FetchResult
from ..simnet.url import URL
from ..simnet.web import Web
from .classifier import FreePhishClassifier


class NavigationVerdict(str, Enum):
    ALLOWED = "allowed"
    BLOCKED_FEED = "blocked_feed"          # known-bad from the backend feed
    BLOCKED_CLASSIFIER = "blocked_classifier"  # flagged by the local model
    UNREACHABLE = "unreachable"


@dataclass
class NavigationResult:
    url: str
    verdict: NavigationVerdict
    #: Page content, only when navigation was allowed and succeeded.
    fetch: Optional[FetchResult] = None

    @property
    def blocked(self) -> bool:
        return self.verdict in (
            NavigationVerdict.BLOCKED_FEED,
            NavigationVerdict.BLOCKED_CLASSIFIER,
        )


class FreePhishExtension:
    """Navigation guard over the simulated browser."""

    def __init__(
        self,
        web: Web,
        classifier: FreePhishClassifier,
        browser: Optional[Browser] = None,
        feed: Optional[Set[str]] = None,
        service=None,
        instrumentation=None,
    ) -> None:
        self.web = web
        self.browser = browser if browser is not None else Browser(web)
        self.classifier = classifier
        if service is None:
            # Deferred import: repro.serve imports NavigationVerdict from
            # this module, so a top-level import here would be circular.
            from ..serve.service import VerdictService

            service = VerdictService(
                web,
                classifier,
                browser=self.browser,
                instrumentation=instrumentation,
            )
        #: The serving stack that owns the cache/feed/model request path.
        self.service = service
        if feed:
            self.service.update_feed(feed)
        #: URLs the user explicitly chose to proceed to ("Continue anyway").
        self.allowlist: Set[str] = set()
        self.stats = {"checked": 0, "blocked": 0, "overridden": 0}

    @property
    def feed(self) -> Set[str]:
        """Backend feed of URLs the FreePhish framework has confirmed.

        Lives on the service (normalized URL keys); exposed here for the
        extension's historical surface.
        """
        return self.service.feed

    def update_feed(self, urls) -> None:
        """Sync the backend detection feed into the extension."""
        self.service.update_feed(urls)

    def allow_anyway(self, url) -> None:
        """Record a user override: future checks let this URL through.

        Mirrors the "proceed anyway" escape hatch of real warning pages
        (Figure 10); overrides are counted in ``stats``.
        """
        self.allowlist.add(str(url))
        self.stats["overridden"] += 1

    def check(self, url: URL, now: int) -> NavigationVerdict:
        """Verdict for navigating to ``url`` at time ``now``."""
        return self.check_served(url, now).verdict

    def check_served(self, url: URL, now: int):
        """Like :meth:`check`, but returning the full
        :class:`~repro.serve.service.ServedVerdict` — verdict plus the
        serving tier that produced it (``served_from``)."""
        from ..serve.service import ServedFrom, ServedVerdict

        self.stats["checked"] += 1
        if str(url) in self.allowlist:
            return ServedVerdict(
                url=url,
                verdict=NavigationVerdict.ALLOWED,
                served_from=ServedFrom.ALLOWLIST,
            )
        served = self.service.check(url, now)
        if served.blocked:
            self.stats["blocked"] += 1
        return served

    def navigate(self, url: URL, now: int) -> NavigationResult:
        """Attempt a guarded navigation; blocked URLs never hit the network."""
        verdict = self.check(url, now)
        if verdict in (NavigationVerdict.BLOCKED_FEED,
                       NavigationVerdict.BLOCKED_CLASSIFIER):
            return NavigationResult(url=str(url), verdict=verdict)
        fetch = self.browser.fetch(url, now)
        if not fetch.ok:
            return NavigationResult(
                url=str(url), verdict=NavigationVerdict.UNREACHABLE
            )
        return NavigationResult(url=str(url), verdict=verdict, fetch=fetch)

    def warning_page(self, url: URL, verdict: NavigationVerdict) -> str:
        """The interstitial warning page shown instead of a blocked site.

        The markup mirrors Figure 13: a full-screen alert naming the URL,
        the detection source, and a (deliberately de-emphasised) proceed
        link whose use is recorded via :meth:`allow_anyway`.
        """
        source = (
            "the FreePhish detection feed"
            if verdict is NavigationVerdict.BLOCKED_FEED
            else "on-device analysis of the page"
        )
        return (
            "<!DOCTYPE html><html><head><title>Warning: suspected phishing"
            "</title><style>"
            "body{background:#b71c1c;color:#fff;font-family:sans-serif;"
            "text-align:center;padding-top:12vh}"
            ".panel{max-width:640px;margin:0 auto}"
            ".url{font-family:monospace;background:rgba(0,0,0,.25);"
            "padding:4px 8px;border-radius:4px}"
            ".proceed{color:#ffcdd2;font-size:12px}"
            "</style></head><body><div class='panel'>"
            "<h1>&#9888; Suspected phishing site blocked</h1>"
            f"<p>FreePhish blocked <span class='url'>{url}</span>.</p>"
            f"<p>This page was flagged by {source} as an attack hosted on a "
            "free website-building service.</p>"
            "<p><a href='javascript:history.back()'>Go back (recommended)</a></p>"
            "<p class='proceed'><a id='proceed-anyway' href='#'>"
            "I understand the risk, continue anyway</a></p>"
            "</div></body></html>"
        )
