"""LightGBM-style boosting: histogram binning + leaf-wise tree growth.

The two signature LightGBM techniques reproduced here:

* **Histogram binning** — each feature is quantized once into at most
  ``max_bins`` buckets; split search then scans bin boundaries instead of
  sorted raw values, making each split O(bins) after an O(n) histogram
  build.
* **Leaf-wise (best-first) growth** — instead of expanding level by level,
  the tree repeatedly splits the leaf with the highest gain until
  ``num_leaves`` is reached, yielding deeper, more asymmetric trees for the
  same leaf budget.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..errors import NotFittedError, TrainingError
from .flat import FlatForest


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


class _Binner:
    """Quantile-based feature binning shared by all trees of the ensemble."""

    def __init__(self, max_bins: int) -> None:
        self.max_bins = max_bins
        self.bin_edges: List[np.ndarray] = []

    def fit(self, X: np.ndarray) -> "_Binner":
        self.bin_edges = []
        for j in range(X.shape[1]):
            column = X[:, j]
            quantiles = np.quantile(
                column, np.linspace(0, 1, self.max_bins + 1)[1:-1]
            )
            edges = np.unique(quantiles)
            self.bin_edges.append(edges)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        binned = np.empty(X.shape, dtype=np.int32)
        for j, edges in enumerate(self.bin_edges):
            binned[:, j] = np.searchsorted(edges, X[:, j], side="right")
        return binned

    def threshold(self, feature: int, bin_index: int) -> float:
        """Raw-space threshold equivalent to ``bin <= bin_index``."""
        edges = self.bin_edges[feature]
        if len(edges) == 0:
            return np.inf
        bin_index = min(bin_index, len(edges) - 1)
        return float(edges[bin_index])


@dataclass
class _Leaf:
    indices: np.ndarray
    value: float
    # Set when the leaf is split:
    feature: int = -1
    threshold_bin: int = -1
    left: Optional["_Leaf"] = None
    right: Optional["_Leaf"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class _LGBMTree:
    """One leaf-wise-grown tree over pre-binned features."""

    def __init__(
        self,
        num_leaves: int,
        min_data_in_leaf: int,
        reg_lambda: float,
        min_gain: float,
    ) -> None:
        self.num_leaves = num_leaves
        self.min_data_in_leaf = min_data_in_leaf
        self.reg_lambda = reg_lambda
        self.min_gain = min_gain
        self.root: Optional[_Leaf] = None

    def _leaf_value(self, grad_sum: float, hess_sum: float) -> float:
        return -grad_sum / (hess_sum + self.reg_lambda)

    def _best_split(
        self,
        binned: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        indices: np.ndarray,
    ) -> Optional[Tuple[float, int, int, np.ndarray, np.ndarray]]:
        """Best (gain, feature, bin, left_idx, right_idx) for one leaf."""
        g_total = grad[indices].sum()
        h_total = hess[indices].sum()
        parent_score = g_total ** 2 / (h_total + self.reg_lambda)
        best = None
        best_gain = self.min_gain
        sub = binned[indices]
        for feature in range(binned.shape[1]):
            column = sub[:, feature]
            n_bins = int(column.max()) + 1 if column.size else 1
            if n_bins < 2:
                continue
            g_hist = np.bincount(column, weights=grad[indices], minlength=n_bins)
            h_hist = np.bincount(column, weights=hess[indices], minlength=n_bins)
            c_hist = np.bincount(column, minlength=n_bins)
            g_left = np.cumsum(g_hist)[:-1]
            h_left = np.cumsum(h_hist)[:-1]
            c_left = np.cumsum(c_hist)[:-1]
            valid = (c_left >= self.min_data_in_leaf) & (
                (indices.size - c_left) >= self.min_data_in_leaf
            )
            if not valid.any():
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                gain = 0.5 * (
                    g_left ** 2 / (h_left + self.reg_lambda)
                    + (g_total - g_left) ** 2 / (h_total - h_left + self.reg_lambda)
                    - parent_score
                )
            gain = np.where(valid, gain, -np.inf)
            idx = int(np.argmax(gain))
            if gain[idx] > best_gain:
                mask = column <= idx
                best_gain = float(gain[idx])
                best = (best_gain, feature, idx, indices[mask], indices[~mask])
        return best

    def fit(self, binned: np.ndarray, grad: np.ndarray, hess: np.ndarray) -> None:
        all_indices = np.arange(binned.shape[0])
        self.root = _Leaf(
            indices=all_indices,
            value=self._leaf_value(grad.sum(), hess.sum()),
        )
        # Max-heap of candidate splits, keyed by -gain; tie-break by counter.
        heap: List[Tuple[float, int, _Leaf, tuple]] = []
        counter = 0

        def push(leaf: _Leaf) -> None:
            nonlocal counter
            split = self._best_split(binned, grad, hess, leaf.indices)
            if split is not None:
                heapq.heappush(heap, (-split[0], counter, leaf, split))
                counter += 1

        push(self.root)
        n_leaves = 1
        while heap and n_leaves < self.num_leaves:
            _neg_gain, _tie, leaf, split = heapq.heappop(heap)
            _gain, feature, bin_idx, left_idx, right_idx = split
            leaf.feature = feature
            leaf.threshold_bin = bin_idx
            leaf.left = _Leaf(
                indices=left_idx,
                value=self._leaf_value(grad[left_idx].sum(), hess[left_idx].sum()),
            )
            leaf.right = _Leaf(
                indices=right_idx,
                value=self._leaf_value(grad[right_idx].sum(), hess[right_idx].sum()),
            )
            n_leaves += 1
            push(leaf.left)
            push(leaf.right)
        # Free training index arrays; prediction does not need them.
        stack = [self.root]
        while stack:
            node = stack.pop()
            node.indices = np.empty(0, dtype=np.int64)
            if not node.is_leaf:
                stack.extend((node.left, node.right))

    def predict_binned(self, binned: np.ndarray) -> np.ndarray:
        out = np.empty(binned.shape[0], dtype=np.float64)
        stack = [(self.root, np.arange(binned.shape[0]))]
        while stack:
            node, indices = stack.pop()
            if node is None or indices.size == 0:
                continue
            if node.is_leaf:
                out[indices] = node.value
                continue
            mask = binned[indices, node.feature] <= node.threshold_bin
            stack.append((node.left, indices[mask]))
            stack.append((node.right, indices[~mask]))
        return out


class LightGBMClassifier:
    """Binary classifier with histogram-binned, leaf-wise boosting."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        num_leaves: int = 15,
        max_bins: int = 64,
        min_data_in_leaf: int = 5,
        reg_lambda: float = 1.0,
        min_gain: float = 0.0,
        random_state: Optional[int] = None,
    ) -> None:
        if n_estimators <= 0:
            raise TrainingError("n_estimators must be positive")
        if num_leaves < 2:
            raise TrainingError("num_leaves must be at least 2")
        if max_bins < 2:
            raise TrainingError("max_bins must be at least 2")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.num_leaves = num_leaves
        self.max_bins = max_bins
        self.min_data_in_leaf = min_data_in_leaf
        self.reg_lambda = reg_lambda
        self.min_gain = min_gain
        self.random_state = random_state
        self._binner: Optional[_Binner] = None
        self._trees: List[_LGBMTree] = []
        self._base_score = 0.0
        self._flat: Optional[FlatForest] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LightGBMClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.shape[0] != X.shape[0]:
            raise TrainingError("bad shapes for X/y")
        if not np.isin(np.unique(y), (0.0, 1.0)).all():
            raise TrainingError("LightGBMClassifier expects binary 0/1 labels")

        self._flat = None
        self._binner = _Binner(self.max_bins).fit(X)
        binned = self._binner.transform(X)
        positive = min(max(float(y.mean()), 1e-6), 1 - 1e-6)
        self._base_score = float(np.log(positive / (1.0 - positive)))
        raw = np.full(y.shape[0], self._base_score)
        self._trees = []
        for _ in range(self.n_estimators):
            probabilities = _sigmoid(raw)
            grad = probabilities - y
            hess = probabilities * (1.0 - probabilities)
            tree = _LGBMTree(
                num_leaves=self.num_leaves,
                min_data_in_leaf=self.min_data_in_leaf,
                reg_lambda=self.reg_lambda,
                min_gain=self.min_gain,
            )
            tree.fit(binned, grad, hess)
            raw = raw + self.learning_rate * tree.predict_binned(binned)
            self._trees.append(tree)
        return self

    def _compiled(self) -> FlatForest:
        """The flattened ensemble over *binned* features, compiled lazily.

        Thresholds are the trees' integer ``threshold_bin`` values; bin
        indices are far below 2**53, so comparing them as float64 is exact.
        """
        if self._flat is None:
            self._flat = FlatForest.from_trees(
                [tree.root for tree in self._trees]
            )
        return self._flat

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if not self._trees or self._binner is None:
            raise NotFittedError("LightGBMClassifier is not fitted")
        X = np.asarray(X, dtype=np.float64)
        binned = self._binner.transform(X)
        return self._compiled().accumulate(
            binned, self._base_score, self.learning_rate
        )

    def decision_function_reference(self, X: np.ndarray) -> np.ndarray:
        """Per-row reference walk; bit-identical to :meth:`decision_function`."""
        if not self._trees or self._binner is None:
            raise NotFittedError("LightGBMClassifier is not fitted")
        X = np.asarray(X, dtype=np.float64)
        binned = self._binner.transform(X)
        raw = np.full(X.shape[0], self._base_score)
        for tree in self._trees:
            raw += self.learning_rate * tree.predict_binned(binned)
        return raw

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        p = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p, p])

    def predict_proba_reference(self, X: np.ndarray) -> np.ndarray:
        p = _sigmoid(self.decision_function_reference(X))
        return np.column_stack([1.0 - p, p])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(np.int64)
