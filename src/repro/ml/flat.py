"""Flattened tree-ensemble inference (treelite/sklearn-style).

Every ensemble in this package stores its trees as linked node objects and
predicts by routing index partitions through them in Python — fine for one
tree, but a 40-tree forest walks 40 object graphs per call. The
:class:`FlatForest` compiler converts a *fitted* ensemble into five parallel
numpy arrays (feature index, threshold, left child, right child, leaf
value) and evaluates whole batches with **vectorized level-order descent**:
all rows of all trees advance one level per iteration, so a batch costs
``max_depth`` fused gather/compare/select passes instead of a Python loop
per node.

Equivalence contract
--------------------

The flat path must be **bit-identical** to the per-row reference walk:

* Leaves self-loop (``left == right == self``), so running the descent for
  a fixed ``max_depth`` iterations parks every row on its leaf without
  branching on "is this row done?".
* Comparisons are exactly the reference's ``x <= threshold``; a NaN feature
  value compares false and routes right, as the reference's boolean-mask
  partition does.
* :meth:`FlatForest.leaf_values` returns the per-tree leaf-value matrix so
  callers can reproduce the reference's *sequential* accumulation order
  (``raw += lr * tree_t`` for t = 0, 1, ...) — never a pairwise
  ``values.sum(axis=0)``, which would change floating-point results.

The compiler accepts any node shape used in this package: ``tree._Node``,
``xgb._XGBNode`` (``threshold``) and ``lgbm._Leaf`` (``threshold_bin``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import TrainingError


def _node_threshold(node) -> float:
    """Split threshold for an internal node of any supported shape.

    LightGBM's pre-binned ``_Leaf`` nodes carry an integer ``threshold_bin``
    instead of a raw-space ``threshold``; small bin indices are exact in
    float64, so ``binned <= threshold`` compares identically to the
    reference's integer comparison.
    """
    threshold = getattr(node, "threshold", None)
    if threshold is not None:
        return float(threshold)
    return float(node.threshold_bin)


class FlatForest:
    """A fitted tree ensemble compiled into parallel numpy arrays.

    Attributes
    ----------
    feature, threshold, left, right, value:
        One entry per node across all trees. ``feature`` is ``-1`` for
        leaves; ``left``/``right`` point at the node itself for leaves
        (the self-loop that makes fixed-depth descent exact).
    roots:
        Index of each tree's root node.
    max_depth:
        Deepest tree in the ensemble; the descent iteration count.
    """

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        value: np.ndarray,
        roots: np.ndarray,
        max_depth: int,
        n_features: Optional[int] = None,
    ) -> None:
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right
        self.value = value
        self.roots = roots
        self.max_depth = int(max_depth)
        self.n_features = n_features
        # Leaves gather column 0 during descent; the comparison result is
        # irrelevant because both children point back at the leaf.
        self._feature_safe = np.where(feature < 0, 0, feature)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_trees(
        cls, tree_roots: Sequence[object], n_features: Optional[int] = None
    ) -> "FlatForest":
        """Compile a list of fitted tree root nodes into one flat forest.

        Supports every node shape in this package: leaves are detected via
        ``left is None``; internal thresholds come from ``threshold`` or,
        for pre-binned LightGBM trees, ``threshold_bin``.
        """
        if not tree_roots:
            raise TrainingError("cannot flatten an empty ensemble")
        features: List[int] = []
        thresholds: List[float] = []
        lefts: List[int] = []
        rights: List[int] = []
        values: List[float] = []
        roots: List[int] = []
        max_depth = 0

        for root in tree_roots:
            if root is None:
                raise TrainingError("cannot flatten an unfitted tree")
            roots.append(len(features))
            # Iterative preorder walk; children get their indices assigned
            # when first reserved, so left/right are patched after the push.
            stack = [(root, 0, -1, False)]
            while stack:
                node, depth, parent_index, is_right = stack.pop()
                index = len(features)
                if parent_index >= 0:
                    if is_right:
                        rights[parent_index] = index
                    else:
                        lefts[parent_index] = index
                max_depth = max(max_depth, depth)
                if node.left is None:  # leaf
                    features.append(-1)
                    thresholds.append(0.0)
                    lefts.append(index)
                    rights.append(index)
                    values.append(float(node.value))
                    continue
                features.append(int(node.feature))
                thresholds.append(_node_threshold(node))
                lefts.append(-1)
                rights.append(-1)
                values.append(float(node.value))
                # Push right first so left is visited (and laid out) first.
                stack.append((node.right, depth + 1, index, True))
                stack.append((node.left, depth + 1, index, False))

        return cls(
            feature=np.asarray(features, dtype=np.int64),
            threshold=np.asarray(thresholds, dtype=np.float64),
            left=np.asarray(lefts, dtype=np.int64),
            right=np.asarray(rights, dtype=np.int64),
            value=np.asarray(values, dtype=np.float64),
            roots=np.asarray(roots, dtype=np.int64),
            max_depth=max_depth,
            n_features=n_features,
        )

    # -- introspection --------------------------------------------------------

    @property
    def n_trees(self) -> int:
        return int(self.roots.shape[0])

    @property
    def n_nodes(self) -> int:
        return int(self.feature.shape[0])

    # -- inference ------------------------------------------------------------

    def leaf_values(self, X: np.ndarray) -> np.ndarray:
        """Per-tree leaf values for every row: shape ``(n_trees, n_rows)``.

        One vectorized level-order descent advances all rows of all trees
        simultaneously. Callers accumulate the rows of the result in tree
        order to match the reference implementations bit-for-bit.
        """
        X = np.asarray(X)
        if X.ndim != 2:
            raise TrainingError(f"X must be 2-D, got shape {X.shape}")
        if self.n_features is not None and X.shape[1] != self.n_features:
            raise TrainingError(
                f"expected {self.n_features} features, got shape {X.shape}"
            )
        n = X.shape[0]
        node = np.repeat(self.roots[:, None], n, axis=1)
        if n == 0:
            return self.value[node]
        row = np.arange(n)[None, :]
        for _ in range(self.max_depth):
            go_left = X[row, self._feature_safe[node]] <= self.threshold[node]
            node = np.where(go_left, self.left[node], self.right[node])
        return self.value[node]

    def accumulate(
        self,
        X: np.ndarray,
        base_score: float,
        learning_rate: float,
    ) -> np.ndarray:
        """Boosted raw scores: ``base + Σ_t lr * tree_t(X)`` in tree order.

        The per-tree loop is deliberate: it reproduces the reference
        implementations' sequential floating-point accumulation exactly.
        """
        values = self.leaf_values(X)
        raw = np.full(X.shape[0], base_score)
        for t in range(values.shape[0]):
            raw += learning_rate * values[t]
        return raw
