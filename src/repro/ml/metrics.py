"""Binary-classification metrics used throughout the evaluation (Table 2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..errors import TrainingError


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).astype(np.int64).ravel()
    y_pred = np.asarray(y_pred).astype(np.int64).ravel()
    if y_true.shape != y_pred.shape:
        raise TrainingError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise TrainingError("empty label arrays")
    return y_true, y_pred


def confusion_matrix(y_true, y_pred) -> np.ndarray:
    """2x2 matrix ``[[tn, fp], [fn, tp]]``."""
    y_true, y_pred = _validate(y_true, y_pred)
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    return np.array([[tn, fp], [fn, tp]], dtype=np.int64)


def accuracy_score(y_true, y_pred) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def precision_score(y_true, y_pred) -> float:
    matrix = confusion_matrix(y_true, y_pred)
    tp, fp = matrix[1, 1], matrix[0, 1]
    return float(tp / (tp + fp)) if (tp + fp) > 0 else 0.0


def recall_score(y_true, y_pred) -> float:
    matrix = confusion_matrix(y_true, y_pred)
    tp, fn = matrix[1, 1], matrix[1, 0]
    return float(tp / (tp + fn)) if (tp + fn) > 0 else 0.0


def f1_score(y_true, y_pred) -> float:
    precision = precision_score(y_true, y_pred)
    recall = recall_score(y_true, y_pred)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


@dataclass(frozen=True)
class ClassificationSummary:
    """One row of Table 2."""

    accuracy: float
    precision: float
    recall: float
    f1: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "accuracy": self.accuracy,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }


def classification_summary(y_true, y_pred) -> ClassificationSummary:
    return ClassificationSummary(
        accuracy=accuracy_score(y_true, y_pred),
        precision=precision_score(y_true, y_pred),
        recall=recall_score(y_true, y_pred),
        f1=f1_score(y_true, y_pred),
    )


def roc_auc_score(y_true, scores) -> float:
    """AUC via the Mann-Whitney rank statistic (tie-aware)."""
    y_true = np.asarray(y_true).astype(np.int64).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if y_true.shape != scores.shape:
        raise TrainingError("shape mismatch between labels and scores")
    n_pos = int(y_true.sum())
    n_neg = y_true.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise TrainingError("roc_auc_score needs both classes present")
    order = np.argsort(scores, kind="stable")
    ranks = np.empty_like(order, dtype=np.float64)
    ranks[order] = np.arange(1, scores.size + 1)
    # Average ranks over ties.
    sorted_scores = scores[order]
    i = 0
    while i < sorted_scores.size:
        j = i
        while j + 1 < sorted_scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + j + 2) / 2.0
        i = j + 1
    rank_sum = ranks[y_true == 1].sum()
    return float((rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))
