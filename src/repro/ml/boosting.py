"""Classic gradient-boosted decision trees (GBDT) for binary classification.

Friedman-style boosting with logistic loss: each stage fits a CART
regression tree to the negative gradient (residual ``y - p``) and the
ensemble accumulates ``learning_rate``-scaled tree outputs in log-odds
space. This is the "GBDT" member of the StackModel's learner trio and the
final-layer combiner in Li et al.'s architecture.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import NotFittedError, TrainingError
from .flat import FlatForest
from .tree import DecisionTreeRegressor


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


class GradientBoostingClassifier:
    """Binary GBDT with logistic loss.

    Parameters mirror the conventional implementation: ``n_estimators``
    boosting stages of depth-``max_depth`` trees, shrunk by
    ``learning_rate``; ``subsample`` < 1 enables stochastic gradient
    boosting.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        random_state: Optional[int] = None,
        early_stopping_rounds: Optional[int] = None,
        validation_fraction: float = 0.15,
    ) -> None:
        """``early_stopping_rounds`` holds out ``validation_fraction`` of
        the training data and stops boosting once validation log-loss has
        not improved for that many consecutive stages, truncating the
        ensemble at the best stage."""
        if n_estimators <= 0:
            raise TrainingError("n_estimators must be positive")
        if not 0.0 < learning_rate <= 1.0:
            raise TrainingError("learning_rate must lie in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise TrainingError("subsample must lie in (0, 1]")
        if early_stopping_rounds is not None and early_stopping_rounds < 1:
            raise TrainingError("early_stopping_rounds must be positive")
        if not 0.0 < validation_fraction < 1.0:
            raise TrainingError("validation_fraction must lie in (0, 1)")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.random_state = random_state
        self.early_stopping_rounds = early_stopping_rounds
        self.validation_fraction = validation_fraction
        self._trees: List[DecisionTreeRegressor] = []
        self._base_score = 0.0
        self._n_features = 0
        self._flat: Optional[FlatForest] = None
        #: Per-stage validation log-loss when early stopping is active.
        self.validation_curve: List[float] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise TrainingError("bad shapes for X/y")
        if not np.isin(np.unique(y), (0.0, 1.0)).all():
            raise TrainingError("GradientBoostingClassifier expects binary 0/1 labels")
        self._n_features = X.shape[1]
        self._flat = None
        rng = np.random.default_rng(self.random_state)

        validation_X = validation_y = None
        if self.early_stopping_rounds is not None:
            n_validation = max(1, int(round(self.validation_fraction * y.shape[0])))
            if y.shape[0] - n_validation < 2:
                raise TrainingError("too few samples for early stopping")
            order = rng.permutation(y.shape[0])
            validation_idx, train_idx = order[:n_validation], order[n_validation:]
            validation_X, validation_y = X[validation_idx], y[validation_idx]
            X, y = X[train_idx], y[train_idx]

        positive = float(y.mean())
        positive = min(max(positive, 1e-6), 1 - 1e-6)
        self._base_score = float(np.log(positive / (1.0 - positive)))
        raw = np.full(y.shape[0], self._base_score)
        self._trees = []
        self.validation_curve = []

        validation_raw = (
            np.full(validation_y.shape[0], self._base_score)
            if validation_y is not None else None
        )
        best_loss = np.inf
        best_stage = 0

        n = y.shape[0]
        sample_size = max(1, int(round(self.subsample * n)))
        for stage in range(self.n_estimators):
            probabilities = _sigmoid(raw)
            residual = y - probabilities
            if self.subsample < 1.0:
                indices = rng.choice(n, size=sample_size, replace=False)
            else:
                indices = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                random_state=None if self.random_state is None else self.random_state + stage,
            )
            tree.fit(X[indices], residual[indices])
            raw = raw + self.learning_rate * tree.predict(X)
            self._trees.append(tree)

            if validation_raw is not None:
                validation_raw = (
                    validation_raw + self.learning_rate * tree.predict(validation_X)
                )
                p = np.clip(_sigmoid(validation_raw), 1e-12, 1 - 1e-12)
                loss = float(
                    -np.mean(validation_y * np.log(p)
                             + (1 - validation_y) * np.log(1 - p))
                )
                self.validation_curve.append(loss)
                if loss < best_loss - 1e-9:
                    best_loss = loss
                    best_stage = stage
                elif stage - best_stage >= self.early_stopping_rounds:
                    self._trees = self._trees[: best_stage + 1]
                    break
        return self

    def _compiled(self) -> FlatForest:
        """The flattened ensemble, compiled lazily after ``fit``."""
        if self._flat is None:
            self._flat = FlatForest.from_trees(
                [tree._root for tree in self._trees],
                n_features=self._n_features,
            )
        return self._flat

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise NotFittedError("GradientBoostingClassifier is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return self._compiled().accumulate(X, self._base_score, self.learning_rate)

    def decision_function_reference(self, X: np.ndarray) -> np.ndarray:
        """Per-row reference walk; bit-identical to :meth:`decision_function`."""
        if not self._trees:
            raise NotFittedError("GradientBoostingClassifier is not fitted")
        X = np.asarray(X, dtype=np.float64)
        raw = np.full(X.shape[0], self._base_score)
        for tree in self._trees:
            raw += self.learning_rate * tree.predict(X)
        return raw

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        p = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p, p])

    def predict_proba_reference(self, X: np.ndarray) -> np.ndarray:
        p = _sigmoid(self.decision_function_reference(X))
        return np.column_stack([1.0 - p, p])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(np.int64)

    @property
    def n_fitted_trees(self) -> int:
        return len(self._trees)
