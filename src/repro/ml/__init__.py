"""Machine-learning substrate, implemented from scratch on numpy.

The paper's classification module (§4.2) stacks three boosted-tree learners
— GBDT, XGBoost, and LightGBM — in the two-layer architecture of Li et al.
(2019), and the FreePhish pipeline also uses a Random Forest. This package
provides those learners:

* :mod:`repro.ml.tree` — CART regression/classification trees;
* :mod:`repro.ml.boosting` — classic gradient-boosted trees (GBDT);
* :mod:`repro.ml.xgb` — second-order, regularized boosting (XGBoost-style);
* :mod:`repro.ml.lgbm` — histogram-binned, leaf-wise boosting (LightGBM-style);
* :mod:`repro.ml.forest` — random forests;
* :mod:`repro.ml.stacking` — the two-layer StackModel;
* :mod:`repro.ml.flat` — flattened, vectorized batch inference over any of
  the tree ensembles above (bit-identical to the per-row reference walks);
* :mod:`repro.ml.metrics`, :mod:`repro.ml.crossval` — evaluation utilities.
"""

from .tree import DecisionTreeRegressor, DecisionTreeClassifier
from .flat import FlatForest
from .boosting import GradientBoostingClassifier
from .xgb import XGBoostClassifier
from .lgbm import LightGBMClassifier
from .forest import RandomForestClassifier
from .stacking import StackingClassifier, StackModel
from .metrics import (
    accuracy_score,
    precision_score,
    recall_score,
    f1_score,
    confusion_matrix,
    classification_summary,
)
from .crossval import train_test_split, kfold_indices, cross_val_predict
from .importance import FeatureImportance, permutation_importance

__all__ = [
    "DecisionTreeRegressor",
    "DecisionTreeClassifier",
    "FlatForest",
    "GradientBoostingClassifier",
    "XGBoostClassifier",
    "LightGBMClassifier",
    "RandomForestClassifier",
    "StackingClassifier",
    "StackModel",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "confusion_matrix",
    "classification_summary",
    "train_test_split",
    "kfold_indices",
    "cross_val_predict",
    "FeatureImportance",
    "permutation_importance",
]
