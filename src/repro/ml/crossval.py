"""Train/test splitting and K-fold utilities.

The paper trains with a 70/30 split and a "strategy similar to K-fold
cross-validation" for producing the stacking layers' out-of-fold
predictions; both live here.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..errors import TrainingError


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_size: float = 0.3,
    random_state: Optional[int] = None,
    stratify: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle-split into train/test, stratified by label by default."""
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise TrainingError("X and y row counts differ")
    if not 0.0 < test_size < 1.0:
        raise TrainingError("test_size must lie in (0, 1)")
    rng = np.random.default_rng(random_state)
    n = X.shape[0]
    if stratify:
        test_mask = np.zeros(n, dtype=bool)
        for label in np.unique(y):
            indices = np.flatnonzero(y == label)
            rng.shuffle(indices)
            n_test = int(round(test_size * indices.size))
            test_mask[indices[:n_test]] = True
    else:
        indices = rng.permutation(n)
        test_mask = np.zeros(n, dtype=bool)
        test_mask[indices[: int(round(test_size * n))]] = True
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


def kfold_indices(
    n_samples: int,
    n_splits: int = 5,
    random_state: Optional[int] = None,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Shuffled K-fold (train_idx, test_idx) pairs covering every sample once."""
    if n_splits < 2:
        raise TrainingError("n_splits must be at least 2")
    if n_samples < n_splits:
        raise TrainingError("more folds than samples")
    rng = np.random.default_rng(random_state)
    permutation = rng.permutation(n_samples)
    folds = np.array_split(permutation, n_splits)
    out = []
    for i in range(n_splits):
        test_idx = folds[i]
        train_idx = np.concatenate([folds[j] for j in range(n_splits) if j != i])
        out.append((np.sort(train_idx), np.sort(test_idx)))
    return out


def cross_val_predict(
    model_factory,
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 5,
    random_state: Optional[int] = None,
) -> np.ndarray:
    """Out-of-fold positive-class probabilities for every sample.

    ``model_factory`` is a zero-argument callable returning an unfitted
    estimator with ``fit``/``predict_proba``. Each sample's prediction
    comes from the fold in which it was held out — the stacking layers'
    leak-free inputs.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    predictions = np.empty(X.shape[0], dtype=np.float64)
    for train_idx, test_idx in kfold_indices(X.shape[0], n_splits, random_state):
        model = model_factory()
        model.fit(X[train_idx], y[train_idx])
        predictions[test_idx] = model.predict_proba(X[test_idx])[:, 1]
    return predictions
