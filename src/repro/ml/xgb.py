"""XGBoost-style boosting: second-order gradients with L2 regularization.

Differences from classic GBDT that this implementation reproduces:

* split gain uses both gradient and hessian statistics,
  ``gain = 1/2 [ G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ) ] − γ``;
* leaf values are the regularized Newton step ``−G/(H+λ)``;
* ``gamma`` prunes splits whose gain does not clear the threshold;
* column subsampling per tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import NotFittedError, TrainingError
from .flat import FlatForest


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


@dataclass
class _XGBNode:
    value: float = 0.0
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_XGBNode"] = None
    right: Optional["_XGBNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class _XGBTree:
    """One regularized tree grown on (gradient, hessian) statistics."""

    def __init__(
        self,
        max_depth: int,
        min_child_weight: float,
        reg_lambda: float,
        gamma: float,
        colsample: float,
        rng: np.random.Generator,
    ) -> None:
        self.max_depth = max_depth
        self.min_child_weight = min_child_weight
        self.reg_lambda = reg_lambda
        self.gamma = gamma
        self.colsample = colsample
        self.rng = rng
        self.root: Optional[_XGBNode] = None

    def fit(self, X: np.ndarray, grad: np.ndarray, hess: np.ndarray) -> None:
        n_features = X.shape[1]
        n_cols = max(1, int(round(self.colsample * n_features)))
        columns = (
            np.arange(n_features)
            if n_cols >= n_features
            else self.rng.choice(n_features, size=n_cols, replace=False)
        )
        self.root = self._grow(X, grad, hess, depth=0, columns=columns)

    def _leaf_value(self, grad_sum: float, hess_sum: float) -> float:
        return -grad_sum / (hess_sum + self.reg_lambda)

    def _grow(
        self,
        X: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        depth: int,
        columns: np.ndarray,
    ) -> _XGBNode:
        g_total = grad.sum()
        h_total = hess.sum()
        node = _XGBNode(value=self._leaf_value(g_total, h_total))
        if depth >= self.max_depth or X.shape[0] < 2:
            return node

        parent_score = g_total ** 2 / (h_total + self.reg_lambda)
        best_gain = self.gamma
        best = None
        for feature in columns:
            order = np.argsort(X[:, feature], kind="stable")
            sorted_col = X[order, feature]
            g = np.cumsum(grad[order])[:-1]
            h = np.cumsum(hess[order])[:-1]
            valid = sorted_col[:-1] < sorted_col[1:]
            valid &= h >= self.min_child_weight
            valid &= (h_total - h) >= self.min_child_weight
            if not valid.any():
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                gain = 0.5 * (
                    g ** 2 / (h + self.reg_lambda)
                    + (g_total - g) ** 2 / (h_total - h + self.reg_lambda)
                    - parent_score
                )
            gain = np.where(valid, gain, -np.inf)
            idx = int(np.argmax(gain))
            if gain[idx] > best_gain:
                best_gain = float(gain[idx])
                threshold = (sorted_col[idx] + sorted_col[idx + 1]) / 2.0
                best = (int(feature), float(threshold))
        if best is None:
            return node
        feature, threshold = best
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], grad[mask], hess[mask], depth + 1, columns)
        node.right = self._grow(X[~mask], grad[~mask], hess[~mask], depth + 1, columns)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        out = np.empty(X.shape[0], dtype=np.float64)
        stack = [(self.root, np.arange(X.shape[0]))]
        while stack:
            node, indices = stack.pop()
            if node is None or indices.size == 0:
                continue
            if node.is_leaf:
                out[indices] = node.value
                continue
            mask = X[indices, node.feature] <= node.threshold
            stack.append((node.left, indices[mask]))
            stack.append((node.right, indices[~mask]))
        return out


class XGBoostClassifier:
    """Binary classifier with XGBoost-style regularized boosting."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        min_child_weight: float = 1.0,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
        subsample: float = 1.0,
        colsample_bytree: float = 1.0,
        random_state: Optional[int] = None,
    ) -> None:
        if n_estimators <= 0:
            raise TrainingError("n_estimators must be positive")
        if not 0.0 < learning_rate <= 1.0:
            raise TrainingError("learning_rate must lie in (0, 1]")
        if not 0.0 < subsample <= 1.0 or not 0.0 < colsample_bytree <= 1.0:
            raise TrainingError("subsample/colsample_bytree must lie in (0, 1]")
        if reg_lambda < 0 or gamma < 0:
            raise TrainingError("reg_lambda and gamma cannot be negative")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_child_weight = min_child_weight
        self.reg_lambda = reg_lambda
        self.gamma = gamma
        self.subsample = subsample
        self.colsample_bytree = colsample_bytree
        self.random_state = random_state
        self._trees: List[_XGBTree] = []
        self._base_score = 0.0
        self._n_features = 0
        self._flat: Optional[FlatForest] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "XGBoostClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.shape[0] != X.shape[0]:
            raise TrainingError("bad shapes for X/y")
        if not np.isin(np.unique(y), (0.0, 1.0)).all():
            raise TrainingError("XGBoostClassifier expects binary 0/1 labels")
        self._n_features = X.shape[1]
        self._flat = None
        rng = np.random.default_rng(self.random_state)

        positive = min(max(float(y.mean()), 1e-6), 1 - 1e-6)
        self._base_score = float(np.log(positive / (1.0 - positive)))
        raw = np.full(y.shape[0], self._base_score)
        self._trees = []
        n = y.shape[0]
        sample_size = max(1, int(round(self.subsample * n)))

        for _ in range(self.n_estimators):
            probabilities = _sigmoid(raw)
            grad = probabilities - y
            hess = probabilities * (1.0 - probabilities)
            if self.subsample < 1.0:
                indices = rng.choice(n, size=sample_size, replace=False)
            else:
                indices = np.arange(n)
            tree = _XGBTree(
                max_depth=self.max_depth,
                min_child_weight=self.min_child_weight,
                reg_lambda=self.reg_lambda,
                gamma=self.gamma,
                colsample=self.colsample_bytree,
                rng=rng,
            )
            tree.fit(X[indices], grad[indices], hess[indices])
            raw = raw + self.learning_rate * tree.predict(X)
            self._trees.append(tree)
        return self

    def _compiled(self) -> FlatForest:
        """The flattened ensemble, compiled lazily after ``fit``."""
        if self._flat is None:
            self._flat = FlatForest.from_trees(
                [tree.root for tree in self._trees],
                n_features=self._n_features,
            )
        return self._flat

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise NotFittedError("XGBoostClassifier is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return self._compiled().accumulate(X, self._base_score, self.learning_rate)

    def decision_function_reference(self, X: np.ndarray) -> np.ndarray:
        """Per-row reference walk; bit-identical to :meth:`decision_function`."""
        if not self._trees:
            raise NotFittedError("XGBoostClassifier is not fitted")
        X = np.asarray(X, dtype=np.float64)
        raw = np.full(X.shape[0], self._base_score)
        for tree in self._trees:
            raw += self.learning_rate * tree.predict(X)
        return raw

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        p = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p, p])

    def predict_proba_reference(self, X: np.ndarray) -> np.ndarray:
        p = _sigmoid(self.decision_function_reference(X))
        return np.column_stack([1.0 - p, p])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(np.int64)
