"""Permutation feature importance.

Model-agnostic importance: shuffle one feature column at a time and measure
the accuracy drop. Used to explain *why* the augmented classifier beats the
base StackModel — the FWB-specific features should surface near the top on
FWB ground truth (see ``examples/feature_importance.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import TrainingError
from .metrics import accuracy_score


@dataclass(frozen=True)
class FeatureImportance:
    """Importance of one feature: mean accuracy drop under permutation."""

    feature: str
    importance: float
    std: float


def permutation_importance(
    model,
    X: np.ndarray,
    y: np.ndarray,
    feature_names: Optional[Sequence[str]] = None,
    n_repeats: int = 5,
    random_state: Optional[int] = 0,
) -> List[FeatureImportance]:
    """Permutation importances, sorted most-important first.

    ``model`` must expose ``predict``. Importance is the drop in accuracy
    when the feature's column is shuffled, averaged over ``n_repeats``
    independent permutations.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if X.ndim != 2 or X.shape[0] != y.shape[0]:
        raise TrainingError("bad shapes for X/y")
    if n_repeats < 1:
        raise TrainingError("n_repeats must be at least 1")
    names = (
        list(feature_names)
        if feature_names is not None
        else [f"feature_{i}" for i in range(X.shape[1])]
    )
    if len(names) != X.shape[1]:
        raise TrainingError("feature_names length does not match X columns")

    rng = np.random.default_rng(random_state)
    baseline = accuracy_score(y, model.predict(X))
    results: List[FeatureImportance] = []
    for column, name in enumerate(names):
        drops = []
        for _ in range(n_repeats):
            shuffled = X.copy()
            rng.shuffle(shuffled[:, column])
            drops.append(baseline - accuracy_score(y, model.predict(shuffled)))
        results.append(
            FeatureImportance(
                feature=name,
                importance=float(np.mean(drops)),
                std=float(np.std(drops)),
            )
        )
    results.sort(key=lambda item: -item.importance)
    return results
