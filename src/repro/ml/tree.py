"""CART decision trees (regression and classification), pure numpy.

The regression tree is the workhorse underneath every boosted ensemble in
this package: gradient boosting fits regression trees to pseudo-residuals.
Splits are exact greedy — each feature column is sorted once per node and
the SSE-minimizing threshold found via cumulative sums — which is fast
enough for the study's workloads (thousands of samples, ~20 features).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import NotFittedError, TrainingError


@dataclass
class _Node:
    """One tree node; leaves carry ``value``, internal nodes a split."""

    value: float = 0.0
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _validate_xy(X: np.ndarray, y: np.ndarray) -> None:
    if X.ndim != 2:
        raise TrainingError(f"X must be 2-D, got shape {X.shape}")
    if y.ndim != 1 or y.shape[0] != X.shape[0]:
        raise TrainingError(f"y shape {y.shape} incompatible with X shape {X.shape}")
    if X.shape[0] == 0:
        raise TrainingError("cannot fit on an empty dataset")


def _best_split_sse(
    X: np.ndarray,
    residual: np.ndarray,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
):
    """Best (feature, threshold, gain) minimizing child SSE.

    Returns ``None`` when no valid split improves on the parent.
    """
    n = residual.shape[0]
    total_sum = residual.sum()
    total_sq = (residual ** 2).sum()
    parent_sse = total_sq - total_sum ** 2 / n
    best = None
    best_gain = 1e-12
    for feature in feature_indices:
        column = X[:, feature]
        order = np.argsort(column, kind="stable")
        sorted_col = column[order]
        sorted_res = residual[order]
        csum = np.cumsum(sorted_res)
        csq = np.cumsum(sorted_res ** 2)
        # Candidate split positions: between distinct consecutive values.
        left_counts = np.arange(1, n)
        valid = sorted_col[:-1] < sorted_col[1:]
        valid &= left_counts >= min_samples_leaf
        valid &= (n - left_counts) >= min_samples_leaf
        if not valid.any():
            continue
        left_sum = csum[:-1]
        left_sq = csq[:-1]
        right_sum = total_sum - left_sum
        right_sq = total_sq - left_sq
        right_counts = n - left_counts
        with np.errstate(invalid="ignore", divide="ignore"):
            sse = (
                left_sq - left_sum ** 2 / left_counts
                + right_sq - right_sum ** 2 / right_counts
            )
        sse = np.where(valid, sse, np.inf)
        idx = int(np.argmin(sse))
        gain = parent_sse - sse[idx]
        if gain > best_gain:
            best_gain = gain
            threshold = (sorted_col[idx] + sorted_col[idx + 1]) / 2.0
            best = (int(feature), float(threshold), float(gain))
    return best


class DecisionTreeRegressor:
    """Least-squares CART regression tree.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root is depth 0).
    min_samples_split / min_samples_leaf:
        Pre-pruning guards.
    max_features:
        If set, the number of features considered per split (sampled with
        the tree's RNG) — used by random forests.
    """

    def __init__(
        self,
        max_depth: int = 4,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        random_state: Optional[int] = None,
    ) -> None:
        if max_depth < 0:
            raise TrainingError("max_depth cannot be negative")
        self.max_depth = max_depth
        self.min_samples_split = max(2, min_samples_split)
        self.min_samples_leaf = max(1, min_samples_leaf)
        self.max_features = max_features
        self.random_state = random_state
        self._root: Optional[_Node] = None
        self._n_features = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        _validate_xy(X, y)
        self._n_features = X.shape[1]
        rng = np.random.default_rng(self.random_state)
        self._root = self._grow(X, y, depth=0, rng=rng)
        return self

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int,
              rng: np.random.Generator) -> _Node:
        node = _Node(value=float(y.mean()))
        n = y.shape[0]
        if (
            depth >= self.max_depth
            or n < self.min_samples_split
            or np.all(y == y[0])
        ):
            return node
        n_features = X.shape[1]
        if self.max_features is not None and self.max_features < n_features:
            feature_indices = rng.choice(
                n_features, size=self.max_features, replace=False
            )
        else:
            feature_indices = np.arange(n_features)
        split = _best_split_sse(X, y, feature_indices, self.min_samples_leaf)
        if split is None:
            return node
        feature, threshold, _gain = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1, rng)
        node.right = self._grow(X[~mask], y[~mask], depth + 1, rng)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise NotFittedError("DecisionTreeRegressor is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self._n_features:
            raise TrainingError(
                f"expected {self._n_features} features, got shape {X.shape}"
            )
        out = np.empty(X.shape[0], dtype=np.float64)
        # Iterative node routing over index partitions: no per-row recursion.
        stack = [(self._root, np.arange(X.shape[0]))]
        while stack:
            node, indices = stack.pop()
            if indices.size == 0:
                continue
            if node.is_leaf:
                out[indices] = node.value
                continue
            mask = X[indices, node.feature] <= node.threshold
            stack.append((node.left, indices[mask]))
            stack.append((node.right, indices[~mask]))
        return out

    @property
    def depth(self) -> int:
        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise NotFittedError("DecisionTreeRegressor is not fitted")
        return walk(self._root)

    @property
    def n_leaves(self) -> int:
        def walk(node: Optional[_Node]) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        if self._root is None:
            raise NotFittedError("DecisionTreeRegressor is not fitted")
        return walk(self._root)


class DecisionTreeClassifier:
    """Binary CART classifier built on the regression tree.

    Fitting a least-squares tree to 0/1 labels yields leaf values equal to
    the positive-class fraction — a probability estimate (Gini-equivalent
    splits for binary targets).
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        random_state: Optional[int] = None,
    ) -> None:
        self._tree = DecisionTreeRegressor(
            max_depth=max_depth,
            min_samples_split=min_samples_split,
            min_samples_leaf=min_samples_leaf,
            max_features=max_features,
            random_state=random_state,
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        y = np.asarray(y)
        unique = np.unique(y)
        if not np.isin(unique, (0, 1)).all():
            raise TrainingError("DecisionTreeClassifier expects binary 0/1 labels")
        self._tree.fit(X, y.astype(np.float64))
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        p = np.clip(self._tree.predict(X), 0.0, 1.0)
        return np.column_stack([1.0 - p, p])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self._tree.predict(X) >= 0.5).astype(np.int64)
