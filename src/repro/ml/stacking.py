"""The two-layer StackModel of Li et al. (2019), as used by the paper.

Architecture (paper §4.2, "Model training and performance"):

* **Layer 1**: GBDT, XGBoost, and LightGBM each produce out-of-fold
  probability predictions over the training set (K-fold style, so no base
  model ever predicts a sample it saw in training). The layer's output is
  the original features **plus** the three predictions **plus** their
  majority vote.
* **Layer 2**: the same learner trio runs again on the augmented features,
  appending its own predictions and vote.
* **Final**: a GBDT consumes the twice-augmented composite features and
  emits the phishing verdict.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from ..errors import NotFittedError, TrainingError
from .boosting import GradientBoostingClassifier
from .crossval import cross_val_predict
from .lgbm import LightGBMClassifier
from .xgb import XGBoostClassifier

ModelFactory = Callable[[], object]


class StackingClassifier:
    """Generic multi-layer stacking with feature pass-through.

    Parameters
    ----------
    layers:
        A sequence of layers, each a list of model factories. Every layer
        appends its members' out-of-fold predictions (plus a majority-vote
        column) to the running feature matrix.
    final_factory:
        Factory for the terminal combiner model.
    n_splits:
        K for the out-of-fold prediction folds.
    """

    def __init__(
        self,
        layers: Sequence[Sequence[ModelFactory]],
        final_factory: ModelFactory,
        n_splits: int = 5,
        random_state: Optional[int] = None,
    ) -> None:
        if not layers or any(not layer for layer in layers):
            raise TrainingError("stacking needs at least one non-empty layer")
        self.layer_factories = [list(layer) for layer in layers]
        self.final_factory = final_factory
        self.n_splits = n_splits
        self.random_state = random_state
        self._layer_models: List[List[object]] = []
        self._final_model: Optional[object] = None

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _augment(features: np.ndarray, predictions: List[np.ndarray]) -> np.ndarray:
        """Append per-model probabilities and their majority vote."""
        columns = [features] + [p.reshape(-1, 1) for p in predictions]
        votes = np.mean([(p >= 0.5).astype(np.float64) for p in predictions], axis=0)
        majority = (votes >= 0.5).astype(np.float64).reshape(-1, 1)
        columns.append(majority)
        return np.hstack(columns)

    # -- API -----------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "StackingClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y).astype(np.int64)
        if X.ndim != 2 or y.shape[0] != X.shape[0]:
            raise TrainingError("bad shapes for X/y")
        if np.unique(y).size < 2:
            raise TrainingError("training labels contain a single class")

        self._layer_models = []
        current = X
        for layer_index, factories in enumerate(self.layer_factories):
            oof_predictions = []
            fitted_models = []
            for model_index, factory in enumerate(factories):
                seed = (
                    None
                    if self.random_state is None
                    else self.random_state + 97 * layer_index + model_index
                )
                oof = cross_val_predict(
                    factory, current, y, n_splits=self.n_splits, random_state=seed
                )
                oof_predictions.append(oof)
                model = factory()
                model.fit(current, y)
                fitted_models.append(model)
            self._layer_models.append(fitted_models)
            current = self._augment(current, oof_predictions)

        self._final_model = self.final_factory()
        self._final_model.fit(current, y)
        return self

    def _transform(self, X: np.ndarray) -> np.ndarray:
        current = np.asarray(X, dtype=np.float64)
        for models in self._layer_models:
            predictions = [m.predict_proba(current)[:, 1] for m in models]
            current = self._augment(current, predictions)
        return current

    def _transform_reference(self, X: np.ndarray) -> np.ndarray:
        """Layer transform using each member's per-row reference walk."""
        current = np.asarray(X, dtype=np.float64)
        for models in self._layer_models:
            predictions = [
                getattr(m, "predict_proba_reference", m.predict_proba)(current)[:, 1]
                for m in models
            ]
            current = self._augment(current, predictions)
        return current

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Stacked probabilities; base models route through their flattened
        (vectorized) inference path — see :mod:`repro.ml.flat`."""
        if self._final_model is None:
            raise NotFittedError("StackingClassifier is not fitted")
        return self._final_model.predict_proba(self._transform(X))

    def predict_proba_reference(self, X: np.ndarray) -> np.ndarray:
        """Stacked probabilities over the members' per-row reference walks;
        bit-identical to :meth:`predict_proba`."""
        if self._final_model is None:
            raise NotFittedError("StackingClassifier is not fitted")
        final = self._final_model
        proba = getattr(final, "predict_proba_reference", final.predict_proba)
        return proba(self._transform_reference(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(np.int64)


def _default_trio(random_state: Optional[int], n_estimators: int) -> List[ModelFactory]:
    return [
        lambda: GradientBoostingClassifier(
            n_estimators=n_estimators, max_depth=3, learning_rate=0.1,
            random_state=random_state,
        ),
        lambda: XGBoostClassifier(
            n_estimators=n_estimators, max_depth=4, learning_rate=0.1,
            reg_lambda=1.0, random_state=random_state,
        ),
        lambda: LightGBMClassifier(
            n_estimators=n_estimators, num_leaves=15, learning_rate=0.1,
            random_state=random_state,
        ),
    ]


class StackModel(StackingClassifier):
    """The paper's exact configuration: two GBDT/XGB/LGBM layers + GBDT head."""

    def __init__(
        self,
        n_estimators: int = 60,
        n_splits: int = 5,
        random_state: Optional[int] = 7,
    ) -> None:
        trio = _default_trio(random_state, n_estimators)
        super().__init__(
            layers=[trio, trio],
            final_factory=lambda: GradientBoostingClassifier(
                n_estimators=n_estimators, max_depth=3, learning_rate=0.1,
                random_state=random_state,
            ),
            n_splits=n_splits,
            random_state=random_state,
        )
