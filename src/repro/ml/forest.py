"""Random forest classifier.

The FreePhish framework description (§4, component 3) names a Random Forest
as the classification-module learner; we provide it both for that role and
as a strong sanity baseline in tests. Standard recipe: bootstrap-sampled
CART trees with √d feature subsampling, probability averaging.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import NotFittedError, TrainingError
from .flat import FlatForest
from .tree import DecisionTreeClassifier


class RandomForestClassifier:
    """Bagged ensemble of decorrelated CART classifiers."""

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int = 10,
        min_samples_leaf: int = 1,
        max_features: Optional[str] = "sqrt",
        random_state: Optional[int] = None,
    ) -> None:
        if n_estimators <= 0:
            raise TrainingError("n_estimators must be positive")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self._trees: List[DecisionTreeClassifier] = []
        self._n_features = 0
        self._flat: Optional[FlatForest] = None

    def _features_per_split(self, n_features: int) -> Optional[int]:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if self.max_features == "log2":
            return max(1, int(np.log2(n_features)))
        if isinstance(self.max_features, int):
            return max(1, min(self.max_features, n_features))
        raise TrainingError(f"unsupported max_features: {self.max_features!r}")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2 or y.shape[0] != X.shape[0]:
            raise TrainingError("bad shapes for X/y")
        self._n_features = X.shape[1]
        self._flat = None
        rng = np.random.default_rng(self.random_state)
        max_features = self._features_per_split(X.shape[1])
        n = X.shape[0]
        self._trees = []
        for i in range(self.n_estimators):
            indices = rng.integers(0, n, size=n)  # bootstrap sample
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                random_state=int(rng.integers(0, 2 ** 31 - 1)),
            )
            tree.fit(X[indices], y[indices])
            self._trees.append(tree)
        return self

    def _compiled(self) -> FlatForest:
        """The flattened forest, compiled lazily after ``fit``."""
        if self._flat is None:
            self._flat = FlatForest.from_trees(
                [tree._tree._root for tree in self._trees],
                n_features=self._n_features,
            )
        return self._flat

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise NotFittedError("RandomForestClassifier is not fitted")
        X = np.asarray(X, dtype=np.float64)
        values = self._compiled().leaf_values(X)
        accumulated = np.zeros((X.shape[0], 2), dtype=np.float64)
        # Tree-order accumulation of the exact per-tree probability columns:
        # bit-identical to summing tree.predict_proba outputs sequentially.
        for t in range(values.shape[0]):
            p = np.clip(values[t], 0.0, 1.0)
            accumulated += np.column_stack([1.0 - p, p])
        return accumulated / len(self._trees)

    def predict_proba_reference(self, X: np.ndarray) -> np.ndarray:
        """Per-row reference walk; bit-identical to :meth:`predict_proba`."""
        if not self._trees:
            raise NotFittedError("RandomForestClassifier is not fitted")
        X = np.asarray(X, dtype=np.float64)
        accumulated = np.zeros((X.shape[0], 2), dtype=np.float64)
        for tree in self._trees:
            accumulated += tree.predict_proba(X)
        return accumulated / len(self._trees)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(np.int64)
