"""Deterministic randomness and global simulation parameters.

Every stochastic component in the library receives a ``numpy.random.Generator``
derived from a single root seed, so that full campaigns are reproducible
bit-for-bit. Components ask for a *named* child generator::

    rng = SeedBank(seed=7).child("social.twitter")

The same (seed, name) pair always yields the same stream, and distinct names
yield independent streams, so adding a new consumer never perturbs existing
ones. Components that take an integer seed (rather than a generator) draw a
*named* derived seed from :meth:`SeedBank.child_seed` — never ad-hoc
arithmetic like ``seed + 1``, which collides the moment two call sites pick
the same offset (reprolint's RP1xx family polices the related RNG rules).

Time is modelled as integer **minutes** since the simulation epoch; helpers
here convert between minutes, hours and ``hh:mm`` strings used by the paper's
tables.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .errors import ConfigError

#: Default root seed used across examples and benchmarks.
DEFAULT_SEED = 20231024  # IMC'23 start date, a memorable constant.

#: The streaming module polls social platforms at this interval (paper §4.1).
STREAM_INTERVAL_MINUTES = 10

#: Monitoring window for coverage measurements: one week (paper §4.4).
MONITOR_WINDOW_MINUTES = 7 * 24 * 60

#: FWB takedown measurements extend to two weeks (paper §5.3).
TAKEDOWN_WINDOW_MINUTES = 14 * 24 * 60

MINUTES_PER_HOUR = 60
MINUTES_PER_DAY = 24 * 60


def _stable_hash(name: str) -> int:
    """Map a component name to a stable 64-bit integer (independent of
    Python's randomized ``hash``)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class SeedBank:
    """Bank of named, independent ``numpy.random.Generator`` streams.

    Parameters
    ----------
    seed:
        Root seed. Two banks with the same seed produce identical child
        streams for identical names.
    """

    def __init__(self, seed: int = DEFAULT_SEED) -> None:
        if not isinstance(seed, int):
            raise ConfigError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._children: Dict[str, np.random.Generator] = {}

    def child(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator object,
        so sequential draws continue the stream rather than restarting it.
        """
        if name not in self._children:
            seq = np.random.SeedSequence([self.seed, _stable_hash(name)])
            self._children[name] = np.random.default_rng(seq)
        return self._children[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name`` starting at stream origin."""
        seq = np.random.SeedSequence([self.seed, _stable_hash(name)])
        return np.random.default_rng(seq)

    def child_seed(self, name: str) -> int:
        """Return a stable derived *integer* seed for ``name``.

        For components that take a seed rather than a generator. Replaces
        ad-hoc arithmetic like ``seed + 1``: derived seeds are independent
        per name and never collide between call sites.
        """
        return _stable_hash(f"{self.seed}:{name}") % (2 ** 31)


#: Backwards-compatible alias: the class was named RngFactory before the
#: named-integer-seed API landed.
RngFactory = SeedBank


def minutes_to_hhmm(minutes: float) -> str:
    """Render a duration in minutes as the paper's ``hh:mm`` table format.

    >>> minutes_to_hhmm(361)
    '06:01'
    """
    if minutes < 0:
        raise ConfigError("duration cannot be negative")
    total = int(round(minutes))
    return f"{total // 60:02d}:{total % 60:02d}"


def hhmm_to_minutes(text: str) -> int:
    """Parse ``hh:mm`` (hours may exceed 24, as in the paper's max columns)."""
    try:
        hours_str, minutes_str = text.split(":")
        hours, mins = int(hours_str), int(minutes_str)
    except (ValueError, AttributeError) as exc:
        raise ConfigError(f"invalid hh:mm duration: {text!r}") from exc
    if hours < 0 or not 0 <= mins < 60:
        raise ConfigError(f"invalid hh:mm duration: {text!r}")
    return hours * 60 + mins


@dataclass
class SimulationConfig:
    """Top-level knobs for a full campaign simulation.

    The defaults mirror the paper's six-month measurement (Nov 2022 - May
    2023, 31,405 FWB phishing URLs split 19,724 Twitter / 11,681 Facebook).
    Scaled-down runs simply lower ``target_fwb_phishing``.
    """

    seed: int = DEFAULT_SEED
    duration_days: int = 180
    target_fwb_phishing: int = 31405
    twitter_share: float = 19724 / 31405
    benign_per_phishing: float = 1.0
    stream_interval_minutes: int = STREAM_INTERVAL_MINUTES
    monitor_window_minutes: int = MONITOR_WINDOW_MINUTES
    takedown_window_minutes: int = TAKEDOWN_WINDOW_MINUTES
    extra: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration_days <= 0:
            raise ConfigError("duration_days must be positive")
        if self.target_fwb_phishing < 0:
            raise ConfigError("target_fwb_phishing cannot be negative")
        if not 0.0 <= self.twitter_share <= 1.0:
            raise ConfigError("twitter_share must lie in [0, 1]")
        if self.stream_interval_minutes <= 0:
            raise ConfigError("stream_interval_minutes must be positive")

    @property
    def duration_minutes(self) -> int:
        return self.duration_days * MINUTES_PER_DAY

    def seed_bank(self) -> SeedBank:
        return SeedBank(self.seed)

    #: Backwards-compatible alias for :meth:`seed_bank`.
    rng_factory = seed_bank

    def scaled(self, fraction: float, seed: Optional[int] = None) -> "SimulationConfig":
        """Return a copy with the workload scaled by ``fraction``.

        Used by tests and benchmarks to run the same scenario shape at a
        laptop-friendly size.
        """
        if not 0 < fraction <= 1:
            raise ConfigError("fraction must lie in (0, 1]")
        return SimulationConfig(
            seed=self.seed if seed is None else seed,
            duration_days=max(1, int(self.duration_days * fraction)),
            target_fwb_phishing=max(1, int(self.target_fwb_phishing * fraction)),
            twitter_share=self.twitter_share,
            benign_per_phishing=self.benign_per_phishing,
            stream_interval_minutes=self.stream_interval_minutes,
            monitor_window_minutes=self.monitor_window_minutes,
            takedown_window_minutes=self.takedown_window_minutes,
            extra=dict(self.extra),
        )
