"""Site-name and domain-name generation.

Phishing URLs in the study come in two naming styles: gibberish subdomains
(the Google Sites example in the paper is ``/view/oofifhdfhehdy``) and
brand-embedding deceptive names (``paypal-login-verify``). Benign customer
sites use plain small-business names. Self-hosted kits register deceptive
domains, usually on cheap TLDs.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

_CONSONANTS = "bcdfghjklmnpqrstvwxyz"
_VOWELS = "aeiou"

_ACTION_WORDS = (
    "login", "verify", "secure", "account", "update", "support",
    "auth", "confirm", "unlock", "recovery", "billing", "service",
)

_BENIGN_WORDS = (
    "sunny", "maple", "garden", "studio", "craft", "coastal", "urban",
    "happy", "green", "golden", "blue", "little", "corner", "modern",
)

_BENIGN_NOUNS = (
    "bakery", "yoga", "photos", "design", "travel", "kitchen", "florist",
    "fitness", "books", "coffee", "gallery", "events", "music", "crafts",
)

CHEAP_TLDS = ("xyz", "top", "live", "online", "site", "store", "club", "icu")
PREMIUM_TLDS = ("com", "net", "org")


def gibberish(rng: np.random.Generator, min_len: int = 8, max_len: int = 14) -> str:
    """A pronounceable-ish random token, e.g. ``oofifhdfhehdy``."""
    length = int(rng.integers(min_len, max_len + 1))
    chars: List[str] = []
    for i in range(length):
        pool = _VOWELS if rng.random() < 0.38 else _CONSONANTS
        chars.append(pool[int(rng.integers(len(pool)))])
    return "".join(chars)


def deceptive_site_name(rng: np.random.Generator, brand_tokens: Sequence[str]) -> str:
    """A brand-embedding FWB site name, e.g. ``paypaul-verify-secure``."""
    token = brand_tokens[int(rng.integers(len(brand_tokens)))]
    action = _ACTION_WORDS[int(rng.integers(len(_ACTION_WORDS)))]
    style = rng.random()
    if style < 0.4:
        return f"{token}-{action}"
    if style < 0.7:
        second = _ACTION_WORDS[int(rng.integers(len(_ACTION_WORDS)))]
        return f"{token}-{action}-{second}"
    return f"{token}{action}{int(rng.integers(10, 9999))}"


def phishing_site_name(rng: np.random.Generator, brand_tokens: Sequence[str]) -> str:
    """FWB subdomain for a phishing site: gibberish or deceptive."""
    if rng.random() < 0.45:
        return gibberish(rng)
    return deceptive_site_name(rng, brand_tokens)


def benign_site_name(rng: np.random.Generator) -> str:
    """Plausible small-business FWB subdomain, e.g. ``sunny-bakery``."""
    adjective = _BENIGN_WORDS[int(rng.integers(len(_BENIGN_WORDS)))]
    noun = _BENIGN_NOUNS[int(rng.integers(len(_BENIGN_NOUNS)))]
    if rng.random() < 0.3:
        return f"{adjective}-{noun}-{int(rng.integers(1, 999))}"
    return f"{adjective}-{noun}{int(rng.integers(1, 99))}"


def kit_domain(
    rng: np.random.Generator,
    brand_tokens: Sequence[str],
    com_fraction: float = 0.11,
) -> str:
    """A self-hosted phishing domain, usually on a cheap TLD (§6).

    ``com_fraction`` is the minority share registered on premium TLDs.
    """
    token = brand_tokens[int(rng.integers(len(brand_tokens)))]
    action = _ACTION_WORDS[int(rng.integers(len(_ACTION_WORDS)))]
    if rng.random() < com_fraction:
        tld = PREMIUM_TLDS[int(rng.integers(len(PREMIUM_TLDS)))]
    else:
        tld = CHEAP_TLDS[int(rng.integers(len(CHEAP_TLDS)))]
    style = rng.random()
    if style < 0.5:
        host = f"{token}-{action}"
    elif style < 0.8:
        host = f"{action}-{token}{int(rng.integers(1, 99))}"
    else:
        host = f"{token}{gibberish(rng, 3, 5)}"
    return f"{host}.{tld}"


def benign_domain(rng: np.random.Generator) -> str:
    """A long-lived benign self-hosted domain."""
    adjective = _BENIGN_WORDS[int(rng.integers(len(_BENIGN_WORDS)))]
    noun = _BENIGN_NOUNS[int(rng.integers(len(_BENIGN_NOUNS)))]
    tld = PREMIUM_TLDS[int(rng.integers(len(PREMIUM_TLDS)))]
    return f"{adjective}{noun}{int(rng.integers(1, 999))}.{tld}"
