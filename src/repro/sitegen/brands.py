"""Brand catalogue: the organizations phishing attacks impersonate.

The paper's six-month measurement saw attacks against **109 unique brands**
(Figure 5), with a heavily skewed head (Facebook, Microsoft/Office 365,
AT&T, PayPal, Netflix, ...) and a long tail of banks and regional services.
OpenPhish's monthly brand list (409 brands, §3) served as the coders'
reference for spoof identification.

We model a catalogue of 109 brands: an explicit head of widely-phished
companies (fictionalised names kept recognizable in *category*, not
trademark) plus a realistic tail of regional financial institutions —
exactly the long-tail makeup phishing feeds show. Selection weights follow
a Zipf-like distribution so the head dominates, matching Figure 5's shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError

#: Number of brands in the paper's measurement.
PAPER_BRAND_COUNT = 109


@dataclass(frozen=True)
class Brand:
    """One spoofable organization."""

    name: str
    slug: str
    category: str
    legitimate_domain: str
    #: Palette used in both legitimate pages and faithful spoofs.
    primary_color: str
    #: What the login page asks for, beyond email+password.
    extra_fields: Tuple[str, ...] = ()
    #: Zipf-ish popularity weight among attackers.
    weight: float = 1.0

    def login_title(self) -> str:
        return f"{self.name} - Sign In"

    #: Generic words that must not identify a brand on their own ("Credit
    #: Union", "Savings Bank", ... appear across many organizations).
    _GENERIC_WORDS = frozenset(
        {"bank", "credit", "union", "savings", "federal", "community",
         "sign", "login", "secure", "plus", "classic", "virtual", "docs",
         "sites", "forms", "portal"}
    )

    def tokens(self) -> List[str]:
        """Lowercase identifying tokens: slug parts plus name words.

        Used both for deceptive-URL construction and for brand-mention
        matching in page text; generic institution words are excluded.
        """
        out: List[str] = []
        for part in self.slug.replace("-", " ").split():
            if part and part not in self._GENERIC_WORDS and part not in out:
                out.append(part)
        for word in self.name.lower().split():
            cleaned = "".join(ch for ch in word if ch.isalnum())
            if (
                cleaned.isascii()
                and len(cleaned) >= 4
                and cleaned not in self._GENERIC_WORDS
                and cleaned not in out
            ):
                out.append(cleaned)
        if not out:  # every part was generic: fall back to the joined slug
            out.append(self.slug.replace("-", ""))
        return out


_HEAD_BRANDS: List[Tuple[str, str, str, str, Tuple[str, ...]]] = [
    # (name, slug, category, domain, extra credential fields)
    ("Facebrook", "facebrook", "social", "facebrook.com", ()),
    ("Microsop Office 365", "office365", "productivity", "office.microsop.com", ()),
    ("AT&P Telecom", "atp", "telecom", "atp.com", ("phone",)),
    ("PayPaul", "paypaul", "payments", "paypaul.com", ("card",)),
    ("Netflux", "netflux", "streaming", "netflux.com", ("card",)),
    ("Amazom", "amazom", "ecommerce", "amazom.com", ("card", "address")),
    ("Whatsupp", "whatsupp", "messaging", "whatsupp.com", ("phone",)),
    ("Instagrem", "instagrem", "social", "instagrem.com", ()),
    ("Chasé Bank", "chase", "banking", "chase-bank.com", ("ssn", "account")),
    ("Appel", "appel", "technology", "appel.com", ()),
    ("Googel", "googel", "technology", "googel.com", ()),
    ("Coinbasse", "coinbasse", "crypto", "coinbasse.com", ("wallet",)),
    ("DHX Express", "dhx", "logistics", "dhx.com", ("address",)),
    ("USPZ", "uspz", "logistics", "uspz.com", ("address", "card")),
    ("Wells Fargone", "wellsfargone", "banking", "wellsfargone.com", ("ssn", "account")),
    ("Bank of Amerigo", "bankofamerigo", "banking", "bankofamerigo.com", ("ssn", "account")),
    ("LinkedIm", "linkedim", "social", "linkedim.com", ()),
    ("Twitcher", "twitcher", "social", "twitcher.com", ()),
    ("Spotifly", "spotifly", "streaming", "spotifly.com", ("card",)),
    ("Steam Powered", "steam", "gaming", "steam-powered.com", ()),
    ("Outlook Web", "outlook", "productivity", "outlook-web.com", ()),
    ("OneDrive Docs", "onedrive", "productivity", "onedrive-docs.com", ()),
    ("Dropboxx", "dropboxx", "productivity", "dropboxx.com", ()),
    ("Adobe Sign", "adobe", "productivity", "adobe-sign.com", ()),
    ("Binancee", "binancee", "crypto", "binancee.com", ("wallet",)),
    ("MetaMusk Wallet", "metamusk", "crypto", "metamusk.io", ("wallet",)),
    ("Verizom", "verizom", "telecom", "verizom.com", ("phone",)),
    ("T-Mobil", "tmobil", "telecom", "tmobil.com", ("phone",)),
    ("Comcast Xfinity", "xfinity", "telecom", "xfinityy.com", ("phone",)),
    ("HSBD Bank", "hsbd", "banking", "hsbd.com", ("account",)),
    ("Barclaies", "barclaies", "banking", "barclaies.co.uk", ("account",)),
    ("Santanderr", "santanderr", "banking", "santanderr.com", ("account",)),
    ("Credit Agricole Sim", "creditagricole", "banking", "credit-agricole-sim.com", ("account",)),
    ("IRS Tax Portal", "irs", "government", "irs-portal.com", ("ssn",)),
    ("HM Revenue", "hmrevenue", "government", "hm-revenue.co.uk", ("ssn",)),
    ("Netteller", "netteller", "payments", "netteller.com", ("card",)),
    ("Venmoo", "venmoo", "payments", "venmoo.com", ("phone", "card")),
    ("Zelley", "zelley", "payments", "zelley.com", ("phone", "account")),
    ("FedExpress", "fedexpress", "logistics", "fedexpress.com", ("address",)),
    ("UPZ Delivery", "upz", "logistics", "upz-delivery.com", ("address",)),
    ("eBayy", "ebayy", "ecommerce", "ebayy.com", ("card",)),
    ("Alibabba", "alibabba", "ecommerce", "alibabba.com", ("card",)),
    ("Walmarrt", "walmarrt", "ecommerce", "walmarrt.com", ("card",)),
    ("Targett", "targett", "ecommerce", "targett.com", ("card",)),
    ("Disney Plus Plus", "disneyplus", "streaming", "disney-plus-plus.com", ("card",)),
    ("HBO Maxx", "hbomaxx", "streaming", "hbomaxx.com", ("card",)),
    ("Roblux", "roblux", "gaming", "roblux.com", ()),
    ("Fortnute", "fortnute", "gaming", "fortnute.com", ()),
    ("Epic Gamez", "epicgamez", "gaming", "epicgamez.com", ()),
    ("TikTac", "tiktac", "social", "tiktac.com", ("phone",)),
    ("Snapchut", "snapchut", "social", "snapchut.com", ("phone",)),
    ("Telegrum", "telegrum", "messaging", "telegrum.org", ("phone",)),
    ("Yahooo Mail", "yahooo", "productivity", "yahooo.com", ()),
    ("AOL Classic", "aol", "productivity", "aol-classic.com", ()),
    ("Citiibank", "citiibank", "banking", "citiibank.com", ("ssn", "account")),
    ("Capital Two", "capitaltwo", "banking", "capitaltwo.com", ("ssn", "account")),
    ("US Bancorpse", "usbancorpse", "banking", "usbancorpse.com", ("account",)),
    ("PNC Virtual", "pncvirtual", "banking", "pnc-virtual.com", ("account",)),
    ("American Excess", "americanexcess", "payments", "americanexcess.com", ("card",)),
    ("Mastercharge", "mastercharge", "payments", "mastercharge.com", ("card",)),
]

_COLORS = (
    "#1877f2", "#0078d4", "#00a8e0", "#003087", "#e50914", "#ff9900",
    "#25d366", "#e1306c", "#117aca", "#555555", "#4285f4", "#0052ff",
    "#ffcc00", "#333366", "#d71e28", "#e31837", "#0a66c2", "#1da1f2",
    "#1db954", "#171a21",
)

_REGIONS = (
    "Lakeside", "Hillcrest", "Riverton", "Oakdale", "Summit", "Prairie",
    "Harbor", "Granite", "Cypress", "Redwood", "Sierra", "Cascade",
    "Piedmont", "Gulfport", "Bayview", "Northfield", "Westbrook",
    "Eastgate", "Maplewood", "Stonebridge", "Clearwater", "Silverlake",
    "Brookhaven", "Fairfax", "Kingsport",
)

_INSTITUTIONS = ("Credit Union", "Community Bank", "Savings Bank", "Federal CU")


def _tail_brands(count: int) -> List[Brand]:
    """Generate the long tail of regional financial institutions."""
    brands: List[Brand] = []
    i = 0
    while len(brands) < count:
        region = _REGIONS[i % len(_REGIONS)]
        institution = _INSTITUTIONS[(i // len(_REGIONS)) % len(_INSTITUTIONS)]
        name = f"{region} {institution}"
        slug = name.lower().replace(" ", "-").replace(".", "")
        brands.append(
            Brand(
                name=name,
                slug=slug,
                category="regional-banking",
                legitimate_domain=f"{slug.replace('-', '')}.com",
                primary_color=_COLORS[i % len(_COLORS)],
                extra_fields=("account", "ssn"),
                weight=0.0,  # filled in by the catalogue constructor
            )
        )
        i += 1
    return brands


class BrandCatalog:
    """A weighted collection of spoofable brands."""

    def __init__(self, brands: Sequence[Brand]) -> None:
        if not brands:
            raise ConfigError("brand catalogue cannot be empty")
        self.brands: List[Brand] = list(brands)
        self._by_slug: Dict[str, Brand] = {b.slug: b for b in self.brands}
        if len(self._by_slug) != len(self.brands):
            raise ConfigError("duplicate brand slugs in catalogue")
        weights = np.asarray([b.weight for b in self.brands], dtype=np.float64)
        if np.any(weights < 0) or weights.sum() <= 0:
            raise ConfigError("brand weights must be non-negative with positive sum")
        self._probabilities = weights / weights.sum()

    def __len__(self) -> int:
        return len(self.brands)

    def __iter__(self):
        return iter(self.brands)

    def by_slug(self, slug: str) -> Brand:
        try:
            return self._by_slug[slug]
        except KeyError:
            raise ConfigError(f"unknown brand slug: {slug!r}") from None

    def sample(self, rng: np.random.Generator) -> Brand:
        """Draw one brand following the attack-popularity distribution."""
        index = int(rng.choice(len(self.brands), p=self._probabilities))
        return self.brands[index]

    def sample_many(self, rng: np.random.Generator, n: int) -> List[Brand]:
        indices = rng.choice(len(self.brands), size=n, p=self._probabilities)
        return [self.brands[int(i)] for i in indices]


def default_brand_catalog(zipf_exponent: float = 1.05) -> BrandCatalog:
    """The 109-brand catalogue with Zipf-distributed attack weights.

    ``zipf_exponent`` controls head-heaviness; 1.05 reproduces Figure 5's
    shape where the top brand draws an order of magnitude more attacks than
    rank ~30.
    """
    head = list(_HEAD_BRANDS)
    tail = _tail_brands(PAPER_BRAND_COUNT - len(head))
    brands: List[Brand] = []
    for rank, entry in enumerate(head, start=1):
        name, slug, category, domain, extra = entry
        brands.append(
            Brand(
                name=name,
                slug=slug,
                category=category,
                legitimate_domain=domain,
                primary_color=_COLORS[(rank - 1) % len(_COLORS)],
                extra_fields=extra,
                weight=1.0 / rank ** zipf_exponent,
            )
        )
    base_rank = len(head)
    for offset, brand in enumerate(tail, start=1):
        rank = base_rank + offset
        brands.append(
            Brand(
                name=brand.name,
                slug=brand.slug,
                category=brand.category,
                legitimate_domain=brand.legitimate_domain,
                primary_color=brand.primary_color,
                extra_fields=brand.extra_fields,
                weight=1.0 / rank ** zipf_exponent,
            )
        )
    if len(brands) != PAPER_BRAND_COUNT:
        raise ConfigError(
            f"catalog must list the paper's {PAPER_BRAND_COUNT} brands, "
            f"got {len(brands)}"
        )
    return BrandCatalog(brands)
