"""Per-FWB page templates.

FWB builders wrap user content in service-specific boilerplate: wrapper
``<div>`` hierarchies, style blocks, generator meta tags, and the free-tier
banner. Because *every* site on a service shares that boilerplate, benign
and phishing pages on the same FWB exhibit high code similarity (Table 1:
Weebly 79.4% median), while services that host raw user HTML (Github.io,
37.4%) do not.

``TemplateLibrary.render`` turns an abstract :class:`PageSpec` into markup
for a given service. The ``boilerplate_scale`` of each service controls how
much fixed wrapper structure is emitted; a scale of zero (github.io/glitch)
emits bare user markup with per-site idiosyncratic class names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..simnet.fwb import FWBService

_FIELD_INPUT_TYPES = {
    "email": ("email", "Email address"),
    "password": ("password", "Password"),
    "phone": ("tel", "Phone number"),
    "card": ("text", "Card number"),
    "ssn": ("text", "Social Security Number"),
    "account": ("text", "Account number"),
    "address": ("text", "Street address"),
    "wallet": ("text", "Wallet recovery phrase"),
    "name": ("text", "Full name"),
    "message": ("text", "Your message"),
}


@dataclass
class ContentBlock:
    """One abstract content unit placed into a template.

    ``kind`` is one of: ``heading``, ``paragraph``, ``form``, ``button``,
    ``iframe``, ``download``, ``image``, ``nav``.
    """

    kind: str
    text: str = ""
    href: str = ""
    fields: Sequence[str] = ()
    attrs: Dict[str, str] = field(default_factory=dict)


@dataclass
class PageSpec:
    """Service-independent description of a page to render."""

    title: str
    blocks: List[ContentBlock]
    primary_color: str = "#336699"
    noindex: bool = False
    obfuscate_banner: bool = False
    #: How the banner is hidden: "inline" injects visibility:hidden into
    #: the banner div (the paper's example); "stylesheet" adds a CSS rule
    #: (.fwb-banner{display:none}) — the stealthier flavour.
    obfuscation_style: str = "inline"
    language: str = "en"


@dataclass(frozen=True)
class _ServiceTemplate:
    boilerplate_scale: int
    wrapper_class: str
    banner_text: str
    generator_tag: str


_DEFAULT_TEMPLATE = _ServiceTemplate(
    boilerplate_scale=2,
    wrapper_class="site-wrap",
    banner_text="Create a free website",
    generator_tag="generic-builder",
)

_SERVICE_TEMPLATES: Dict[str, _ServiceTemplate] = {
    "weebly": _ServiceTemplate(6, "wsite-section-wrap", "Powered by Weebly - Create your own free website", "weebly"),
    "000webhost": _ServiceTemplate(4, "wh-main-container", "Powered by 000webhost - Free web hosting", "000webhost"),
    "blogspot": _ServiceTemplate(3, "blog-posts hfeed", "Powered by Blogger", "blogger"),
    "wix": _ServiceTemplate(3, "wix-site-container", "Created with Wix.com - Build your website today", "wix.com"),
    "google_sites": _ServiceTemplate(5, "sites-canvas-main", "Report abuse - Google Sites", "google-sites"),
    "github_io": _ServiceTemplate(0, "", "", ""),
    "firebase": _ServiceTemplate(1, "firebase-app-root", "", "firebase"),
    "squareup": _ServiceTemplate(4, "sqs-block-container", "Made with Square Online", "square"),
    "zoho_forms": _ServiceTemplate(4, "zf-form-wrapper", "Powered by Zoho Forms", "zoho"),
    "wordpress": _ServiceTemplate(3, "wp-site-blocks", "Blog at WordPress.com", "wordpress.com"),
    "google_forms": _ServiceTemplate(5, "freebird-form-container", "This form was created inside Google Forms", "google-forms"),
    "sharepoint": _ServiceTemplate(4, "sp-page-canvas", "", "sharepoint"),
    "yolasite": _ServiceTemplate(4, "yola-content-column", "Make a free website with Yola", "yola"),
    "godaddysites": _ServiceTemplate(4, "gd-page-section", "Powered by GoDaddy Website Builder", "godaddy"),
    "mailchimp": _ServiceTemplate(4, "mc-landing-wrap", "Made with Mailchimp", "mailchimp"),
    "glitch": _ServiceTemplate(0, "", "", ""),
    "hpage": _ServiceTemplate(3, "hp-site-frame", "Free website by hPage.com", "hpage"),
}

#: How many distinct free-tier themes each service's abused template pool
#: effectively spans. Fewer themes → higher cross-site code similarity
#: (phishers on Weebly overwhelmingly reuse the same login-friendly theme,
#: which is why it tops Table 1).
_THEME_COUNTS: Dict[str, int] = {
    "weebly": 2,
    "google_sites": 2,
    "000webhost": 3,
    "blogspot": 4,
    "wix": 4,
    "squareup": 3,
    "google_forms": 2,
    "sharepoint": 3,
}
_DEFAULT_THEME_COUNT = 3

_FILLER_WORDS = (
    "alpha", "nova", "zen", "pixel", "echo", "lumen", "orbit", "quartz",
    "delta", "ember", "flux", "halo", "iris", "koda", "mesa", "onyx",
)


class TemplateLibrary:
    """Renders :class:`PageSpec` objects into per-service HTML markup."""

    def __init__(self, overrides: Optional[Dict[str, _ServiceTemplate]] = None) -> None:
        self._templates = dict(_SERVICE_TEMPLATES)
        if overrides:
            self._templates.update(overrides)

    def template_for(self, service_name: str) -> _ServiceTemplate:
        return self._templates.get(service_name, _DEFAULT_TEMPLATE)

    # -- public API ---------------------------------------------------------------

    def render(
        self,
        service: Optional[FWBService],
        spec: PageSpec,
        rng: np.random.Generator,
    ) -> str:
        """Render ``spec`` as it would appear hosted on ``service``.

        ``service=None`` renders a self-hosted page (phishing-kit or plain
        site boilerplate, no FWB wrapper or banner).
        """
        if service is None:
            return self._render_bare(spec, rng, kit_style=True)
        template = self.template_for(service.name)
        if template.boilerplate_scale == 0:
            return self._render_bare(spec, rng, kit_style=False)
        return self._render_templated(service, template, spec, rng)

    # -- internal renderers ----------------------------------------------------------

    def _head(self, spec: PageSpec, generator: str, style: str) -> str:
        parts = [
            "<head>",
            '<meta charset="utf-8">',
            '<meta name="viewport" content="width=device-width, initial-scale=1">',
        ]
        if generator:
            parts.append(f'<meta name="generator" content="{generator}">')
        if spec.noindex:
            parts.append('<meta name="robots" content="noindex, nofollow">')
        parts.append(f"<title>{spec.title}</title>")
        if style:
            parts.append(f"<style>{style}</style>")
        parts.append("</head>")
        return "".join(parts)

    def _render_block(self, block: ContentBlock) -> str:
        if block.kind == "heading":
            return f"<h1>{block.text}</h1>"
        if block.kind == "paragraph":
            return f"<p>{block.text}</p>"
        if block.kind == "nav":
            items = "".join(
                f'<li><a href="{href}">{label}</a></li>'
                for label, href in (pair.split("|", 1) for pair in block.fields)
            )
            return f"<nav><ul>{items}</ul></nav>"
        if block.kind == "list":
            items = "".join(f"<li>{item}</li>" for item in block.fields)
            return f'<ul class="content-list">{items}</ul>'
        if block.kind == "image":
            return f'<img src="{block.href or "/logo.png"}" alt="{block.text}">'
        if block.kind == "button":
            return (
                f'<a class="btn button primary" href="{block.href}">'
                f"{block.text or 'Continue'}</a>"
            )
        if block.kind == "iframe":
            extra = "".join(f' {k}="{v}"' for k, v in block.attrs.items())
            return f'<iframe src="{block.href}"{extra}></iframe>'
        if block.kind == "download":
            return (
                f'<a href="{block.href}" download class="download-link">'
                f"{block.text or 'Download document'}</a>"
            )
        if block.kind == "form":
            rows = []
            for name in block.fields:
                input_type, placeholder = _FIELD_INPUT_TYPES.get(name, ("text", name))
                rows.append(
                    f'<label>{placeholder}'
                    f'<input type="{input_type}" name="{name}" '
                    f'placeholder="{placeholder}"></label>'
                )
            action = block.href or "/submit"
            return (
                f'<form method="post" action="{action}" class="login-form">'
                + "".join(rows)
                + f'<button type="submit">{block.text or "Sign In"}</button></form>'
            )
        raise ConfigError(f"unknown content block kind: {block.kind!r}")

    def _banner_html(self, template: _ServiceTemplate, service: FWBService,
                     obfuscated: bool, obfuscation_style: str = "inline") -> str:
        if not service.has_banner or not template.banner_text:
            return ""
        style = ""
        if obfuscated and obfuscation_style == "inline":
            style = ' style="visibility:hidden"'
        return (
            f'<div class="{service.name}-banner fwb-banner" id="fwb-banner"{style}>'
            f'<a href="https://{service.domain}/">{template.banner_text}</a></div>'
        )

    def _render_templated(
        self,
        service: FWBService,
        template: _ServiceTemplate,
        spec: PageSpec,
        rng: np.random.Generator,
    ) -> str:
        scale = template.boilerplate_scale
        # Builders stamp per-page unique element ids into the generated
        # markup, so two sites on the same service share structure but not
        # byte-identical tags — the reason Table 1 medians sit below 100%.
        page_uid = f"{int(rng.integers(0, 16**8)):08x}"
        # Each page is built from one of the service's free themes; pages on
        # different themes share far less wrapper vocabulary.
        n_themes = _THEME_COUNTS.get(service.name, _DEFAULT_THEME_COUNT)
        theme = int(rng.integers(n_themes))
        # Themes carry distinct wrapper vocabularies (a Wix "strip" layout
        # shares almost no class names with its "grid" layout).
        theme_word = ("strip", "grid", "fold", "mosaic")[theme]
        brand_prefix = template.wrapper_class.split("-")[0]
        theme_class = f"{brand_prefix}-{theme_word}-{template.wrapper_class}"
        theme_fonts = ("Helvetica,Arial", "Georgia,serif", "Verdana,Geneva",
                       "Futura,Trebuchet MS")
        style = (
            f"body{{margin:0;font-family:{theme_fonts[theme % len(theme_fonts)]},sans-serif}}"
            f".{theme_class}{{max-width:{920 + 40 * theme}px;margin:0 auto}}"
            f".fwb-banner{{background:#f5f5f5;text-align:center;padding:8px}}"
            f".login-form input{{display:block;width:100%;margin:6px 0;padding:8px}}"
            f".btn{{display:inline-block;padding:{8 + 2 * theme}px 24px;border-radius:{2 + 2 * theme}px;"
            f"background:{spec.primary_color};color:#fff}}"
            + "".join(
                f".{theme_class}-col{i}{{padding:{4 * (i + 1) + theme}px}}"
                for i in range(scale)
            )
        )
        if spec.obfuscate_banner and spec.obfuscation_style == "stylesheet":
            style += ".fwb-banner{display:none}"
        inner = "".join(self._render_block(block) for block in spec.blocks)
        # Nested wrapper hierarchy: the hallmark of builder output.
        for depth in range(scale):
            inner = (
                f'<div class="{theme_class}-col{depth} element-box-v{theme}" '
                f'id="el-{page_uid}-{depth}">'
                f"{inner}</div>"
            )
        banner = self._banner_html(
            template, service, spec.obfuscate_banner, spec.obfuscation_style
        )
        body = (
            "<body>"
            + banner
            + f'<div class="{theme_class}" id="main-{page_uid}">'
            + f'<header class="site-header"><span class="site-title">{spec.title}</span></header>'
            + inner
            + f'<footer class="site-footer">{banner or "<span>&copy; 2022</span>"}</footer>'
            + "</div></body>"
        )
        head = self._head(spec, template.generator_tag, style)
        return f'<!DOCTYPE html><html lang="{spec.language}">{head}{body}</html>'

    @staticmethod
    def _filler_token(rng: np.random.Generator) -> str:
        """A developer-idiosyncratic naming token: word or coined fragment."""
        if rng.random() < 0.4:
            return _FILLER_WORDS[int(rng.integers(len(_FILLER_WORDS)))]
        consonants = "bcdfgklmnprstvz"
        vowels = "aeiou"
        length = int(rng.integers(3, 7))
        return "".join(
            (consonants if i % 2 == 0 else vowels)[
                int(rng.integers(len(consonants if i % 2 == 0 else vowels)))
            ]
            for i in range(length)
        )

    def _render_bare_block(self, block: ContentBlock, rng: np.random.Generator,
                           decoration: str) -> str:
        """Hand-written-flavoured rendering: the same abstract block comes
        out differently on every page (tag choice, class names, attribute
        style), unlike the uniform builder output."""
        if block.kind == "paragraph":
            tag = ("p", "span", "div")[int(rng.integers(3))]
            return f'<{tag} class="{decoration}-text">{block.text}</{tag}>'
        if block.kind == "heading":
            tag = ("h1", "h2")[int(rng.integers(2))]
            return f"<{tag}>{block.text}</{tag}>"
        if block.kind == "form":
            rows = []
            use_labels = rng.random() < 0.5
            for name in block.fields:
                input_type, placeholder = _FIELD_INPUT_TYPES.get(name, ("text", name))
                if use_labels:
                    rows.append(
                        f'<label for="{name}-{decoration}">{placeholder}</label>'
                        f'<input id="{name}-{decoration}" type="{input_type}" '
                        f'name="{name}">'
                    )
                else:
                    rows.append(
                        f'<input type="{input_type}" name="{name}" '
                        f'placeholder="{placeholder}" class="{decoration}-field">'
                    )
            submit = (
                '<button type="submit">{t}</button>'
                if rng.random() < 0.5
                else '<input type="submit" value="{t}">'
            ).format(t=block.text or "Submit")
            action = block.href or "/submit"
            return f'<form method="post" action="{action}">{"".join(rows)}{submit}</form>'
        return self._render_block(block)

    def _render_bare(self, spec: PageSpec, rng: np.random.Generator, kit_style: bool) -> str:
        """Hand-written-looking page: idiosyncratic structure and naming.

        Unlike builder output, no two bare pages share wrapper hierarchies,
        class vocabularies, or attribute conventions — which is why
        github.io/glitch sit at the bottom of Table 1.
        """
        token_a = self._filler_token(rng)
        token_b = self._filler_token(rng)
        suffix = int(rng.integers(10, 9999))
        wrapper = f"{token_a}-{token_b}-{suffix}"
        container_tag = ("div", "main", "section", "article")[int(rng.integers(4))]
        style_bits = [
            f".{wrapper}{{width:{int(rng.integers(60, 100))}%;margin:{int(rng.integers(0, 40))}px auto}}",
            f"h1,h2{{color:{spec.primary_color};font-size:{int(rng.integers(20, 40))}px}}",
        ]
        if rng.random() < 0.5:
            style_bits.append(
                f"body{{background:#f{int(rng.integers(0, 9))}f{int(rng.integers(0, 9))}fa}}"
            )
        if kit_style:
            # Phishing kits ship their own characteristic scaffold.
            style_bits.append(
                ".kit-panel{box-shadow:0 0 12px rgba(0,0,0,.2);padding:24px}"
            )
        inner = "".join(
            self._render_bare_block(block, rng, token_b) for block in spec.blocks
        )
        panel_class = "kit-panel" if kit_style else f"{token_b}-panel"
        extra_head = ""
        if rng.random() < 0.5:
            extra_head = f'<link rel="stylesheet" href="/{token_a}.css">'
        body = (
            f'<body><{container_tag} class="{wrapper}">'
            f'<div class="{panel_class}">'
            f"<h1>{spec.title}</h1>{inner}</div></{container_tag}></body>"
        )
        head = self._head(spec, "", "".join(style_bits)).replace(
            "</head>", extra_head + "</head>"
        )
        return f'<!DOCTYPE html><html lang="{spec.language}">{head}{body}</html>'
