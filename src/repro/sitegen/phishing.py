"""FWB-hosted phishing-site generation.

Produces the four attack shapes the paper observes:

* ``CREDENTIAL`` — a brand-spoofing login page with credential fields (the
  85.8% majority case);
* ``TWO_STEP`` — a landing page holding only a call-to-action button whose
  click leads to a phishing page on *another* domain (§5.5, Figure 11);
* ``IFRAME`` — a benign-looking wrapper that embeds the real phishing page
  from an external domain in an ``<iframe>`` (§5.5, Figure 12);
* ``DRIVEBY`` — a page distributing a malicious download hosted on a
  third-party site (§5.5).

Every generated site records complete ground truth in ``site.metadata``;
the characterization statistics of §3 (noindex rate, banner obfuscation,
credential-field presence) are controlled by :class:`PhishingMixture`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ConfigError
from ..simnet.fwb import FWBService
from ..simnet.hosting import FileAsset, FWBHostingProvider, HostedSite
from ..simnet.url import URL
from ..simnet.web import Web
from . import names
from .brands import Brand, BrandCatalog, default_brand_catalog
from .templates import ContentBlock, PageSpec, TemplateLibrary


class PhishingVariant(str, Enum):
    CREDENTIAL = "credential"
    TWO_STEP = "two_step"
    IFRAME = "iframe"
    DRIVEBY = "driveby"


@dataclass(frozen=True)
class PhishingMixture:
    """Population-level rates calibrated from the paper's §3 measurements."""

    #: 44.7% of FWB phishing URLs carried a <noindex> meta tag.
    noindex_rate: float = 0.447
    #: Share of banner-bearing sites whose banner the phisher hides.
    banner_obfuscation_rate: float = 0.62
    #: Probability a page uses a non-English language (Spanish/Chinese in §3).
    foreign_language_rate: float = 0.02
    #: Probability the page title avoids naming the brand ("Account
    #: Verification Required" instead of "PayPaul - Sign In") — a common
    #: evasion against title-matching heuristics.
    generic_title_rate: float = 0.30
    #: Probability a credential page is *cloaked*: structurally cloned from
    #: an innocuous members-login template (benign-style site name, no brand
    #: text, plain email+password form) with only the brand logo retained.
    #: These pages are indistinguishable from legitimate member portals on
    #: the base feature set — the confusion the FWB-specific features
    #: (banner obfuscation, noindex) resolve.
    cloak_rate: float = 0.32

    def __post_init__(self) -> None:
        for name in ("noindex_rate", "banner_obfuscation_rate",
                     "foreign_language_rate", "generic_title_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must lie in [0, 1]")


@dataclass
class PhishingSiteSpec:
    """Fully resolved description of one phishing site to generate."""

    brand: Brand
    variant: PhishingVariant
    noindex: bool
    obfuscate_banner: bool
    #: "inline" or "stylesheet" banner hiding (when obfuscate_banner).
    obfuscation_style: str = "inline"
    language: str = "en"
    #: Title names the brand (False = generic evasion title).
    branded_title: bool = True
    #: Structurally cloned from a benign members-login template.
    cloaked: bool = False
    #: External URL used by TWO_STEP (link target) and IFRAME (frame src).
    target_url: Optional[str] = None
    #: Detections the malicious payload would receive on VirusTotal.
    payload_detections: int = 0


_GENERIC_TITLES = (
    "Account Verification Required",
    "Secure Sign In",
    "Webmail Login",
    "Secure Document Portal",
    "Billing Update",
)

_SUSPENSE_LINES = {
    "en": (
        "Your account has been temporarily suspended.",
        "Unusual sign-in activity was detected on your account.",
        "Action required: verify your information within 24 hours.",
        "Your mailbox is almost full. Validate your account to continue.",
    ),
    "es": (
        "Su cuenta ha sido suspendida temporalmente.",
        "Se detectó actividad inusual en su cuenta.",
    ),
    "zh": (
        "您的账户已被暂时停用。",
        "检测到您的账户存在异常登录活动。",
    ),
}


class PhishingSiteGenerator:
    """Generates FWB-hosted phishing sites with full ground-truth labels."""

    def __init__(
        self,
        catalog: Optional[BrandCatalog] = None,
        templates: Optional[TemplateLibrary] = None,
        mixture: Optional[PhishingMixture] = None,
    ) -> None:
        self.catalog = catalog if catalog is not None else default_brand_catalog()
        self.templates = templates if templates is not None else TemplateLibrary()
        self.mixture = mixture if mixture is not None else PhishingMixture()

    # -- spec sampling -------------------------------------------------------------

    def sample_variant(self, service: FWBService, rng: np.random.Generator) -> PhishingVariant:
        """Draw the attack shape given the service's capabilities (§5.5).

        Services that forbid custom credential forms (Google Sites,
        Sharepoint) push attackers toward the evasive variants.
        """
        if rng.random() < service.evasive_share:
            two_step, iframe, driveby = service.evasive_mix
            draw = rng.random()
            if draw < two_step:
                return PhishingVariant.TWO_STEP
            if draw < two_step + iframe:
                return PhishingVariant.IFRAME
            return PhishingVariant.DRIVEBY
        if not service.allows_credential_forms:
            # Cannot place a form at all: degrade to a two-step page.
            return PhishingVariant.TWO_STEP
        return PhishingVariant.CREDENTIAL

    def sample_spec(
        self,
        service: FWBService,
        rng: np.random.Generator,
        brand: Optional[Brand] = None,
        variant: Optional[PhishingVariant] = None,
        target_url: Optional[str] = None,
    ) -> PhishingSiteSpec:
        brand = brand if brand is not None else self.catalog.sample(rng)
        variant = variant if variant is not None else self.sample_variant(service, rng)
        language = "en"
        if rng.random() < self.mixture.foreign_language_rate:
            language = "es" if rng.random() < 0.6 else "zh"
        return PhishingSiteSpec(
            brand=brand,
            variant=variant,
            branded_title=rng.random() >= self.mixture.generic_title_rate,
            cloaked=(
                variant is PhishingVariant.CREDENTIAL
                and rng.random() < self.mixture.cloak_rate
            ),
            noindex=rng.random() < self.mixture.noindex_rate,
            obfuscate_banner=(
                service.has_banner
                and rng.random() < self.mixture.banner_obfuscation_rate
            ),
            obfuscation_style="stylesheet" if rng.random() < 0.4 else "inline",
            language=language,
            target_url=target_url,
            payload_detections=(
                int(rng.integers(4, 32)) if variant is PhishingVariant.DRIVEBY else 0
            ),
        )

    # -- page assembly -------------------------------------------------------------

    def _suspense_line(self, language: str, rng: np.random.Generator) -> str:
        lines = _SUSPENSE_LINES.get(language, _SUSPENSE_LINES["en"])
        return lines[int(rng.integers(len(lines)))]

    def _page_spec(self, spec: PhishingSiteSpec, rng: np.random.Generator,
                   site_name: str = "") -> PageSpec:
        brand = spec.brand
        if spec.cloaked:
            pretty = site_name.replace("-", " ").title() or "Member Portal"
            blocks = [ContentBlock("heading", text=pretty)]
            if rng.random() < 0.75:
                blocks.append(
                    ContentBlock(
                        "nav",
                        fields=["Home|/", "About|/about", "Contact|/contact"],
                    )
                )
            if rng.random() < 0.7:
                blocks.append(
                    ContentBlock("image", text=f"{brand.name} logo",
                                 href="/logo.png")
                )
            blocks += [
                ContentBlock(
                    "paragraph",
                    text="Members can sign in to view the schedule.",
                ),
                ContentBlock(
                    "form", text="Member Login",
                    fields=["email", "password"], href="/members",
                ),
            ]
            return PageSpec(
                title=f"{pretty} - Member Login",
                blocks=blocks,
                primary_color="#2a7f62",
                noindex=spec.noindex,
                obfuscate_banner=spec.obfuscate_banner,
                obfuscation_style=spec.obfuscation_style,
                language=spec.language,
            )
        blocks: List[ContentBlock] = [
            ContentBlock("image", text=f"{brand.name} logo", href="/logo.png"),
            ContentBlock("heading", text=brand.name),
            ContentBlock("paragraph", text=self._suspense_line(spec.language, rng)),
        ]
        if rng.random() < 0.55:
            # Faithful spoofs copy the brand's chrome: a nav/footer of
            # site-local links, which also blurs the internal-link feature
            # that separates bare kit pages from real sites.
            blocks.insert(
                1,
                ContentBlock(
                    "nav",
                    fields=["Home|/", "Help|/help", "Privacy|/privacy",
                            "Terms|/terms"],
                ),
            )
        if spec.variant is PhishingVariant.CREDENTIAL:
            fields = ["email", "password", *brand.extra_fields]
            blocks.append(
                ContentBlock("form", text="Sign In", fields=fields, href="/submit")
            )
        elif spec.variant is PhishingVariant.TWO_STEP:
            blocks.append(
                ContentBlock(
                    "button",
                    text="Verify your account",
                    href=spec.target_url or f"https://{brand.legitimate_domain}/",
                )
            )
        elif spec.variant is PhishingVariant.IFRAME:
            blocks.append(
                ContentBlock("paragraph", text=f"{brand.name} customer portal.")
            )
            blocks.append(
                ContentBlock(
                    "iframe",
                    href=spec.target_url or f"https://{brand.legitimate_domain}/login",
                    attrs={"width": "100%", "height": "640", "frameborder": "0"},
                )
            )
        else:  # DRIVEBY
            blocks.append(
                ContentBlock(
                    "paragraph",
                    text=f"A secure document from {brand.name} is ready for you.",
                )
            )
            blocks.append(
                ContentBlock("download", text="Open document", href="/invoice.zip")
            )
        if spec.branded_title:
            title = brand.login_title()
        else:
            title = _GENERIC_TITLES[int(rng.integers(len(_GENERIC_TITLES)))]
        return PageSpec(
            title=title,
            blocks=blocks,
            primary_color=brand.primary_color,
            noindex=spec.noindex,
            obfuscate_banner=spec.obfuscate_banner,
            obfuscation_style=spec.obfuscation_style,
            language=spec.language,
        )

    # -- site creation --------------------------------------------------------------

    def create_site(
        self,
        provider: FWBHostingProvider,
        now: int,
        rng: np.random.Generator,
        spec: Optional[PhishingSiteSpec] = None,
    ) -> HostedSite:
        """Create one phishing site on ``provider``'s FWB."""
        service = provider.service
        if spec is None:
            spec = self.sample_spec(service, rng)
        for _ in range(20):
            if spec.cloaked:
                site_name = names.benign_site_name(rng)
            else:
                site_name = names.phishing_site_name(rng, spec.brand.tokens())
            host = service.site_host(site_name)
            if provider.site_for_host(host) is None:
                break
        else:  # pragma: no cover - gibberish space is enormous
            site_name = names.gibberish(rng, 14, 20)
        site = provider.create_site(site_name, owner="attacker", now=now)
        page = self.templates.render(
            service, self._page_spec(spec, rng, site_name), rng
        )
        site.add_page("/", page)
        if spec.variant is PhishingVariant.DRIVEBY:
            site.add_file(
                "/invoice.zip",
                FileAsset(
                    filename="invoice.zip",
                    malicious=True,
                    vt_detections=spec.payload_detections,
                    size_bytes=1 << 19,
                ),
            )
        site.metadata.update(
            {
                "is_phishing": True,
                "brand": spec.brand.slug,
                "variant": spec.variant.value,
                "noindex": spec.noindex,
                "obfuscated_banner": spec.obfuscate_banner,
                "branded_title": spec.branded_title,
                "cloaked": spec.cloaked,
                "language": spec.language,
                "has_credential_form": spec.variant is PhishingVariant.CREDENTIAL,
                "target_url": spec.target_url,
            }
        )
        return site
