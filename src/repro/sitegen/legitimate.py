"""Benign FWB customer-site generation.

The ground-truth dataset pairs 4,656 phishing URLs with an equal number of
manually verified benign FWB sites (§4.2). Benign sites matter for two
reasons: they provide the negative class for classifier training, and they
are the comparison population for the Table-1 code-similarity measurement.

Generated sites follow common free-tier archetypes — small businesses,
blogs, portfolios, community pages — some of which legitimately collect an
email address (newsletter forms), giving the classifier a non-trivial
decision boundary.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..simnet.fwb import FWBService
from ..simnet.hosting import FWBHostingProvider, HostedSite, SelfHostingProvider
from ..simnet.web import Web
from . import names
from .templates import ContentBlock, PageSpec, TemplateLibrary

_EXTRA_SENTENCES = (
    "We have been part of this neighborhood for over a decade.",
    "Gift cards are available at the counter and online.",
    "Parking is free behind the building on weekends.",
    "Follow our seasonal specials on the news page.",
    "Workshops run every second Saturday, beginners welcome.",
    "Our team volunteers at the spring street fair each year.",
    "Wholesale inquiries are always welcome, just drop us a line.",
    "Closed on public holidays; see the calendar for details.",
)

_EXTRA_LISTS = (
    ("Monday 8-6", "Tuesday 8-6", "Wednesday 8-6", "Saturday 9-2"),
    ("Sourdough", "Rye", "Baguette", "Seasonal tarts"),
    ("Beginner", "Intermediate", "Advanced"),
    ("Spring fair", "Summer market", "Harvest festival"),
)

_ARCHETYPES = (
    "business", "blog", "portfolio", "community", "newsletter", "store",
    # Sites with a members-area login: legitimate pages that *do* carry a
    # password field, the main source of base-feature confusion (§4.2's
    # motivation for FWB-specific features).
    "members",
)

#: Small fraction of benign owners hide drafts/staging pages from search.
BENIGN_NOINDEX_RATE = 0.04
#: Some benign shops mention payment brands in their copy.
BENIGN_BRAND_MENTION_RATE = 0.18


class LegitimateSiteGenerator:
    """Generates benign sites on FWBs (and benign self-hosted sites)."""

    def __init__(self, templates: Optional[TemplateLibrary] = None) -> None:
        self.templates = templates if templates is not None else TemplateLibrary()

    # -- page specs -------------------------------------------------------------

    def _spec_for(self, archetype: str, site_name: str, rng: np.random.Generator) -> PageSpec:
        pretty = site_name.replace("-", " ").title()
        blocks: List[ContentBlock] = [ContentBlock("heading", text=pretty)]
        if rng.random() < 0.75:
            # Most, but not all, customer sites bother with navigation:
            # single-page landing sites skip it.
            blocks.append(
                ContentBlock(
                    "nav",
                    fields=["Home|/", "About|/about", "Contact|/contact"],
                )
            )
        if archetype == "business":
            blocks += [
                ContentBlock("paragraph", text=f"Welcome to {pretty}. Family owned since 2009."),
                ContentBlock("image", text=f"{pretty} storefront"),
                ContentBlock("paragraph", text="Open Monday to Saturday, 8am to 6pm."),
            ]
        elif archetype == "blog":
            blocks += [
                ContentBlock("paragraph", text="Thoughts on travel, food, and everything between."),
                ContentBlock("paragraph", text="Latest post: ten hikes to try this autumn."),
                ContentBlock("paragraph", text="Archive: 2020, 2021, 2022."),
            ]
        elif archetype == "portfolio":
            blocks += [
                ContentBlock("paragraph", text="Selected work and commissions."),
                ContentBlock("image", text="Project one"),
                ContentBlock("image", text="Project two"),
            ]
        elif archetype == "community":
            blocks += [
                ContentBlock("paragraph", text="Neighborhood association news and meeting minutes."),
                ContentBlock("paragraph", text="Next meeting: first Tuesday of the month."),
            ]
        elif archetype == "newsletter":
            blocks += [
                ContentBlock("paragraph", text="Get our monthly letter in your inbox."),
                ContentBlock("form", text="Subscribe", fields=["name", "email"], href="/subscribe"),
            ]
        elif archetype == "store":
            blocks += [
                ContentBlock("paragraph", text="Handmade goods, shipped worldwide."),
                ContentBlock("image", text="Featured product"),
                ContentBlock("form", text="Ask a question", fields=["name", "email", "message"],
                             href="/contact"),
            ]
            if rng.random() < BENIGN_BRAND_MENTION_RATE:
                blocks.append(
                    ContentBlock(
                        "paragraph",
                        text="We accept PayPaul, Venmoo and all major cards.",
                    )
                )
        else:  # members: a legitimate password-protected area
            if rng.random() < 0.5:
                blocks.append(ContentBlock("image", text=f"{pretty} club logo"))
            blocks += [
                ContentBlock("paragraph", text="Members can sign in to view the schedule."),
                ContentBlock(
                    "form", text="Member Login",
                    fields=["email", "password"], href="/members",
                ),
            ]
        # Real customer sites carry idiosyncratic extra content; this
        # variety is what keeps benign pages from collapsing into a single
        # template instance.
        for _ in range(int(rng.integers(1, 4))):
            if rng.random() < 0.65:
                blocks.append(
                    ContentBlock(
                        "paragraph",
                        text=_EXTRA_SENTENCES[int(rng.integers(len(_EXTRA_SENTENCES)))],
                    )
                )
            else:
                blocks.append(
                    ContentBlock(
                        "list",
                        fields=list(_EXTRA_LISTS[int(rng.integers(len(_EXTRA_LISTS)))]),
                    )
                )
        return PageSpec(
            title=pretty if archetype != "members" else f"{pretty} - Member Login",
            blocks=blocks,
            primary_color="#2a7f62",
            noindex=rng.random() < BENIGN_NOINDEX_RATE,
            obfuscate_banner=False,
        )

    # -- site creation ------------------------------------------------------------

    def create_fwb_site(
        self,
        provider: FWBHostingProvider,
        now: int,
        rng: np.random.Generator,
    ) -> HostedSite:
        """Create one benign customer site on ``provider``'s FWB."""
        archetype = _ARCHETYPES[int(rng.integers(len(_ARCHETYPES)))]
        for _ in range(20):
            site_name = names.benign_site_name(rng)
            host = provider.service.site_host(site_name)
            if provider.site_for_host(host) is None:
                break
        else:  # pragma: no cover - name space is far larger than usage
            site_name = f"{names.benign_site_name(rng)}-{int(rng.integers(1e6))}"
        site = provider.create_site(site_name, owner="benign-user", now=now)
        spec = self._spec_for(archetype, site_name, rng)
        site.add_page("/", self.templates.render(provider.service, spec, rng))
        about = PageSpec(
            title=f"About - {spec.title}",
            blocks=[
                ContentBlock("heading", text="About us"),
                ContentBlock("paragraph", text="We started this page to share what we love."),
            ],
            primary_color=spec.primary_color,
        )
        site.add_page("/about", self.templates.render(provider.service, about, rng))
        site.metadata.update(
            {
                "is_phishing": False,
                "archetype": archetype,
                "brand": None,
                "variant": None,
                "noindex": spec.noindex,
                "obfuscated_banner": False,
            }
        )
        return site

    def create_self_hosted_site(
        self,
        provider: SelfHostingProvider,
        now: int,
        rng: np.random.Generator,
        age_days_range: tuple = (180, 3650),
    ) -> HostedSite:
        """Create a benign self-hosted site with a realistic domain age."""
        for _ in range(20):
            domain = names.benign_domain(rng)
            if domain not in provider.registry:
                break
        else:  # pragma: no cover
            domain = f"site{int(rng.integers(1e9))}.com"
        age_days = int(rng.integers(age_days_range[0], age_days_range[1]))
        site = provider.create_site(
            domain,
            owner="benign-user",
            now=now,
            registered_at=now - age_days * 24 * 60,
        )
        archetype = _ARCHETYPES[int(rng.integers(len(_ARCHETYPES)))]
        spec = self._spec_for(archetype, domain.split(".")[0], rng)
        site.add_page("/", self.templates.render(None, spec, rng))
        site.metadata.update(
            {
                "is_phishing": False,
                "archetype": archetype,
                "brand": None,
                "variant": None,
                "noindex": False,
                "obfuscated_banner": False,
            }
        )
        return site

    def populate_web(
        self,
        web: Web,
        per_fwb: int,
        now: int,
        rng: np.random.Generator,
    ) -> List[HostedSite]:
        """Seed every FWB with ``per_fwb`` benign sites (world warm-up)."""
        sites: List[HostedSite] = []
        for provider in web.fwb_providers.values():
            for _ in range(per_fwb):
                sites.append(self.create_fwb_site(provider, now, rng))
        return sites
