"""Website generation.

Generators for the page populations the study measures: benign FWB customer
sites, FWB-hosted phishing pages (including the §5.5 evasive variants), and
self-hosted phishing kits. All generators are deterministic given an RNG.
"""

from .brands import Brand, BrandCatalog, default_brand_catalog
from .templates import PageSpec, ContentBlock, TemplateLibrary
from .legitimate import LegitimateSiteGenerator
from .phishing import PhishingVariant, PhishingSiteSpec, PhishingSiteGenerator
from .kits import PhishingKitGenerator

__all__ = [
    "Brand",
    "BrandCatalog",
    "default_brand_catalog",
    "PageSpec",
    "ContentBlock",
    "TemplateLibrary",
    "LegitimateSiteGenerator",
    "PhishingVariant",
    "PhishingSiteSpec",
    "PhishingSiteGenerator",
    "PhishingKitGenerator",
]
