"""Self-hosted phishing-kit generation.

The paper's comparison population: 31,405 phishing URLs on attacker-
registered domains, found by running the base StackModel over the same
social streams (§5, "Comparison with self hosted phishing attacks").

Self-hosted attacks differ from FWB attacks in exactly the dimensions that
make them *easier* for the ecosystem to catch:

* a fresh domain (age ≈ 0 at first sighting — PhishTank's self-hosted
  median in §3 is 71 days across its whole feed);
* usually a cheap TLD (``.xyz``, ``.top``, ...), a strong blocklist signal;
* a newly issued DV certificate that lands in the CT log, or plain HTTP;
* kit-generated markup that differs structurally from legitimate sites.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..simnet.hosting import HostedSite, SelfHostingProvider
from . import names
from .brands import Brand, BrandCatalog, default_brand_catalog
from .phishing import PhishingVariant, _SUSPENSE_LINES
from .templates import ContentBlock, PageSpec, TemplateLibrary


class PhishingKitGenerator:
    """Generates self-hosted phishing sites from kit-style templates."""

    def __init__(
        self,
        catalog: Optional[BrandCatalog] = None,
        templates: Optional[TemplateLibrary] = None,
        https_rate: float = 0.62,
        com_fraction: float = 0.11,
    ) -> None:
        self.catalog = catalog if catalog is not None else default_brand_catalog()
        self.templates = templates if templates is not None else TemplateLibrary()
        #: Share of self-hosted phishing served over HTTPS (~49-60% in the
        #: wild per the paper's citations; SSL means a CT-logged DV cert).
        self.https_rate = https_rate
        self.com_fraction = com_fraction

    def create_site(
        self,
        provider: SelfHostingProvider,
        now: int,
        rng: np.random.Generator,
        brand: Optional[Brand] = None,
    ) -> HostedSite:
        """Register a fresh deceptive domain and deploy a credential kit."""
        brand = brand if brand is not None else self.catalog.sample(rng)
        for _ in range(20):
            domain = names.kit_domain(rng, brand.tokens(), self.com_fraction)
            if domain not in provider.registry:
                break
        else:  # pragma: no cover
            domain = f"{names.gibberish(rng, 10, 16)}.xyz"
        https = rng.random() < self.https_rate
        site = provider.create_site(domain, owner="attacker", now=now, https=https)

        lines = _SUSPENSE_LINES["en"]
        spec = PageSpec(
            title=brand.login_title(),
            blocks=[
                ContentBlock("image", text=f"{brand.name} logo", href="/logo.png"),
                ContentBlock("heading", text=brand.name),
                ContentBlock("paragraph", text=lines[int(rng.integers(len(lines)))]),
                ContentBlock(
                    "form",
                    text="Sign In",
                    fields=["email", "password", *brand.extra_fields],
                    href="/gate.php",
                ),
            ],
            primary_color=brand.primary_color,
            noindex=rng.random() < 0.15,
        )
        site.add_page("/", self.templates.render(None, spec, rng))
        site.metadata.update(
            {
                "is_phishing": True,
                "brand": brand.slug,
                "variant": PhishingVariant.CREDENTIAL.value,
                "noindex": spec.noindex,
                "obfuscated_banner": False,
                "language": "en",
                "has_credential_form": True,
                "target_url": None,
                "https": https,
            }
        )
        return site

    def create_many(
        self,
        provider: SelfHostingProvider,
        count: int,
        now: int,
        rng: np.random.Generator,
    ) -> List[HostedSite]:
        return [self.create_site(provider, now, rng) for _ in range(count)]
