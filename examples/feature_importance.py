#!/usr/bin/env python
"""Which features make the FreePhish classifier work?

Trains the augmented model on a ground-truth corpus and ranks every feature
by permutation importance — showing that the paper's two FWB-specific
additions (obfuscated banner, noindex) carry real weight, and that the two
features it dropped (https, multi-TLD) would have carried none.

Run:  python examples/feature_importance.py
"""

from __future__ import annotations

import numpy as np

from repro import build_ground_truth
from repro.core.features import BASE_FEATURE_NAMES, FWB_FEATURE_NAMES
from repro.ml import RandomForestClassifier, permutation_importance, train_test_split


def rank(names, dataset, title: str) -> None:
    X, y = dataset.split_arrays(names)
    Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.3, random_state=7)
    model = RandomForestClassifier(n_estimators=60, random_state=7).fit(Xtr, ytr)
    accuracy = float(np.mean(model.predict(Xte) == yte))
    results = permutation_importance(
        model, Xte, yte, feature_names=names, n_repeats=8, random_state=7
    )
    print(f"{title}  (held-out accuracy {accuracy:.3f})")
    for item in results[:10]:
        bar = "#" * max(1, int(item.importance * 200))
        print(f"  {item.feature:24s} {item.importance:+.3f} +/- {item.std:.3f}  {bar}")
    near_zero = [r.feature for r in results if abs(r.importance) < 0.002]
    print(f"  (near-zero: {', '.join(near_zero)})\n")


def main() -> None:
    dataset = build_ground_truth(n_per_class=300, seed=11)
    rank(FWB_FEATURE_NAMES, dataset, "Augmented feature set (ours)")
    rank(BASE_FEATURE_NAMES, dataset, "Base StackModel feature set")
    print("Note how `has_https` and `n_tld_tokens` contribute nothing on FWB")
    print("data (every FWB site is https with one TLD), while the two")
    print("replacements surface in the augmented ranking — §4.2's argument.")


if __name__ == "__main__":
    main()
