#!/usr/bin/env python
"""Quickstart: detect one FWB phishing attack end to end.

Builds the simulated web, hosts a PayPaul-spoofing phishing page on Weebly
and an innocuous bakery site next to it, trains the FreePhish classifier on
a small ground-truth corpus, and classifies both pages — printing the
extracted features so you can see *why* the verdicts differ.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import FreePhishClassifier, build_ground_truth
from repro.core.features import FWB_FEATURE_NAMES
from repro.core.preprocess import Preprocessor
from repro.ml import RandomForestClassifier
from repro.sitegen import LegitimateSiteGenerator, PhishingSiteGenerator
from repro.sitegen.phishing import PhishingVariant


def main() -> None:
    rng = np.random.default_rng(7)

    print("== 1. Train the classifier on a ground-truth corpus ==")
    dataset = build_ground_truth(n_per_class=150, seed=3)
    classifier = FreePhishClassifier(
        model=RandomForestClassifier(n_estimators=40, random_state=7)
    )
    classifier.fit_pages(dataset.pages, dataset.labels)
    print(f"   trained on {len(dataset)} labelled FWB pages\n")

    web = dataset.web  # reuse the simulated internet the corpus lives on
    weebly = web.fwb_providers["weebly"]

    print("== 2. An attacker creates a phishing site on Weebly ==")
    phishing_generator = PhishingSiteGenerator()
    spec = phishing_generator.sample_spec(
        weebly.service, rng, variant=PhishingVariant.CREDENTIAL
    )
    spec.cloaked = False
    spec.obfuscate_banner = True
    spec.noindex = True
    phishing_site = phishing_generator.create_site(weebly, now=0, rng=rng, spec=spec)
    print(f"   {phishing_site.root_url}  (spoofing {spec.brand.name})")

    print("== 3. A legitimate user creates a bakery site ==")
    benign_site = LegitimateSiteGenerator().create_fwb_site(weebly, now=0, rng=rng)
    print(f"   {benign_site.root_url}\n")

    print("== 4. FreePhish snapshots and classifies both ==")
    preprocessor = Preprocessor(web)
    for site in (phishing_site, benign_site):
        page = preprocessor.process(site.root_url, now=10)
        prediction = classifier.classify_page(page)
        verdict = "PHISHING" if prediction.label else "benign"
        print(f"   {site.root_url}")
        print(f"     verdict: {verdict}  (p={prediction.probability:.2f}, "
              f"{prediction.runtime_seconds * 1000:.1f} ms)")
        interesting = (
            "has_login_form", "brand_in_url", "title_brand_mismatch",
            "obfuscated_fwb_banner", "has_noindex",
        )
        values = {k: page.features.values[k] for k in interesting}
        print(f"     features: {values}\n")

    print("== 5. Certificates and WHOIS show the FWB evasion ==")
    record = web.whois.lookup(phishing_site.root_url, now=10)
    certificate = web.ca.certificate_for(phishing_site.root_url)
    print(f"   WHOIS age of {phishing_site.host}: {record.age_years:.1f} years "
          f"(inherited from weebly.com)")
    print(f"   TLS certificate: CN={certificate.common_name}, "
          f"{certificate.level.value} (shared wildcard)")
    print(f"   in CT log as itself? {web.ct_log.contains_host(phishing_site.host)}")


if __name__ == "__main__":
    main()
