#!/usr/bin/env python
"""§5.5 walkthrough: the three evasive FWB attack vectors.

Constructs one instance of each variant — a two-step landing page, an
iframe embedding, and a malicious drive-by download — shows what a naive
markup scanner sees versus what the dynamic heuristics uncover, and then
runs the automatic vector classifier over all three.

Run:  python examples/evasive_attacks.py
"""

from __future__ import annotations

import numpy as np

from repro.core.evasive import classify_evasive, has_credential_fields
from repro.simnet import Browser, Web
from repro.sitegen import PhishingSiteGenerator
from repro.sitegen.kits import PhishingKitGenerator
from repro.sitegen.phishing import PhishingVariant


def main() -> None:
    rng = np.random.default_rng(5)
    web = Web()
    browser = Browser(web)
    phishing_generator = PhishingSiteGenerator()
    kit_generator = PhishingKitGenerator()

    # The attacker-controlled external landing page both evasive variants use.
    target = kit_generator.create_site(web.self_hosting, now=0, rng=rng)
    print(f"attacker's hidden credential page: {target.root_url}\n")

    cases = []
    for service_name, variant in (
        ("google_sites", PhishingVariant.TWO_STEP),
        ("blogspot", PhishingVariant.IFRAME),
        ("sharepoint", PhishingVariant.DRIVEBY),
    ):
        provider = web.fwb_providers[service_name]
        spec = phishing_generator.sample_spec(
            provider.service, rng, variant=variant,
            target_url=str(target.root_url),
        )
        cases.append(phishing_generator.create_site(provider, now=0, rng=rng, spec=spec))

    for site in cases:
        url = site.root_url
        snapshot = browser.snapshot(url, now=10)
        print(f"-- {url}  (truth: {site.metadata['variant']})")
        print(f"   credential fields on the page itself: "
              f"{has_credential_fields(snapshot)}")
        print(f"   outbound links: {[str(u) for u in snapshot.outbound_links]}")
        print(f"   iframes resolved: "
              f"{[(str(src), bool(markup)) for src, markup in snapshot.iframe_contents]}")
        print(f"   downloads: "
              f"{[(a.filename, a.vt_detections) for a in snapshot.downloads]}")
        vector = classify_evasive(snapshot, browser, now=10)
        print(f"   heuristic classification: {vector.value if vector else None}")
        # What a dynamic analysis (PhishIntention-style) additionally sees:
        chain = browser.follow_workflow(url, now=10)
        if len(chain) > 1:
            print(f"   clicking the call-to-action lands on {chain[1].url} "
                  f"(credentials there: "
                  f"{bool(chain[1].document.password_inputs())})")
        print()


if __name__ == "__main__":
    main()
