#!/usr/bin/env python
"""The paper's closing prediction, run as an experiment.

§5.1: "The lack of blocklist coverage for a particular FWB might entice
attackers to more frequently abuse that service." Here an adaptive
attacker starts from the measured abuse distribution, observes which of
its attacks survive (site still up, post still live) after each round, and
re-weights its FWB choice accordingly — migrating off the services that
police phishing and onto the laggards.

Run:  python examples/adaptive_attacker.py
"""

from __future__ import annotations

from repro.config import SimulationConfig
from repro.sim import CampaignWorld, run_adaptation_experiment

RESPONSIVE = ("weebly", "000webhost", "wix")
LAGGARDS = ("google_sites", "sharepoint", "wordpress", "firebase", "godaddysites")


def main() -> None:
    world = CampaignWorld(
        SimulationConfig(seed=41, duration_days=1, target_fwb_phishing=50),
        train_samples_per_class=50,
    )
    print("running 5 feedback rounds of 200 launches each...\n")
    shares = run_adaptation_experiment(
        world, n_rounds=5, launches_per_round=200
    )

    print("round-by-round FWB share (top services)")
    names = sorted(shares[0], key=lambda n: -shares[0][n])[:8]
    header = "service        " + "  ".join(f"r{i}" for i in range(len(shares)))
    print(header)
    for name in names:
        row = "  ".join(f"{s[name]:.2f}" for s in shares)
        tag = ("  <- responsive" if name in RESPONSIVE
               else "  <- laggard" if name in LAGGARDS else "")
        print(f"{name:14s} {row}{tag}")

    first, last = shares[0], shares[-1]
    responsive = sum(first[n] for n in RESPONSIVE), sum(last[n] for n in RESPONSIVE)
    laggard = sum(first[n] for n in LAGGARDS), sum(last[n] for n in LAGGARDS)
    print(f"\nresponsive trio mass : {responsive[0]:.2f} -> {responsive[1]:.2f}")
    print(f"laggard-five mass    : {laggard[0]:.2f} -> {laggard[1]:.2f}")
    print("\nThe migration the paper predicted: policing pushes abuse toward")
    print("the services that respond slowest — without lowering total abuse.")


if __name__ == "__main__":
    main()
