#!/usr/bin/env python
"""The FreePhish browser extension guarding a user's browsing session.

Mirrors Figure 13: the extension intercepts navigation, blocks URLs on the
FreePhish backend feed instantly, classifies unknown FWB pages with the
shipped model, and lets benign traffic through. A simulated user then
clicks through a mixed stream of links.

Run:  python examples/browser_extension.py
"""

from __future__ import annotations

import numpy as np

from repro import FreePhishClassifier, FreePhishExtension, build_ground_truth
from repro.ml import RandomForestClassifier
from repro.sitegen import (
    LegitimateSiteGenerator,
    PhishingKitGenerator,
    PhishingSiteGenerator,
)


def main() -> None:
    rng = np.random.default_rng(99)

    dataset = build_ground_truth(n_per_class=150, seed=3)
    web = dataset.web
    classifier = FreePhishClassifier(
        model=RandomForestClassifier(n_estimators=40, random_state=1)
    )
    classifier.fit_pages(dataset.pages, dataset.labels)
    extension = FreePhishExtension(web, classifier)

    phishing_generator = PhishingSiteGenerator()
    benign_generator = LegitimateSiteGenerator()
    kit_generator = PhishingKitGenerator()
    providers = list(web.fwb_providers.values())

    # The backend has already confirmed a few attacks -> feed sync.
    known = [
        phishing_generator.create_site(providers[i % 17], now=0, rng=rng)
        for i in range(3)
    ]
    extension.update_feed([site.root_url for site in known])
    print(f"feed synced with {len(extension.feed)} known phishing URLs\n")

    # The user's browsing session: a mix of links from social media.
    session = []
    for i in range(4):
        session.append(("fwb phishing", phishing_generator.create_site(
            providers[(7 * i) % 17], now=0, rng=rng)))
    for i in range(4):
        session.append(("benign", benign_generator.create_fwb_site(
            providers[(3 * i) % 17], now=0, rng=rng)))
    session.append(("known (feed)", known[0]))
    session.append(("self-hosted kit", kit_generator.create_site(
        web.self_hosting, now=0, rng=rng)))
    rng.shuffle(session)

    blocked = 0
    for kind, site in session:
        result = extension.navigate(site.root_url, now=10)
        status = "BLOCKED " if result.blocked else "allowed "
        blocked += result.blocked
        print(f"  {status} [{result.verdict.value:18s}] ({kind:15s}) {site.root_url}")

    checked = extension.stats["checked"]
    print(f"\n{blocked} navigations blocked out of {checked} checks")
    print("note: self-hosted URLs pass through — the extension's scope is "
          "FWB attacks; Safe Browsing covers the rest.")


if __name__ == "__main__":
    main()
