#!/usr/bin/env python
"""A scaled-down replica of the paper's six-month measurement campaign.

Runs the full FreePhish loop — streaming from simulated Twitter/Facebook
every 10 minutes, snapshotting, classifying, reporting to abuse desks, and
longitudinally monitoring four blocklists, 76 VirusTotal engines, host
takedowns, and platform moderation — then prints Tables 3 & 4 and the
headline figures.

Run:  python examples/measurement_campaign.py [--days N] [--target N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import CampaignWorld, SimulationConfig
from repro.analysis import (
    build_fig9,
    build_table3,
    build_table4,
)
from repro.analysis.report import render_figure, render_table3, render_table4


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=5,
                        help="campaign length in simulated days")
    parser.add_argument("--target", type=int, default=600,
                        help="number of FWB phishing URLs to generate")
    parser.add_argument("--seed", type=int, default=20231024)
    args = parser.parse_args()

    config = SimulationConfig(
        seed=args.seed,
        duration_days=args.days,
        target_fwb_phishing=args.target,
    )
    print(f"running {args.days}-day campaign "
          f"(~{args.target} FWB + ~{args.target} self-hosted attacks)...")
    world = CampaignWorld(config, train_samples_per_class=180)
    result = world.run(verbose=True)

    print(f"\nstream observations : {result.observations}")
    print(f"classifier detections: {result.detections}")
    print(f"FWB URLs tracked     : {len(result.fwb_timelines)}")
    print(f"self-hosted tracked  : {len(result.self_hosted_timelines)}")

    print("\n" + render_table3(build_table3(result.timelines)))
    print("\n" + render_table4(build_table4(result.timelines)))
    print("\n" + render_figure(build_fig9(result.timelines)))

    fwb_vt = [t.vt_final() for t in result.fwb_timelines]
    self_vt = [t.vt_final() for t in result.self_hosted_timelines]
    print(f"\nVirusTotal detections after one week (median): "
          f"FWB {np.median(fwb_vt):.0f} vs self-hosted {np.median(self_vt):.0f}")

    rates = world.reporting.response_rates_by_fwb()
    print("\nabuse-desk report outcomes (share resolved / acknowledged / silent):")
    for fwb, buckets in sorted(rates.items()):
        print(f"  {fwb:14s} resolved {buckets.get('resolved', 0):.2f}  "
              f"ack {buckets.get('acknowledged', 0):.2f}  "
              f"silent {buckets.get('no_response', 0):.2f}")


if __name__ == "__main__":
    main()
