#!/usr/bin/env python
"""§2 walkthrough: building dataset D1 from raw social streams.

Reproduces the paper's historical methodology end to end: generate the
two-year Twitter/Facebook URL stream, apply the distinct-second-level-
domain filter, label with VirusTotal's >= 2-detections rule, set aside
dynamic-DNS hosts, and plot (as text) the resulting Figure-1 trend plus
the per-quarter shift toward newer FWB services.

Run:  python examples/historical_analysis.py
"""

from __future__ import annotations

from repro.sim import HistoricalPipeline, HistoricalScenario


def bar(value: int, scale: float = 0.4) -> str:
    return "#" * max(1, int(value * scale))


def main() -> None:
    print("running the §2 pipeline over a 1/50-scale two-year stream...\n")
    pipeline = HistoricalPipeline(seed=23)
    dataset = pipeline.run(scale=0.02)

    print("pipeline funnel")
    print(f"  dropped (no second-level domain) : {dataset.dropped_no_sld}")
    print(f"  below VirusTotal >=2 detections  : {dataset.benign_or_undetected}")
    print(f"  dynamic-DNS hosts set aside      : {len(dataset.dyndns_phishing)}")
    print(f"  D1: FWB phishing URLs            : {len(dataset.fwb_phishing)}"
          f" (Twitter {dataset.n_twitter} / Facebook {dataset.n_facebook})\n")

    print("Figure 1 — quarterly FWB phishing volume (measured from D1)")
    counts = dataset.quarterly_counts()
    quarters = sorted({q for q, _p in counts})
    for quarter in quarters:
        twitter = counts.get((quarter, "twitter"), 0)
        facebook = counts.get((quarter, "facebook"), 0)
        year, qq = 2020 + quarter // 4, quarter % 4 + 1
        print(f"  {year}Q{qq}  twitter {twitter:4d} {bar(twitter)}")
        print(f"          facebook {facebook:3d} {bar(facebook)}")

    print("\nservice mix shift (top SLDs per quarter)")
    mix = dataset.fwb_mix_by_quarter()
    for quarter in (min(mix), max(mix)):
        top = ", ".join(
            f"{name} ({count})"
            for name, count in mix[quarter].most_common(5)
        )
        year, qq = 2020 + quarter // 4, quarter % 4 + 1
        print(f"  {year}Q{qq}: {top}")

    print("\nFor the paper-scale series (25.2K URLs) see the scenario view:")
    scenario = HistoricalScenario(seed=11).generate()
    first = scenario.dominant_services(0)
    last = scenario.dominant_services(len(scenario.labels) - 1)
    print(f"  services covering 80% of attacks, {scenario.labels[0]}: {sorted(first)}")
    print(f"  services covering 80% of attacks, {scenario.labels[-1]}: {sorted(last)}")


if __name__ == "__main__":
    main()
