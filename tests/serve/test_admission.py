"""Admission policy and the URL-only degraded fast path."""

import pytest

from repro.core.extension import NavigationVerdict
from repro.errors import ConfigError
from repro.obs.instrument import Instrumentation
from repro.serve.admission import (
    AdmissionController,
    AdmissionDecision,
    FastPathModel,
)


class TestAdmissionController:
    def test_admits_under_limit_degrades_at_limit(self):
        controller = AdmissionController(max_queue_depth=2)
        assert controller.admit(0) is AdmissionDecision.ADMIT
        assert controller.admit(1) is AdmissionDecision.ADMIT
        assert controller.admit(2) is AdmissionDecision.DEGRADE
        assert controller.admit(5) is AdmissionDecision.DEGRADE

    def test_decisions_counted_and_depth_gauged(self):
        instr = Instrumentation(mode="sim")
        controller = AdmissionController(max_queue_depth=1, instrumentation=instr)
        controller.admit(0)
        controller.admit(7)
        snapshot = instr.metrics.snapshot()
        assert snapshot["counters"]["serve.admission.admitted"] == 1
        assert snapshot["counters"]["serve.admission.degraded"] == 1
        assert snapshot["gauges"]["serve.queue.depth"] == 7

    def test_invalid_depth_rejected(self):
        with pytest.raises(ConfigError):
            AdmissionController(max_queue_depth=0)


class TestFastPathModel:
    def test_fails_open_until_fitted(self, ground_truth):
        model = FastPathModel()
        urls = [page.url for page in ground_truth.pages[:5]]
        assert not model.fitted
        assert model.verdicts(urls) == [NavigationVerdict.ALLOWED] * 5

    def test_fitted_model_separates_classes_roughly(self, ground_truth):
        urls = [page.url for page in ground_truth.pages]
        model = FastPathModel().fit_urls(urls, ground_truth.labels)
        verdicts = model.verdicts(urls)
        blocked = [
            verdict is NavigationVerdict.BLOCKED_CLASSIFIER for verdict in verdicts
        ]
        phishing_hits = sum(
            hit for hit, label in zip(blocked, ground_truth.labels) if label == 1
        )
        benign_hits = sum(
            hit for hit, label in zip(blocked, ground_truth.labels) if label == 0
        )
        # URL-only features are weaker than the full set, but on training
        # data the fast path must block phishing far more often than benign.
        assert phishing_hits > ground_truth.n_phishing * 0.6
        assert benign_hits < (len(ground_truth) - ground_truth.n_phishing) * 0.4

    def test_empty_batch(self):
        assert FastPathModel().verdicts([]) == []
