"""Serving-layer fixtures: one session-trained classifier, cheap worlds."""

from __future__ import annotations

import pytest

from repro.core.classifier import FreePhishClassifier
from repro.ml import RandomForestClassifier


@pytest.fixture(scope="session")
def trained_classifier(ground_truth):
    """A FreePhish classifier fitted on the shared ground-truth corpus.

    Read-only across the serve suite; services built on top each own
    their cache/batcher state.
    """
    classifier = FreePhishClassifier(
        model=RandomForestClassifier(n_estimators=20, random_state=0)
    )
    classifier.fit_pages(ground_truth.pages, ground_truth.labels)
    return classifier
