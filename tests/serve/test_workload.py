"""Synthetic navigation workload: seeding, Zipf skew, diurnal curve."""

import pytest

from repro.config import MINUTES_PER_DAY, SeedBank
from repro.errors import ConfigError
from repro.serve.cache import cache_key
from repro.serve.workload import NavigationWorkload
from repro.simnet.url import parse_url


@pytest.fixture()
def urls():
    return [parse_url(f"https://site{i}.weebly.com/") for i in range(50)]


class TestSeeding:
    def test_same_seed_same_stream(self, urls):
        def stream(seed):
            workload = NavigationWorkload(urls, SeedBank(seed))
            return [
                [str(u) for u in requests]
                for _minute, requests in workload.iter_minutes(0, 30)
            ]

        assert stream(5) == stream(5)
        assert stream(5) != stream(6)

    def test_rank_assignment_is_seeded(self, urls):
        def head(seed):
            workload = NavigationWorkload(
                urls, SeedBank(seed), requests_per_minute=400.0
            )
            counts = {}
            for url in workload.minute_requests(0):
                counts[cache_key(url)] = counts.get(cache_key(url), 0) + 1
            return max(counts, key=counts.get)

        # Different seeds put the hot head on different URLs (with 50
        # candidates, a collision across both pairs is vanishingly likely).
        assert len({head(1), head(2), head(3)}) > 1


class TestShape:
    def test_zipf_concentrates_mass_on_head(self, urls):
        workload = NavigationWorkload(
            urls, SeedBank(0), requests_per_minute=300.0, zipf_exponent=1.2
        )
        counts = {}
        for _minute, requests in workload.iter_minutes(0, 60):
            for url in requests:
                counts[cache_key(url)] = counts.get(cache_key(url), 0) + 1
        total = sum(counts.values())
        top5 = sum(sorted(counts.values(), reverse=True)[:5])
        assert top5 / total > 0.4  # 10% of URLs draw >40% of traffic

    def test_diurnal_rate_peaks_at_midday(self, urls):
        workload = NavigationWorkload(
            urls, SeedBank(0), requests_per_minute=100.0, diurnal_amplitude=0.5
        )
        midnight = workload.rate_at(0)
        noon = workload.rate_at(MINUTES_PER_DAY // 2)
        assert noon == pytest.approx(150.0)
        assert midnight == pytest.approx(50.0)
        # The curve repeats daily.
        assert workload.rate_at(MINUTES_PER_DAY + 17) == pytest.approx(
            workload.rate_at(17)
        )

    def test_day_volume_matches_mean_rate(self, urls):
        workload = NavigationWorkload(
            urls, SeedBank(3), requests_per_minute=50.0
        )
        total = sum(
            len(requests)
            for _minute, requests in workload.iter_minutes(0, MINUTES_PER_DAY)
        )
        expected = workload.expected_total(MINUTES_PER_DAY)
        assert expected == pytest.approx(50.0 * MINUTES_PER_DAY, rel=1e-6)
        assert abs(total - expected) / expected < 0.05

    def test_scales_to_millions_per_day(self, urls):
        # 1440 minutes x ~1400 req/min ~= 2M requests; sampling must be
        # vectorized enough to generate the day's head quickly.
        workload = NavigationWorkload(
            urls, SeedBank(1), requests_per_minute=1400.0
        )
        sample = sum(len(workload.minute_requests(m)) for m in range(0, 30))
        assert sample > 10_000
        assert workload.expected_total(MINUTES_PER_DAY) > 1_900_000


class TestValidation:
    def test_rejects_bad_parameters(self, urls):
        with pytest.raises(ConfigError):
            NavigationWorkload([], SeedBank(0))
        with pytest.raises(ConfigError):
            NavigationWorkload(urls, SeedBank(0), zipf_exponent=0.0)
        with pytest.raises(ConfigError):
            NavigationWorkload(urls, SeedBank(0), diurnal_amplitude=1.0)
        with pytest.raises(ConfigError):
            NavigationWorkload(urls, SeedBank(0), requests_per_minute=0.0)
