"""Micro-batcher: flush triggers, dedupe, skip-and-report, determinism."""

import pytest

from repro.core.extension import NavigationVerdict
from repro.core.preprocess import Preprocessor
from repro.errors import ConfigError
from repro.obs.instrument import Instrumentation
from repro.serve.batching import MicroBatcher
from repro.simnet.url import parse_url


@pytest.fixture()
def batcher(web, trained_classifier):
    return MicroBatcher(
        Preprocessor(web), trained_classifier, max_batch_size=4, max_wait_minutes=2
    )


def _sites(web, generator, rng, n, provider="weebly"):
    return [
        generator.create_site(web.fwb_providers[provider], 0, rng).root_url
        for _ in range(n)
    ]


class TestTriggers:
    def test_flushes_when_batch_full(self, batcher, web, phishing_generator, rng):
        for url in _sites(web, phishing_generator, rng, 4):
            batcher.submit(url, now=0)
        assert batcher.due(now=0)

    def test_flushes_at_deadline(self, batcher, web, phishing_generator, rng):
        batcher.submit(_sites(web, phishing_generator, rng, 1)[0], now=0)
        assert not batcher.due(now=1)
        assert batcher.due(now=2)

    def test_empty_queue_never_due(self, batcher):
        assert not batcher.due(now=100)
        assert batcher.flush(now=100) == []

    def test_invalid_config_rejected(self, web, trained_classifier):
        with pytest.raises(ConfigError):
            MicroBatcher(Preprocessor(web), trained_classifier, max_batch_size=0)


class TestScoring:
    def test_flush_preserves_arrival_order(
        self, batcher, web, phishing_generator, rng
    ):
        urls = _sites(web, phishing_generator, rng, 3)
        for url in urls:
            batcher.submit(url, now=0)
        results = batcher.flush(now=1)
        assert [str(r.url) for r in results] == [str(u) for u in urls]
        assert all(r.queued_minutes == 1 for r in results)

    def test_duplicate_urls_scored_once(self, web, trained_classifier,
                                        phishing_generator, rng):
        instr = Instrumentation(mode="sim")
        batcher = MicroBatcher(
            Preprocessor(web), trained_classifier,
            max_batch_size=8, instrumentation=instr,
        )
        url = _sites(web, phishing_generator, rng, 1)[0]
        for _ in range(3):
            batcher.submit(url, now=0)
        results = batcher.flush(now=0)
        assert len(results) == 3
        assert len({r.verdict for r in results}) == 1
        counters = instr.metrics.snapshot()["counters"]
        assert counters["serve.batch.dedup_saved"] == 2

    def test_unreachable_url_does_not_abort_batch(
        self, batcher, web, phishing_generator, rng
    ):
        live = _sites(web, phishing_generator, rng, 2)
        batcher.submit(live[0], now=0)
        batcher.submit(parse_url("https://ghost.weebly.com/"), now=0)
        batcher.submit(live[1], now=0)
        results = batcher.flush(now=0)
        assert [r.verdict is NavigationVerdict.UNREACHABLE for r in results] == [
            False, True, False,
        ]
        assert results[1].probability is None

    def test_score_single_matches_batched_verdict(
        self, batcher, web, phishing_generator, rng
    ):
        url = _sites(web, phishing_generator, rng, 1)[0]
        single = batcher.score_single(url, now=0)
        batcher.submit(url, now=0)
        (batched,) = batcher.flush(now=0)
        assert single.verdict is batched.verdict
        assert single.probability == batched.probability


class TestDeterminism:
    def test_same_inputs_same_flush(self, web, trained_classifier,
                                    phishing_generator, rng):
        urls = _sites(web, phishing_generator, rng, 4)

        def run():
            batcher = MicroBatcher(
                Preprocessor(web), trained_classifier, max_batch_size=4
            )
            for url in urls:
                batcher.submit(url, now=3)
            return [
                (r.key, r.verdict.value, r.probability)
                for r in batcher.flush(now=3)
            ]

        assert run() == run()
