"""VerdictService: layering, provenance tags, overload, invalidation hooks."""

import json

import pytest

from repro.core.extension import NavigationVerdict
from repro.obs.instrument import Instrumentation
from repro.serve.bench import run_serve_bench
from repro.serve.service import ServedFrom, VerdictService
from repro.simnet.url import parse_url


@pytest.fixture()
def service(web, trained_classifier):
    return VerdictService(web, trained_classifier)


def _phish(web, phishing_generator, rng, n=1, provider="weebly"):
    urls = [
        phishing_generator.create_site(web.fwb_providers[provider], 0, rng).root_url
        for _ in range(n)
    ]
    return urls if n > 1 else urls[0]


class TestLayering:
    def test_feed_takes_precedence_and_caches(self, service, web,
                                              benign_generator, rng):
        # Even a page the classifier would allow is blocked once fed.
        site = benign_generator.create_fwb_site(web.fwb_providers["wix"], 0, rng)
        service.update_feed([str(site.root_url)])
        served = service.check(site.root_url, now=5)
        assert served.verdict is NavigationVerdict.BLOCKED_FEED
        assert served.served_from is ServedFrom.FEED
        assert service.check(site.root_url, now=6).served_from is (
            ServedFrom.CACHE_EXACT
        )

    def test_non_fwb_allowed_without_model(self, service):
        served = service.check(parse_url("https://news.example.org/story"), now=0)
        assert served.verdict is NavigationVerdict.ALLOWED
        assert served.served_from is ServedFrom.NON_FWB

    def test_model_path_tags_and_caches(self, service, web,
                                        phishing_generator, rng):
        url = _phish(web, phishing_generator, rng)
        served = service.check(url, now=0)
        assert served.served_from is ServedFrom.MODEL
        assert served.probability is not None
        again = service.check(url, now=1)
        assert again.served_from in (ServedFrom.CACHE_EXACT,
                                     ServedFrom.CACHE_NEGATIVE)
        assert again.verdict is served.verdict

    def test_unreachable_not_cached(self, service):
        url = parse_url("https://ghost.weebly.com/")
        first = service.check(url, now=0)
        assert first.verdict is NavigationVerdict.UNREACHABLE
        assert first.served_from is ServedFrom.MODEL
        assert service.cache.lookup(url, now=0) is None


class TestBatchedPath:
    def test_submit_pump_delivers_model_verdicts(self, web, trained_classifier,
                                                 phishing_generator, rng):
        service = VerdictService(
            web, trained_classifier, max_batch_size=4, max_wait_minutes=1
        )
        urls = _phish(web, phishing_generator, rng, n=4)
        assert all(service.submit(url, now=0) is None for url in urls)
        served = service.pump(now=0)  # batch full -> flushes immediately
        assert len(served) == 4
        assert all(v.served_from is ServedFrom.MODEL for v in served)

    def test_deadline_flush_via_pump(self, web, trained_classifier,
                                     phishing_generator, rng):
        service = VerdictService(
            web, trained_classifier, max_batch_size=100, max_wait_minutes=2
        )
        url = _phish(web, phishing_generator, rng)
        service.submit(url, now=0)
        assert service.pump(now=1) == []
        (served,) = service.pump(now=2)
        assert served.queued_minutes == 2

    def test_front_line_submissions_resolve_immediately(self, web,
                                                        trained_classifier):
        service = VerdictService(web, trained_classifier)
        served = service.submit(parse_url("https://plain.example.com/"), now=0)
        assert served is not None and served.served_from is ServedFrom.NON_FWB


class TestOverload:
    def test_sheds_to_degraded_instead_of_erroring(self, web, trained_classifier,
                                                   phishing_generator, rng):
        instr = Instrumentation(mode="sim")
        service = VerdictService(
            web, trained_classifier,
            max_queue_depth=4, max_batches_per_tick=0,  # model starved
            instrumentation=instr,
        )
        urls = _phish(web, phishing_generator, rng, n=10)
        for url in urls:
            assert service.submit(url, now=0) is None
        served = service.pump(now=0)
        degraded = [v for v in served if v.degraded]
        assert len(degraded) == 6  # 10 arrivals - 4 queue slots
        assert all(
            v.served_from is ServedFrom.MODEL_DEGRADED for v in degraded
        )
        # Unfitted fast path fails open rather than guessing.
        assert all(v.verdict is NavigationVerdict.ALLOWED for v in degraded)
        counters = instr.metrics.snapshot()["counters"]
        assert counters["serve.served.model_degraded"] == 6
        assert counters["serve.admission.degraded"] == 6
        # The queued four still get full-model verdicts at drain.
        finished = service.drain(now=1)
        assert len(finished) == 4
        assert all(v.served_from is ServedFrom.MODEL for v in finished)


class TestInvalidationHooks:
    def test_feed_ingest_purges_cached_allow(self, service, web,
                                             benign_generator, rng):
        site = benign_generator.create_fwb_site(web.fwb_providers["wix"], 0, rng)
        assert service.check(site.root_url, 0).verdict is NavigationVerdict.ALLOWED
        stale = service.update_feed([str(site.root_url)])
        assert stale == 1
        assert service.check(site.root_url, 1).verdict is (
            NavigationVerdict.BLOCKED_FEED
        )

    def test_takedown_purges_cached_block(self, service, web,
                                          phishing_generator, rng):
        url = _phish(web, phishing_generator, rng)
        service.update_feed([str(url)])
        service.check(url, 0)  # populate exact + domain tiers
        assert service.on_takedown(url) > 0
        assert service.cache.lookup(url, now=1) is None


class TestDeterminism:
    def test_same_seed_serve_runs_byte_identical_telemetry(self):
        def run():
            payload = run_serve_bench(
                seed=11, n_sites_per_class=10, n_minutes=20,
                requests_per_minute=12.0, baseline_requests=5,
                mode="sim", include_telemetry=True,
            )
            return json.dumps(payload["telemetry"], sort_keys=True, indent=2)

        assert run() == run()

    def test_bench_payload_reports_required_sections(self):
        payload = run_serve_bench(
            seed=11, n_sites_per_class=10, n_minutes=15,
            requests_per_minute=10.0, baseline_requests=5, mode="sim",
        )
        assert payload["schema"] == "repro.serve/bench.v1"
        assert set(payload["cache"]["hit_rate"]) == {
            "exact", "domain", "negative",
        }
        assert 0.0 <= payload["admission"]["degraded_fraction"] <= 1.0
        assert payload["workload"]["n_requests"] > 0
