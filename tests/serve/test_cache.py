"""Tiered verdict cache: keys, tiers, TTL/LRU, event-driven invalidation."""

import pytest

from repro.core.extension import NavigationVerdict
from repro.errors import ConfigError
from repro.obs.instrument import Instrumentation
from repro.serve.cache import (
    TIER_DOMAIN,
    TIER_EXACT,
    TIER_NEGATIVE,
    TieredVerdictCache,
    cache_key,
    domain_key,
)
from repro.simnet.url import parse_url


class TestKeys:
    def test_cache_key_normalizes_spellings(self):
        assert cache_key("HTTP://Site.Weebly.COM") == cache_key(
            "http://site.weebly.com/"
        )
        assert cache_key("https://a.wixsite.com/page#frag") == cache_key(
            "https://a.wixsite.com/page"
        )

    def test_cache_key_accepts_parsed_urls(self):
        url = parse_url("https://a.weebly.com/login")
        assert cache_key(url) == str(url)

    def test_domain_key_is_the_fwb_subdomain_host(self):
        assert domain_key("https://scam.weebly.com/a/b") == "scam.weebly.com"
        assert domain_key(parse_url("https://Scam.Weebly.com/")) == "scam.weebly.com"


class TestTiers:
    def test_blocked_verdict_hits_exact_then_domain(self):
        cache = TieredVerdictCache()
        url = parse_url("https://scam.weebly.com/login")
        cache.store(url, NavigationVerdict.BLOCKED_CLASSIFIER, now=0)
        hit = cache.lookup(url, now=1)
        assert hit.tier == TIER_EXACT
        assert hit.verdict is NavigationVerdict.BLOCKED_CLASSIFIER
        # A different path on the same condemned host: domain tier.
        sibling = parse_url("https://scam.weebly.com/other")
        hit = cache.lookup(sibling, now=1)
        assert hit.tier == TIER_DOMAIN
        assert hit.verdict is NavigationVerdict.BLOCKED_CLASSIFIER

    def test_benign_verdict_hits_negative_tier_only(self):
        cache = TieredVerdictCache()
        url = parse_url("https://shop.wixsite.com/")
        cache.store(url, NavigationVerdict.ALLOWED, now=0)
        hit = cache.lookup(url, now=1)
        assert hit.tier == TIER_NEGATIVE
        # Benign entries never condemn the host.
        assert cache.lookup(parse_url("https://shop.wixsite.com/page"), 1) is None

    def test_unreachable_is_never_cached(self):
        cache = TieredVerdictCache()
        url = parse_url("https://gone.weebly.com/")
        cache.store(url, NavigationVerdict.UNREACHABLE, now=0)
        assert cache.lookup(url, now=0) is None

    def test_ttl_expires_entries(self):
        cache = TieredVerdictCache(negative_ttl_minutes=10)
        url = parse_url("https://shop.wixsite.com/")
        cache.store(url, NavigationVerdict.ALLOWED, now=0)
        assert cache.lookup(url, now=9) is not None
        assert cache.lookup(url, now=10) is None

    def test_lru_evicts_oldest(self):
        cache = TieredVerdictCache(negative_capacity=2)
        urls = [parse_url(f"https://s{i}.weebly.com/") for i in range(3)]
        for url in urls:
            cache.store(url, NavigationVerdict.ALLOWED, now=0)
        assert cache.lookup(urls[0], now=0) is None  # evicted
        assert cache.lookup(urls[2], now=0) is not None

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            TieredVerdictCache(exact_capacity=0)
        with pytest.raises(ConfigError):
            TieredVerdictCache(domain_ttl_minutes=0)


class TestInvalidation:
    def test_blocklist_ingest_purges_stale_allow(self):
        instr = Instrumentation(mode="sim")
        cache = TieredVerdictCache(instrumentation=instr)
        url = parse_url("https://fresh-scam.weebly.com/")
        cache.store(url, NavigationVerdict.ALLOWED, now=0)
        stale = cache.invalidate_blocked(url)
        assert stale == 1
        assert cache.lookup(url, now=1) is None
        counters = instr.metrics.snapshot()["counters"]
        assert counters["serve.cache.stale_allow"] == 1
        assert counters["serve.cache.stale_block"] == 0

    def test_blocklist_ingest_of_uncached_url_counts_nothing(self):
        cache = TieredVerdictCache()
        assert cache.invalidate_blocked("https://unseen.weebly.com/") == 0

    def test_takedown_purges_stale_block_for_whole_host(self):
        instr = Instrumentation(mode="sim")
        cache = TieredVerdictCache(instrumentation=instr)
        login = parse_url("https://scam.weebly.com/login")
        verify = parse_url("https://scam.weebly.com/verify")
        cache.store(login, NavigationVerdict.BLOCKED_CLASSIFIER, now=0)
        cache.store(verify, NavigationVerdict.BLOCKED_FEED, now=0)
        stale = cache.invalidate_takedown(login)
        # Domain-tier entry + both exact entries were stale blocks.
        assert stale == 3
        assert cache.lookup(login, now=1) is None
        assert cache.lookup(verify, now=1) is None
        counters = instr.metrics.snapshot()["counters"]
        assert counters["serve.cache.stale_block"] == 3
        assert counters["serve.cache.stale_allow"] == 0

    def test_takedown_drops_benign_entries_without_counting_them(self):
        cache = TieredVerdictCache()
        url = parse_url("https://shop.weebly.com/")
        cache.store(url, NavigationVerdict.ALLOWED, now=0)
        assert cache.invalidate_takedown(url) == 0
        assert cache.lookup(url, now=1) is None


class TestMetrics:
    def test_per_tier_hit_counters(self):
        instr = Instrumentation(mode="sim")
        cache = TieredVerdictCache(instrumentation=instr)
        url = parse_url("https://scam.weebly.com/login")
        cache.lookup(url, now=0)  # miss
        cache.store(url, NavigationVerdict.BLOCKED_FEED, now=0)
        cache.lookup(url, now=1)  # exact
        cache.lookup(parse_url("https://scam.weebly.com/x"), now=1)  # domain
        counters = instr.metrics.snapshot()["counters"]
        assert counters["serve.cache.miss"] == 1
        assert counters["serve.cache.hit.exact"] == 1
        assert counters["serve.cache.hit.domain"] == 1
