"""End-to-end integration: the complete study at miniature scale.

Runs the full pipeline with no fixture shortcuts — world assembly, training,
campaign, timeline resolution, table/figure building — and checks that the
paper's qualitative conclusions all hold simultaneously on one run.
"""

import numpy as np
import pytest

from repro import CampaignWorld, SimulationConfig
from repro.analysis import (
    build_fig6,
    build_fig7,
    build_fig9,
    build_table3,
    build_table4,
)
from repro.analysis.report import render_table3


@pytest.fixture(scope="module")
def study():
    config = SimulationConfig(seed=77, duration_days=3, target_fwb_phishing=250)
    world = CampaignWorld(config, train_samples_per_class=120)
    result = world.run()
    return world, result


class TestEndToEnd:
    def test_framework_detected_most_attacks(self, study):
        world, result = study
        # Attacker launched ~2x target (FWB + self-hosted); the classifier
        # should catch the large majority of what the stream delivered.
        launched = len(world.attacker.launched)
        assert result.detections > 0.75 * launched

    def test_no_benign_url_contamination(self, study):
        _world, result = study
        false_positives = [
            t for t in result.timelines if not t.is_phishing_truth
        ]
        assert len(false_positives) <= 0.05 * len(result.timelines)

    def test_paper_conclusion_blocklists(self, study):
        _world, result = study
        rows = build_table3(result.timelines)
        text = render_table3(rows)
        assert "gsb" in text
        for row in rows:
            assert row.self_hosted.coverage >= row.fwb.coverage, row.entity

    def test_paper_conclusion_persistence(self, study):
        """FWB attacks persist much longer on every axis."""
        _world, result = study
        fwb = result.fwb_timelines
        self_hosted = result.self_hosted_timelines

        def alive_after_week(timelines, extractor):
            return np.mean([extractor(t) is None for t in timelines])

        assert alive_after_week(fwb, lambda t: t.post_removal_offset) > \
            alive_after_week(self_hosted, lambda t: t.post_removal_offset)
        assert alive_after_week(fwb, lambda t: t.site_removal_offset) > \
            alive_after_week(self_hosted, lambda t: t.site_removal_offset)

    def test_paper_conclusion_detection_counts(self, study):
        _world, result = study
        fwb_median = np.median([t.vt_final() for t in result.fwb_timelines])
        self_median = np.median([t.vt_final() for t in result.self_hosted_timelines])
        assert self_median > fwb_median

    def test_figures_build_from_one_run(self, study):
        _world, result = study
        for builder in (build_fig6, build_fig7, build_fig9):
            figure = builder(result.timelines)
            assert figure.series
        rows = build_table4(result.timelines)
        assert sum(row.n_urls for row in rows) == len(result.fwb_timelines)

    def test_extension_blocks_campaign_urls(self, study):
        from repro import FreePhishExtension
        from repro.simnet.url import parse_url

        world, result = study
        extension = FreePhishExtension(world.web, world.classifier)
        extension.update_feed(world.framework.detected_urls())
        sample = [t.url for t in result.fwb_timelines[:10]]
        verdicts = [extension.check(parse_url(u), now=10 ** 7) for u in sample]
        blocked = sum(1 for v in verdicts if v.name.startswith("BLOCKED"))
        assert blocked == len(sample)

    def test_reporting_matches_detections(self, study):
        world, result = study
        assert len(world.reporting.reports) == result.detections
        fwb_reports = [r for r in world.reporting.reports if r.fwb_name]
        assert len(fwb_reports) == len(result.fwb_timelines)
