"""§3 characterization study reproduction."""

import pytest

from repro.analysis.characterization import (
    CODER_ONE,
    CODER_TWO,
    CharacterizationReport,
    characterize,
)


@pytest.fixture(scope="module")
def report() -> CharacterizationReport:
    return characterize(n_sample=600, seed=13)


class TestCharacterization:
    def test_confirmation_rate_matches_paper(self, report):
        """4,656 of 5,000 sampled URLs were confirmed phishing (93.1%)."""
        assert report.confirmation_rate == pytest.approx(0.931, abs=0.01)

    def test_kappa_in_high_agreement_band(self, report):
        """Paper: κ = 0.78 — 'high agreement'."""
        assert 0.6 < report.kappa < 0.95

    def test_com_share_near_89_percent(self, report):
        assert 0.84 < report.com_share < 0.95

    def test_domain_age_contrast(self, report):
        """FWB phishing looks years old; self-hosted phishing looks fresh."""
        assert report.median_fwb_age_years > 10
        assert report.median_self_hosted_age_days < 200
        fwb_days = report.median_fwb_age_years * 365
        assert fwb_days > 20 * report.median_self_hosted_age_days

    def test_low_indexing_rate(self, report):
        assert report.indexed_rate < 0.10

    def test_noindex_rate_near_paper(self, report):
        assert 0.35 < report.noindex_rate < 0.55

    def test_coders_have_distinct_blind_spots(self):
        assert CODER_ONE.evasive_miss_rate > CODER_TWO.evasive_miss_rate
        assert CODER_TWO.foreign_miss_rate > CODER_ONE.foreign_miss_rate

    def test_deterministic(self):
        a = characterize(n_sample=200, seed=5)
        b = characterize(n_sample=200, seed=5)
        assert a == b
