"""Bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.analysis.coverage import ENTITY_EXTRACTORS
from repro.analysis.stats import bootstrap_ci, coverage_ci
from repro.errors import ConfigError


class TestBootstrapCI:
    def test_interval_contains_true_mean_for_clean_sample(self):
        rng = np.random.default_rng(3)
        data = rng.normal(loc=5.0, scale=1.0, size=400)
        low, high = bootstrap_ci(data, seed=1)
        assert low < 5.0 < high
        assert high - low < 0.5  # n=400 keeps the band tight

    def test_higher_confidence_widens_interval(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=100)
        narrow = bootstrap_ci(data, confidence=0.8, seed=1)
        wide = bootstrap_ci(data, confidence=0.99, seed=1)
        assert wide[1] - wide[0] > narrow[1] - narrow[0]

    def test_median_statistic(self):
        data = [1, 2, 3, 4, 100]  # outlier-robust statistic
        low, high = bootstrap_ci(data, statistic=np.median, seed=1)
        assert high <= 100
        assert low >= 1

    def test_deterministic_given_seed(self):
        data = list(range(50))
        assert bootstrap_ci(data, seed=7) == bootstrap_ci(data, seed=7)

    def test_validation(self):
        with pytest.raises(ConfigError):
            bootstrap_ci([])
        with pytest.raises(ConfigError):
            bootstrap_ci([1.0], confidence=1.5)


class TestCoverageCI:
    def test_bounds_are_probabilities(self):
        offsets = [10, None, 20, None, None, 30, 40, None]
        low, high = coverage_ci(offsets, seed=2)
        assert 0.0 <= low <= high <= 1.0
        assert low < 0.5 < high  # point estimate is 0.5

    def test_campaign_gap_significant(self, campaign_result):
        """The FWB vs self-hosted GSB gap exceeds sampling noise: the two
        bootstrap intervals do not overlap even at small campaign scale."""
        extractor = ENTITY_EXTRACTORS["gsb"]
        fwb = [extractor(t) for t in campaign_result.fwb_timelines]
        self_hosted = [extractor(t) for t in campaign_result.self_hosted_timelines]
        _fwb_low, fwb_high = coverage_ci(fwb, seed=3)
        self_low, _self_high = coverage_ci(self_hosted, seed=3)
        assert fwb_high < self_low
