"""Statistics, coverage computation, table and figure builders."""

import itertools

import numpy as np
import pytest

from repro.analysis import (
    build_fig1,
    build_fig5,
    build_fig6,
    build_fig7,
    build_fig8,
    build_fig9,
    build_table1,
    build_table3,
    build_table4,
    cohens_kappa,
    coverage_fraction,
    coverage_stats,
    coverage_over_time,
    empirical_cdf,
    median_or_none,
)
from repro.analysis.report import (
    format_table,
    render_figure,
    render_table1,
    render_table3,
    render_table4,
)
from repro.analysis.stats import min_max, survival_at
from repro.core.monitor import UrlTimeline
from repro.errors import ConfigError


_URL_COUNTER = itertools.count(1)


def _timeline(fwb, platform="twitter", gsb=None, post=None, site=None, vt=0):
    return UrlTimeline(
        url=f"https://x{next(_URL_COUNTER)}.example.com/",
        platform=platform,
        fwb_name=fwb,
        first_seen=0,
        blocklist_offsets={
            "gsb": gsb, "phishtank": None, "openphish": None, "ecrimex": None,
        },
        post_removal_offset=post,
        site_removal_offset=site,
        vt_samples=[(180, 0), (1440, vt), (7 * 1440, vt)],
    )


class TestStats:
    def test_median_or_none(self):
        assert median_or_none([]) is None
        assert median_or_none([3, 1, 2]) == 2

    def test_coverage_fraction(self):
        assert coverage_fraction([1, None, 3, None]) == 0.5
        assert coverage_fraction([]) == 0.0

    def test_empirical_cdf(self):
        cdf = empirical_cdf([1, 2, 2, 5], grid=[0, 2, 5, 10])
        assert cdf == [0.0, 0.75, 1.0, 1.0]
        assert empirical_cdf([], [1, 2]) == [0.0, 0.0]

    def test_cohens_kappa_perfect_and_chance(self):
        assert cohens_kappa([1, 0, 1, 0], [1, 0, 1, 0]) == 1.0
        # Independent labels: kappa near zero.
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2, 2000)
        b = rng.integers(0, 2, 2000)
        assert abs(cohens_kappa(a, b)) < 0.1

    def test_cohens_kappa_known_value(self):
        # 2x2 example: observed .7, expected .5 -> kappa 0.4
        a = [1] * 35 + [1] * 15 + [0] * 15 + [0] * 35
        b = [1] * 35 + [0] * 15 + [1] * 15 + [0] * 35
        assert cohens_kappa(a, b) == pytest.approx(0.4)

    def test_kappa_validation(self):
        with pytest.raises(ConfigError):
            cohens_kappa([1], [1, 0])

    def test_survival_and_minmax(self):
        offsets = [60, 120, None]
        assert survival_at(offsets, 90) == pytest.approx(2 / 3)
        assert min_max(offsets) == (60, 120)
        assert min_max([None]) == (None, None)


class TestCoverage:
    def test_coverage_stats(self):
        timelines = [
            _timeline("weebly", gsb=60),
            _timeline("weebly", gsb=120),
            _timeline("weebly", gsb=None),
        ]
        stats = coverage_stats(timelines, "gsb")
        assert stats.coverage == pytest.approx(2 / 3)
        assert stats.median_minutes == 90
        assert stats.min_minutes == 60 and stats.max_minutes == 120
        assert stats.median_hhmm == "01:30"
        assert stats.min_max_hhmm == "01:00/02:00"

    def test_empty_group(self):
        stats = coverage_stats([], "gsb")
        assert stats.coverage == 0.0 and stats.median_hhmm == "n/a"

    def test_coverage_over_time_monotone(self):
        timelines = [_timeline("weebly", gsb=g) for g in (30, 90, 600, None)]
        curve = coverage_over_time(timelines, "gsb", [0.5, 1, 2, 24])
        assert curve == [0.25, 0.25, 0.5, 0.75]
        assert curve == sorted(curve)


class TestTables:
    def test_table1_similarity_ordering(self):
        rows = build_table1(seed=5, sites_per_class=6, max_pairs=20)
        by_name = {row.fwb: row.median_similarity for row in rows}
        # Heavy-boilerplate builders beat raw-HTML hosting (Table 1's point).
        assert by_name["weebly"] > by_name["github_io"]
        assert all(0 <= row.median_similarity <= 1 for row in rows)

    def test_table3_shape(self, campaign_result):
        rows = build_table3(campaign_result.timelines)
        assert [r.entity for r in rows] == [
            "phishtank", "openphish", "gsb", "ecrimex", "platform", "domain",
        ]
        gsb = next(r for r in rows if r.entity == "gsb")
        assert gsb.self_hosted.coverage > gsb.fwb.coverage

    def test_table4_grouping(self, campaign_result):
        rows = build_table4(campaign_result.timelines)
        assert rows, "at least one FWB should appear"
        assert rows[0].n_urls >= rows[-1].n_urls  # sorted by volume
        names = {row.fwb for row in rows}
        assert "weebly" in names
        for row in rows:
            assert set(row.entities) == {
                "domain", "platform", "phishtank", "openphish", "gsb", "ecrimex",
            }


class TestFigures:
    def test_fig1_series(self):
        figure = build_fig1()
        assert len(figure.x_values) == 11
        assert sum(figure.series["twitter"]) == 16300
        assert sum(figure.series["facebook"]) == 8900

    def test_fig5_brand_histogram(self):
        slugs = ["facebrook"] * 5 + ["paypaul"] * 3 + ["netflux"] * 1 + [None] * 4
        figure = build_fig5(slugs, top_n=2)
        assert figure.x_values == ["facebrook", "paypaul"]
        assert figure.series["attacks"] == [5.0, 3.0]
        assert figure.series["unique_brands_total"][0] == 3.0

    def test_fig6_curves_monotone(self, campaign_result):
        figure = build_fig6(campaign_result.timelines)
        for name, series in figure.series.items():
            assert series == sorted(series), name
            assert all(0 <= v <= 1 for v in series)

    def test_fig7_cdf_properties(self, campaign_result):
        figure = build_fig7(campaign_result.timelines)
        for series in figure.series.values():
            assert series == sorted(series)
            assert series[-1] == pytest.approx(1.0)

    def test_fig7_fwb_dominates_self_hosted(self, campaign_result):
        """FWB URLs accumulate fewer detections: their CDF sits above."""
        figure = build_fig7(campaign_result.timelines)
        mid = 8  # detections
        idx = figure.x_values.index(mid)
        fwb = figure.series["fwb_twitter"][idx]
        self_hosted = figure.series["self_hosted_twitter"][idx]
        assert fwb > self_hosted

    def test_fig8_shares_bounded(self, campaign_result):
        figure = build_fig8(campaign_result.timelines)
        for series in figure.series.values():
            assert all(0 <= v <= 1 for v in series)
        # Share at <=2 detections only shrinks as engines catch up.
        fwb = figure.series["fwb_le_2"]
        assert fwb[0] >= fwb[-1]

    def test_fig9_platform_gap(self, campaign_result):
        figure = build_fig9(campaign_result.timelines)
        idx = figure.x_values.index(24)
        assert (
            figure.series["twitter_self_hosted"][idx]
            > figure.series["twitter_fwb"][idx]
        )


class TestRendering:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_table1(self):
        rows = build_table1(seed=5, sites_per_class=4, max_pairs=8,
                            services=("weebly",))
        text = render_table1(rows)
        assert "weebly" in text and "%" in text

    def test_render_table3_and_4(self, campaign_result):
        text3 = render_table3(build_table3(campaign_result.timelines))
        assert "gsb" in text3 and "FWB cov" in text3
        text4 = render_table4(build_table4(campaign_result.timelines))
        assert "URLs" in text4

    def test_render_figure(self, campaign_result):
        text = render_figure(build_fig9(campaign_result.timelines))
        assert "Fig.9" in text
