"""Report rendering dispatch and formatting edge cases."""

import pytest

from repro.analysis.report import (
    format_table,
    render_rows,
    render_table2,
)
from repro.analysis.tables import Table2Row


class TestFormatTable:
    def test_pads_to_widest_cell(self):
        text = format_table(["col"], [["wide-value"], ["x"]])
        lines = text.splitlines()
        assert all(len(line) >= len("wide-value") for line in lines[:2])

    def test_separator_row(self):
        text = format_table(["a"], [["1"]])
        assert text.splitlines()[1].startswith("-")


class TestRenderRows:
    def test_dispatch_table2(self):
        rows = [Table2Row("M", 0.9, 0.8, 0.7, 0.75, 1.0, 0.001)]
        text = render_rows(rows)
        assert "0.90" in text and "1.0ms" in text

    def test_dispatch_table1_and_3_4(self, campaign_result):
        from repro.analysis import build_table3, build_table4

        assert "FWB cov" in render_rows(build_table3(campaign_result.timelines))
        assert "URLs" in render_rows(build_table4(campaign_result.timelines))

    def test_empty(self):
        assert render_rows([]) == "(empty)"

    def test_unknown_type(self):
        with pytest.raises(TypeError):
            render_rows([object()])


class TestRenderTable2:
    def test_milliseconds_formatting(self):
        row = Table2Row("X", 1, 1, 1, 1, 12.345, 0.0123)
        text = render_table2([row])
        assert "12.3ms" in text
        assert "12.35" in text  # total seconds column
