"""Social platform mechanics: posts, moderation, APIs."""

import numpy as np
import pytest

from repro.errors import ConfigError, StreamError
from repro.simnet.url import parse_url
from repro.social import (
    CrowdTangleAPI,
    FacebookPlatform,
    ModerationModel,
    Post,
    PostStatus,
    TwitterAPI,
    TwitterPlatform,
)
from repro.social.posts import compose_post_text


@pytest.fixture()
def twitter(rng):
    return TwitterPlatform(rng)


@pytest.fixture()
def facebook(rng):
    return FacebookPlatform(rng)


class TestPosts:
    def test_url_extraction_from_text(self):
        post = Post("twitter", "t-1", "a", "see https://x.weebly.com/page now", 0)
        assert [str(u) for u in post.urls] == ["https://x.weebly.com/page"]

    def test_compose_post_text_embeds_url(self, rng):
        url = parse_url("https://scam.weebly.com/")
        text = compose_post_text(url, phishing=True, rng=rng)
        assert str(url) in text

    def test_liveness_transitions(self):
        post = Post("twitter", "t-2", "a", "text", created_at=0)
        assert post.is_live(100)
        post.remove(50)
        assert post.status is PostStatus.REMOVED_BY_PLATFORM
        assert post.is_live(40) and not post.is_live(60)

    def test_user_deletion_status(self):
        post = Post("twitter", "t-3", "a", "text", created_at=0)
        post.remove(10, by_user=True)
        assert post.status is PostStatus.DELETED_BY_USER

    def test_remove_idempotent(self):
        post = Post("twitter", "t-4", "a", "text", created_at=0)
        post.remove(10)
        post.remove(99)
        assert post.removed_at == 10


class TestModerationModel:
    def test_high_suspicion_removed_more_often_and_faster(self):
        model = ModerationModel(base_removal_rate=0.9,
                                median_delay_minutes=100.0)
        rng = np.random.default_rng(0)
        high = [model.decide(0.95, rng) for _ in range(400)]
        low = [model.decide(0.10, rng) for _ in range(400)]
        high_rate = np.mean([d.will_remove for d in high])
        low_rate = np.mean([d.will_remove for d in low])
        assert high_rate > 3 * low_rate
        high_delays = [d.delay_minutes for d in high if d.will_remove]
        low_delays = [d.delay_minutes for d in low if d.will_remove]
        assert np.median(high_delays) < np.median(low_delays)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            ModerationModel(base_removal_rate=1.2)
        with pytest.raises(ConfigError):
            ModerationModel(median_delay_minutes=0)

    def test_suspicion_floor(self):
        model = ModerationModel(base_removal_rate=1.0, suspicion_floor=0.5)
        rng = np.random.default_rng(1)
        decisions = [model.decide(0.0, rng) for _ in range(200)]
        assert np.mean([d.will_remove for d in decisions]) > 0.3


class TestPlatform:
    def test_publish_and_query_window(self, twitter):
        twitter.publish("a", "u", now=5)
        twitter.publish("b", "u", now=15)
        window = twitter.posts_between(0, 10)
        assert [p.text for p in window] == ["a"]
        with pytest.raises(StreamError):
            twitter.posts_between(10, 5)

    def test_scan_schedules_removal(self, twitter):
        post = twitter.publish_url(
            parse_url("https://scam.xyz.example.com/"), "attacker", 0, phishing=True
        )
        # Maximal suspicion: removal should be scheduled for most posts.
        removed = 0
        for i in range(50):
            p = twitter.publish("x https://scam%d.example.com/" % i, "a", 0)
            twitter.scan(p, suspicion=1.0, now=0)
        twitter.apply_moderation(10 ** 9)
        removed = sum(
            1 for p in twitter.all_posts() if p.status is not PostStatus.LIVE
        )
        assert removed >= 35

    def test_moderation_applies_lazily(self, twitter):
        post = twitter.publish("x", "a", now=0)
        twitter._pending_removals.append((post.post_id, 100, False))
        assert twitter.is_post_live(post.post_id, 50)
        assert not twitter.is_post_live(post.post_id, 150)

    def test_remove_reported(self, twitter):
        post = twitter.publish("x", "a", now=0)
        assert twitter.remove_reported(post.post_id, now=10)
        assert not twitter.remove_reported(post.post_id, now=11)
        assert twitter.remove_reported("missing", now=1) is False


class TestAPIs:
    def test_twitter_api_surface(self, twitter):
        post = twitter.publish("hello https://a.weebly.com/", "u", now=3)
        api = TwitterAPI(twitter)
        assert [p.post_id for p in api.search_recent(0, 10)] == [post.post_id]
        assert api.tweet_exists(post.post_id, now=5)
        assert api.lookup(post.post_id) is post

    def test_crowdtangle_api_surface(self, facebook):
        post = facebook.publish("hello", "u", now=3)
        api = CrowdTangleAPI(facebook)
        assert [p.post_id for p in api.posts(0, 10)] == [post.post_id]
        assert api.post_exists(post.post_id, now=5)
        assert api.lookup("nope") is None

    def test_post_ids_unique_per_platform(self, twitter, facebook):
        ids = {twitter.publish("x", "u", 0).post_id for _ in range(5)}
        ids |= {facebook.publish("x", "u", 0).post_id for _ in range(5)}
        assert len(ids) == 10
