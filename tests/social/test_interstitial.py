"""Twitter's click-through warning interstitial (Figure 10)."""

import numpy as np
import pytest

from repro.simnet.url import parse_url
from repro.social import TwitterPlatform
from repro.webdoc import parse_html


@pytest.fixture()
def twitter(rng):
    return TwitterPlatform(rng)


class TestInterstitial:
    def test_unflagged_url_has_no_warning(self, twitter):
        assert twitter.interstitial_for(parse_url("https://ok.example.com/")) is None

    def test_flagged_url_gets_warning_page(self, twitter):
        url = parse_url("https://scam.weebly.com/")
        twitter.flag_url(url)
        markup = twitter.interstitial_for(url)
        assert markup is not None and str(url) in markup
        document = parse_html(markup)
        assert "unsafe" in document.title.lower()
        assert document.find(predicate=lambda e: e.id == "continue") is not None

    def test_moderation_removal_flags_urls(self, twitter):
        """When Twitter removes a post, the URL inside becomes flagged."""
        url = parse_url("https://malicious-page.weebly.com/")
        post = twitter.publish_url(url, "attacker", now=0, phishing=True)
        twitter._pending_removals.append((post.post_id, 50, False))
        twitter.apply_moderation(100)
        assert twitter.is_flagged(url)
        assert twitter.interstitial_for(url) is not None

    def test_user_deletion_does_not_flag(self, twitter):
        url = parse_url("https://self-deleted.weebly.com/")
        post = twitter.publish_url(url, "user", now=0, phishing=False)
        twitter._pending_removals.append((post.post_id, 50, True))  # by user
        twitter.apply_moderation(100)
        assert not twitter.is_flagged(url)
