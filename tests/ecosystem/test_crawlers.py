"""CT-log and search-index discovery crawlers (§3 blind-spot mechanism)."""

import numpy as np
import pytest

from repro.ecosystem.crawlers import (
    CTLogMonitor,
    SearchIndexCrawler,
    measure_discovery,
)
from repro.simnet import Web
from repro.sitegen import PhishingKitGenerator, PhishingSiteGenerator


@pytest.fixture()
def populated_world(rng):
    web = Web()
    phishing_generator = PhishingSiteGenerator()
    kit_generator = PhishingKitGenerator(https_rate=1.0)
    providers = list(web.fwb_providers.values())
    fwb_hosts = [
        phishing_generator.create_site(providers[i % 17], now=10, rng=rng).host
        for i in range(25)
    ]
    self_hosts = [
        kit_generator.create_site(web.self_hosting, now=10, rng=rng).host
        for _ in range(25)
    ]
    return web, fwb_hosts, self_hosts


class TestCTLogMonitor:
    def test_discovers_brandy_dv_certificates(self, populated_world):
        web, _fwb, self_hosts = populated_world
        monitor = CTLogMonitor(web.ct_log)
        events = monitor.poll(now=100)
        found = {event.host for event in events}
        # Most kit domains embed a brand or action token in the host.
        assert len(found & set(self_hosts)) >= len(self_hosts) * 0.5

    def test_never_sees_fwb_hosts(self, populated_world):
        """The paper's core finding: shared certificates hide FWB attacks."""
        web, fwb_hosts, _self = populated_world
        monitor = CTLogMonitor(web.ct_log)
        events = monitor.poll(now=100)
        found = {event.host for event in events}
        assert not found & set(fwb_hosts)

    def test_poll_is_incremental(self, populated_world, rng):
        web, _fwb, _self = populated_world
        monitor = CTLogMonitor(web.ct_log)
        first = monitor.poll(now=100)
        second = monitor.poll(now=200)  # nothing new logged
        assert first and not second
        # New certificate after the cursor is picked up.
        web.ca.issue_dv("paypaul-verify-new.xyz", now=150)
        third = monitor.poll(now=300)
        assert any(e.host == "paypaul-verify-new.xyz" for e in third)

    def test_event_channel_and_token(self, populated_world):
        web, _fwb, _self = populated_world
        events = CTLogMonitor(web.ct_log).poll(now=100)
        assert all(e.channel == "ct" for e in events)
        assert all(e.matched_token for e in events)


class TestSearchIndexCrawler:
    def test_finds_indexed_brandy_host(self, web):
        from repro.simnet.url import parse_url

        url = parse_url("https://paypaul-login.badhost.xyz/")
        web.search_index.record_incoming_link(url)
        web.search_index.submit(
            url, "<html><title>PayPaul login</title></html>", now=0
        )
        crawler = SearchIndexCrawler(web.search_index)
        events = crawler.poll(now=10)
        assert any(e.host == "paypaul-login.badhost.xyz" for e in events)

    def test_skips_brand_own_domain(self, web):
        from repro.simnet.url import parse_url

        url = parse_url("https://login.paypaul.com/")
        web.search_index.record_incoming_link(url)
        web.search_index.submit(url, "<html><title>PayPaul</title></html>", now=0)
        events = SearchIndexCrawler(web.search_index).poll(now=10)
        assert not any(e.host == "login.paypaul.com" for e in events)

    def test_unindexed_fwb_attacks_invisible(self, populated_world):
        """FWB pages never enter the index (no links / noindex), so the
        search channel finds none of them."""
        web, fwb_hosts, _self = populated_world
        events = SearchIndexCrawler(web.search_index).poll(now=100)
        assert not {e.host for e in events} & set(fwb_hosts)


class TestDiscoveryReport:
    def test_gap_measured(self, populated_world):
        web, fwb_hosts, self_hosts = populated_world
        report = measure_discovery(web, fwb_hosts, self_hosts, now=100)
        assert report.fwb_discovery_rate == 0.0
        assert report.self_hosted_discovery_rate > 0.4
        assert report.n_fwb_attacks == 25

    def test_empty_populations(self, web):
        report = measure_discovery(web, [], [], now=0)
        assert report.fwb_discovery_rate == 0.0
        assert report.self_hosted_discovery_rate == 0.0
