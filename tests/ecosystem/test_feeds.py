"""Blocklist feed-sharing network and the sharing policy experiment."""

import numpy as np
import pytest

from repro.ecosystem import IntelService, default_blocklists
from repro.ecosystem.feeds import (
    DEFAULT_FEED_LINKS,
    FeedLink,
    FeedNetwork,
    sharing_experiment,
)
from repro.simnet import Browser, Web
from repro.sitegen import PhishingKitGenerator, PhishingSiteGenerator

WEEK = 7 * 24 * 60


@pytest.fixture()
def observed_world(rng):
    web = Web()
    intel = IntelService(web, Browser(web))
    blocklists = default_blocklists(intel, seed=5)
    kit_gen = PhishingKitGenerator()
    phish_gen = PhishingSiteGenerator()
    providers = list(web.fwb_providers.values())
    self_urls = []
    fwb_urls = []
    for i in range(60):
        self_urls.append(kit_gen.create_site(web.self_hosting, 0, rng).root_url)
        fwb_urls.append(phish_gen.create_site(providers[i % 17], 0, rng).root_url)
    for blocklist in blocklists.values():
        for url in self_urls + fwb_urls:
            blocklist.observe(url, 0)
    return web, blocklists, self_urls, fwb_urls


class TestFeedNetwork:
    def test_unknown_blocklist_rejected(self, observed_world):
        _web, blocklists, _s, _f = observed_world
        with pytest.raises(KeyError):
            FeedNetwork(blocklists, [FeedLink("phishtank", "nonexistent")])

    def test_sharing_only_adds_coverage(self, observed_world):
        _web, blocklists, self_urls, fwb_urls = observed_world
        network = FeedNetwork(blocklists, DEFAULT_FEED_LINKS)
        for url in self_urls + fwb_urls:
            native = blocklists["gsb"].listing_time(url)
            effective = network.effective_listing_time("gsb", url)
            if native is not None:
                assert effective is not None and effective <= native

    def test_propagation_lag_applied(self, observed_world):
        _web, blocklists, self_urls, _f = observed_world
        network = FeedNetwork(
            blocklists, [FeedLink("gsb", "phishtank", propagation_minutes=500)]
        )
        # Find a URL GSB lists but PhishTank natively misses.
        for url in self_urls:
            gsb_time = blocklists["gsb"].listing_time(url)
            pt_time = blocklists["phishtank"].listing_time(url)
            if gsb_time is not None and pt_time is None:
                effective = network.effective_listing_time("phishtank", url)
                assert effective == gsb_time + 500
                assert not network.effective_contains("phishtank", url, gsb_time)
                assert network.effective_contains("phishtank", url, effective)
                return
        pytest.fail("no GSB-only URL found")

    def test_non_subscriber_unaffected(self, observed_world):
        _web, blocklists, self_urls, _f = observed_world
        network = FeedNetwork(blocklists, DEFAULT_FEED_LINKS)
        for url in self_urls[:10]:
            assert network.effective_listing_time(
                "openphish", url
            ) == blocklists["openphish"].listing_time(url)


class TestSharingExperiment:
    def test_sharing_helps_subscribers_on_self_hosted(self, observed_world):
        _web, blocklists, self_urls, _f = observed_world
        results = sharing_experiment(blocklists, self_urls, WEEK)
        assert results["ecrimex"]["with_sharing"] >= results["ecrimex"]["native"]
        assert results["gsb"]["with_sharing"] >= results["gsb"]["native"]
        # Publishers themselves are unchanged.
        assert results["phishtank"]["with_sharing"] == pytest.approx(
            results["phishtank"]["native"]
        )

    def test_sharing_barely_moves_fwb_coverage(self, observed_world):
        """The policy finding: distribution cannot fix a discovery gap —
        the community lists have almost no FWB listings to share."""
        _web, blocklists, _s, fwb_urls = observed_world
        results = sharing_experiment(blocklists, fwb_urls, WEEK)
        uplift = results["gsb"]["with_sharing"] - results["gsb"]["native"]
        assert uplift < 0.10
