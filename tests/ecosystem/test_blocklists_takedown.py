"""Blocklists and abuse-desk/registrar takedown behaviour."""

import numpy as np
import pytest

from repro.ecosystem import (
    IntelService,
    RegistrarDesk,
    ReportOutcome,
    default_blocklists,
)
from repro.ecosystem.blocklists import BLOCKLIST_NAMES
from repro.ecosystem.takedown import AbuseDesk
from repro.simnet import Browser, Web
from repro.sitegen import PhishingKitGenerator, PhishingSiteGenerator


@pytest.fixture()
def ecosystem(web):
    browser = Browser(web)
    intel = IntelService(web, browser)
    return web, intel, default_blocklists(intel, seed=3)


WEEK = 7 * 24 * 60


class TestBlocklists:
    def test_four_blocklists(self, ecosystem):
        _web, _intel, blocklists = ecosystem
        assert set(blocklists) == set(BLOCKLIST_NAMES)

    def test_observe_is_idempotent(self, ecosystem, kit_generator, rng):
        web, _intel, blocklists = ecosystem
        site = kit_generator.create_site(web.self_hosting, 0, rng)
        gsb = blocklists["gsb"]
        gsb.observe(site.root_url, 10)
        first = gsb.listing_time(site.root_url)
        gsb.observe(site.root_url, 9999)
        assert gsb.listing_time(site.root_url) == first

    def test_contains_respects_listing_time(self, ecosystem, kit_generator, rng):
        web, _intel, blocklists = ecosystem
        gsb = blocklists["gsb"]
        listed = None
        for i in range(20):
            site = kit_generator.create_site(web.self_hosting, 0, rng)
            gsb.observe(site.root_url, 0)
            when = gsb.listing_time(site.root_url)
            if when is not None:
                listed = (site.root_url, when)
                break
        assert listed is not None, "GSB should list most kit URLs"
        url, when = listed
        assert not gsb.contains(url, when - 1)
        assert gsb.contains(url, when)

    def test_gsb_covers_self_hosted_better_than_fwb(self, ecosystem, rng):
        web, _intel, blocklists = ecosystem
        phish_gen = PhishingSiteGenerator()
        kit_gen = PhishingKitGenerator()
        providers = list(web.fwb_providers.values())
        gsb = blocklists["gsb"]
        fwb_hits = self_hits = 0
        n = 40
        for i in range(n):
            fwb_site = phish_gen.create_site(providers[i % 17], 0, rng)
            kit_site = kit_gen.create_site(web.self_hosting, 0, rng)
            gsb.observe(fwb_site.root_url, 0)
            gsb.observe(kit_site.root_url, 0)
            when = gsb.listing_time(fwb_site.root_url)
            fwb_hits += when is not None and when <= WEEK
            when = gsb.listing_time(kit_site.root_url)
            self_hits += when is not None and when <= WEEK
        assert self_hits > 2 * max(fwb_hits, 1)

    def test_benign_pages_rarely_listed(self, ecosystem, benign_generator, rng):
        web, _intel, blocklists = ecosystem
        provider = web.fwb_providers["weebly"]
        listed = 0
        for _ in range(30):
            site = benign_generator.create_fwb_site(provider, 0, rng)
            for blocklist in blocklists.values():
                blocklist.observe(site.root_url, 0)
                if blocklist.listing_time(site.root_url) is not None:
                    listed += 1
        assert listed <= 6  # 30 sites x 4 lists = 120 chances

    def test_entries_recorded(self, ecosystem, kit_generator, rng):
        web, _intel, blocklists = ecosystem
        gsb = blocklists["gsb"]
        for _ in range(10):
            site = kit_generator.create_site(web.self_hosting, 0, rng)
            gsb.observe(site.root_url, 0)
        entries = gsb.entries()
        assert all(e.listed_at >= 0 for e in entries)
        assert len(entries) >= 1


class TestAbuseDesk:
    def _desk(self, web, name, rng):
        return AbuseDesk(web.fwb_providers[name], web, rng)

    def test_responsive_desk_removes_quickly(self, web, phishing_generator, rng):
        desk = self._desk(web, "weebly", rng)
        outcomes = []
        for _ in range(60):
            site = phishing_generator.create_site(web.fwb_providers["weebly"], 0, rng)
            ticket = desk.receive_report(site.root_url, now=10)
            outcomes.append(ticket)
        removal_rate = np.mean([t.removal_at is not None for t in outcomes])
        assert 0.4 < removal_rate < 0.8  # policy says 58.6%

    def test_silent_desk_never_responds(self, web, phishing_generator, rng):
        desk = self._desk(web, "wordpress", rng)
        for _ in range(30):
            site = phishing_generator.create_site(web.fwb_providers["wordpress"], 0, rng)
            ticket = desk.receive_report(site.root_url, now=10)
            assert ticket.outcome is ReportOutcome.NO_RESPONSE

    def test_report_idempotent(self, web, phishing_generator, rng):
        desk = self._desk(web, "weebly", rng)
        site = phishing_generator.create_site(web.fwb_providers["weebly"], 0, rng)
        a = desk.receive_report(site.root_url, now=10)
        b = desk.receive_report(site.root_url, now=99)
        assert a is b

    def test_apply_takedowns_removes_site(self, web, phishing_generator, rng):
        desk = self._desk(web, "weebly", rng)
        removed_any = False
        for _ in range(30):
            site = phishing_generator.create_site(web.fwb_providers["weebly"], 0, rng)
            ticket = desk.receive_report(site.root_url, now=0)
            if ticket.removal_at is not None:
                desk.apply_takedowns(ticket.removal_at + 1)
                assert not web.is_active(site.root_url, ticket.removal_at + 2)
                removed_any = True
                break
        assert removed_any


class TestRegistrarDesk:
    def test_kit_domains_usually_taken_down(self, web, kit_generator, rng):
        intel = IntelService(web, Browser(web))
        desk = RegistrarDesk(web.self_hosting, web, intel, seed=7)
        decided = 0
        for _ in range(40):
            site = kit_generator.create_site(web.self_hosting, 0, rng)
            desk.observe(site.root_url, now=0)
            if desk.removal_time(site.root_url) is not None:
                decided += 1
        assert decided >= 25  # ~77% in the paper

    def test_benign_domains_mostly_spared(self, web, benign_generator, rng):
        intel = IntelService(web, Browser(web))
        desk = RegistrarDesk(web.self_hosting, web, intel, seed=7)
        removed = 0
        for _ in range(30):
            site = benign_generator.create_self_hosted_site(web.self_hosting, 0, rng)
            desk.observe(site.root_url, now=0)
            removed += desk.removal_time(site.root_url) is not None
        assert removed <= 8

    def test_apply_takedowns(self, web, kit_generator, rng):
        intel = IntelService(web, Browser(web))
        desk = RegistrarDesk(web.self_hosting, web, intel, seed=7)
        for _ in range(20):
            site = kit_generator.create_site(web.self_hosting, 0, rng)
            desk.observe(site.root_url, now=0)
            when = desk.removal_time(site.root_url)
            if when is not None:
                desk.apply_takedowns(when + 1)
                assert not web.is_active(site.root_url, when + 2)
                return
        pytest.fail("no takedown scheduled in 20 kit sites")
