"""Intel gathering and the suspicion score's evasion semantics."""

import numpy as np
import pytest

from repro.ecosystem.intel import (
    DEFAULT_WEIGHTS,
    IntelService,
    UrlIntel,
    gather_intel,
    suspicion_score,
)
from repro.simnet import Browser, Web
from repro.simnet.url import parse_url
from repro.sitegen import (
    LegitimateSiteGenerator,
    PhishingKitGenerator,
    PhishingSiteGenerator,
)
from repro.sitegen.phishing import PhishingMixture, PhishingVariant


@pytest.fixture()
def world(web):
    return web, Browser(web)


class TestGatherIntel:
    def test_fwb_credential_page(self, world, phishing_generator, rng):
        web, browser = world
        provider = web.fwb_providers["weebly"]
        spec = phishing_generator.sample_spec(
            provider.service, rng, variant=PhishingVariant.CREDENTIAL
        )
        spec.cloaked = False
        spec.obfuscate_banner = True
        site = phishing_generator.create_site(provider, 0, rng, spec=spec)
        intel = gather_intel(web, browser, site.root_url, now=100)
        assert intel.reachable
        assert intel.is_fwb and intel.fwb_name == "weebly"
        assert intel.has_credential_form
        assert intel.hidden_elements  # the obfuscated banner
        assert not intel.in_ct_log
        assert intel.domain_age_days > 5 * 365
        assert intel.com_tld and not intel.cheap_tld

    def test_self_hosted_kit_page(self, world, kit_generator, rng):
        web, browser = world
        site = kit_generator.create_site(web.self_hosting, now=50, rng=rng)
        intel = gather_intel(web, browser, site.root_url, now=100)
        assert intel.kit_markup
        assert intel.domain_age_days < 1
        assert not intel.is_fwb
        if site.root_url.scheme == "https":
            assert intel.in_ct_log

    def test_unreachable_url(self, world):
        web, browser = world
        intel = gather_intel(
            web, browser, parse_url("https://nowhere.example.org/"), now=0
        )
        assert not intel.reachable
        assert suspicion_score(intel) == 0.0

    def test_driveby_intel(self, world, phishing_generator, rng):
        web, browser = world
        provider = web.fwb_providers["sharepoint"]
        spec = phishing_generator.sample_spec(
            provider.service, rng, variant=PhishingVariant.DRIVEBY
        )
        site = phishing_generator.create_site(provider, 0, rng, spec=spec)
        intel = gather_intel(web, browser, site.root_url, now=10)
        assert intel.malicious_download
        assert intel.download_detections >= 4

    def test_two_step_linkout_detected(self, world, phishing_generator, rng):
        web, browser = world
        provider = web.fwb_providers["google_sites"]
        spec = phishing_generator.sample_spec(
            provider.service, rng, variant=PhishingVariant.TWO_STEP,
            target_url="https://external.example.xyz/login",
        )
        site = phishing_generator.create_site(provider, 0, rng, spec=spec)
        intel = gather_intel(web, browser, site.root_url, now=10)
        assert intel.linkout_button
        assert not intel.has_credential_form


class TestSuspicionScore:
    def test_populations_ordered(self, world, rng):
        """self-hosted phishing >> FWB credential phishing >> benign."""
        web, browser = world
        phish_gen = PhishingSiteGenerator(
            mixture=PhishingMixture(cloak_rate=0.0)
        )
        benign_gen = LegitimateSiteGenerator()
        kit_gen = PhishingKitGenerator()
        provider = web.fwb_providers["weebly"]

        def score(site):
            return suspicion_score(gather_intel(web, browser, site.root_url, 500))

        kits = [score(kit_gen.create_site(web.self_hosting, 0, rng)) for _ in range(10)]
        fwb = [score(phish_gen.create_site(provider, 0, rng)) for _ in range(10)]
        benign = [score(benign_gen.create_fwb_site(provider, 0, rng)) for _ in range(10)]
        assert np.median(kits) > np.median(fwb) + 0.3
        assert np.median(fwb) > np.median(benign)

    def test_score_bounded(self):
        intel = UrlIntel(url=parse_url("https://a.example.com/"), reachable=True)
        for field in ("has_credential_form", "brand_title_mismatch", "kit_markup",
                      "malicious_download", "cheap_tld", "in_ct_log"):
            setattr(intel, field, True)
        intel.sensitive_url_words = 10
        intel.domain_age_days = 1
        assert 0.0 <= suspicion_score(intel) <= 1.0

    def test_old_domain_reduces_score(self):
        base = UrlIntel(url=parse_url("https://a.example.com/"), reachable=True,
                        has_credential_form=True)
        young = UrlIntel(**{**base.__dict__, "domain_age_days": 10.0})
        old = UrlIntel(**{**base.__dict__, "domain_age_days": 10 * 365.0})
        assert suspicion_score(young) > suspicion_score(old)

    def test_custom_weights(self):
        intel = UrlIntel(url=parse_url("https://a.example.com/"), reachable=True,
                         has_credential_form=True)
        zeroed = {key: 0.0 for key in DEFAULT_WEIGHTS}
        assert suspicion_score(intel, zeroed) == pytest.approx(
            1.0 - np.exp(-1.35 * 0.05)
        )


class TestIntelService:
    def test_caching_within_bucket(self, world):
        web, browser = world
        site = web.fwb_providers["weebly"].create_site("cached", "u", 0)
        site.add_page("/", "<html><body>x</body></html>")
        service = IntelService(web, browser)
        a = service.intel_for(site.root_url, now=10)
        b = service.intel_for(site.root_url, now=20)  # same day bucket
        assert a is b
        c = service.intel_for(site.root_url, now=10 + 24 * 60)
        assert c is not a
