"""Detection-engine fleet and the VirusTotal aggregator."""

import numpy as np
import pytest

from repro.config import RngFactory
from repro.ecosystem import IntelService, VirusTotal, default_engine_fleet
from repro.ecosystem.intel import UrlIntel
from repro.simnet import Browser, Web
from repro.simnet.url import parse_url


@pytest.fixture(scope="module")
def fleet():
    return default_engine_fleet(RngFactory(5))


def _intel(url_text: str, **overrides) -> UrlIntel:
    intel = UrlIntel(url=parse_url(url_text), reachable=True)
    for key, value in overrides.items():
        setattr(intel, key, value)
    return intel


HOT = dict(
    domain_age_days=2.0, cheap_tld=True, has_credential_form=True,
    brand_title_mismatch=True, kit_markup=True, in_ct_log=True,
    sensitive_url_words=3,
)
COLD = dict(domain_age_days=12 * 365.0, com_tld=True, is_fwb=True,
            fwb_name="weebly", fwb_scrutiny=1.9)


class TestEngines:
    def test_fleet_size_is_76(self, fleet):
        assert len(fleet) == 76

    def test_verdicts_deterministic_per_url(self, fleet):
        intel = _intel("https://scam-login.xyz/", **HOT)
        engine = fleet[0]
        assert engine.evaluate(intel, 100) == engine.evaluate(intel, 100)

    def test_engines_disagree(self, fleet):
        intel = _intel("https://scam-login.xyz/", **HOT)
        verdicts = {engine.evaluate(intel, 0)[0] for engine in fleet}
        assert verdicts == {True, False}

    def test_hot_detected_more_than_cold(self, fleet):
        hot_hits = cold_hits = 0
        for i in range(20):
            hot = _intel(f"https://scam{i}-login.xyz/", **HOT)
            cold = _intel(f"https://innocuous{i}.weebly.com/", **COLD)
            hot_hits += sum(engine.evaluate(hot, 0)[0] for engine in fleet)
            cold_hits += sum(engine.evaluate(cold, 0)[0] for engine in fleet)
        assert hot_hits > 3 * max(cold_hits, 1)

    def test_detection_time_after_first_seen(self, fleet):
        intel = _intel("https://scam-now.xyz/", **HOT)
        for engine in fleet:
            detects, when = engine.evaluate(intel, first_seen=1000)
            if detects:
                assert when > 1000

    def test_reproducible_across_fleets(self):
        a = default_engine_fleet(RngFactory(5))
        b = default_engine_fleet(RngFactory(5))
        intel = _intel("https://stable.xyz/", **HOT)
        assert [e.evaluate(intel, 0) for e in a] == [e.evaluate(intel, 0) for e in b]


class TestVirusTotal:
    @pytest.fixture()
    def vt_world(self, fleet):
        web = Web()
        intel_service = IntelService(web, Browser(web))
        return web, VirusTotal(fleet, intel_service)

    def test_detections_accumulate_over_time(self, vt_world, kit_generator, rng):
        web, vt = vt_world
        site = kit_generator.create_site(web.self_hosting, now=0, rng=rng)
        early = vt.scan(site.root_url, now=10).positives
        late = vt.scan(site.root_url, now=7 * 24 * 60).positives
        assert late >= early
        assert late > 0

    def test_scan_reports_engine_names(self, vt_world, kit_generator, rng):
        web, vt = vt_world
        site = kit_generator.create_site(web.self_hosting, now=0, rng=rng)
        report = vt.scan(site.root_url, now=7 * 24 * 60)
        assert report.positives == len(report.engines)
        assert report.total_engines == 76
        assert 0.0 <= report.detection_ratio <= 1.0

    def test_first_seen_anchors_latencies(self, vt_world, kit_generator, rng):
        """Engines date their latency from VT's first sight of the URL."""
        web, vt = vt_world
        site = kit_generator.create_site(web.self_hosting, now=0, rng=rng)
        vt.scan(site.root_url, now=5000)  # first seen late
        assert str(site.root_url) in vt._first_seen
        assert vt._first_seen[str(site.root_url)] == 5000

    def test_fwb_vs_self_hosted_gap(self, vt_world, rng):
        """Figure 7's headline: FWB attacks accrue far fewer detections."""
        from repro.sitegen import PhishingKitGenerator, PhishingSiteGenerator

        web, vt = vt_world
        phish_gen = PhishingSiteGenerator()
        kit_gen = PhishingKitGenerator()
        week = 7 * 24 * 60
        fwb_counts, self_counts = [], []
        providers = list(web.fwb_providers.values())
        for i in range(30):
            provider = providers[i % len(providers)]
            fwb_site = phish_gen.create_site(provider, now=0, rng=rng)
            self_site = kit_gen.create_site(web.self_hosting, now=0, rng=rng)
            # First scan at t=0 anchors first-seen; re-scan a week later.
            vt.scan(fwb_site.root_url, 0)
            vt.scan(self_site.root_url, 0)
            fwb_counts.append(vt.scan(fwb_site.root_url, week).positives)
            self_counts.append(vt.scan(self_site.root_url, week).positives)
        assert np.median(self_counts) >= np.median(fwb_counts) + 3

    def test_file_scan_passthrough(self, vt_world):
        _web, vt = vt_world
        assert vt.scan_file_detections(9) == 9
