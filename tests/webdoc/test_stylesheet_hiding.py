"""Stylesheet-based element hiding (the stealthier banner obfuscation)."""

import numpy as np
import pytest

from repro.core.features import FeatureExtractor
from repro.simnet.fwb import fwb_by_name
from repro.simnet.url import parse_url
from repro.sitegen.templates import ContentBlock, PageSpec, TemplateLibrary
from repro.webdoc import parse_html

SHEET_HIDDEN = """
<html><head><style>
.fwb-banner { display: none }
#secret { visibility: hidden; color: red }
</style></head><body>
<div class="fwb-banner">Powered by Weebly</div>
<p id="secret">hidden text</p>
<p id="visible">shown</p>
</body></html>
"""


class TestStylesheetHiding:
    def test_hidden_selectors_extracted(self):
        document = parse_html(SHEET_HIDDEN)
        assert set(document.stylesheet_hidden_selectors()) == {"fwb-banner", "secret"}

    def test_is_element_hidden_by_class_and_id(self):
        document = parse_html(SHEET_HIDDEN)
        banner = document.find(predicate=lambda e: "fwb-banner" in e.classes)
        secret = document.find(predicate=lambda e: e.id == "secret")
        visible = document.find(predicate=lambda e: e.id == "visible")
        assert document.is_element_hidden(banner)
        assert document.is_element_hidden(secret)
        assert not document.is_element_hidden(visible)

    def test_has_hidden_elements(self):
        assert parse_html(SHEET_HIDDEN).has_hidden_elements()
        assert not parse_html("<body><p>plain</p></body>").has_hidden_elements()

    def test_inline_hiding_still_detected(self):
        markup = '<body><div style="display:none">x</div></body>'
        assert parse_html(markup).has_hidden_elements()


class TestGeneratorIntegration:
    @pytest.mark.parametrize("style", ["inline", "stylesheet"])
    def test_both_obfuscation_styles_detected_by_extractor(self, style, rng):
        service = fwb_by_name("weebly")
        spec = PageSpec(
            title="Acme - Sign In",
            blocks=[ContentBlock("heading", text="Acme")],
            obfuscate_banner=True,
            obfuscation_style=style,
        )
        markup = TemplateLibrary().render(service, spec, rng)
        url = parse_url("https://acme-login.weebly.com/")
        features = FeatureExtractor().extract(url, markup)
        assert features.values["obfuscated_fwb_banner"] == 1.0, style

    def test_unobfuscated_banner_not_flagged(self, rng):
        service = fwb_by_name("weebly")
        spec = PageSpec(
            title="Sunny Bakery",
            blocks=[ContentBlock("heading", text="Sunny Bakery")],
            obfuscate_banner=False,
        )
        markup = TemplateLibrary().render(service, spec, rng)
        url = parse_url("https://sunny-bakery.weebly.com/")
        features = FeatureExtractor().extract(url, markup)
        assert features.values["obfuscated_fwb_banner"] == 0.0

    def test_phishing_generator_emits_both_styles(self, web, rng):
        from repro.sitegen import PhishingSiteGenerator
        from repro.sitegen.phishing import PhishingMixture

        generator = PhishingSiteGenerator(
            mixture=PhishingMixture(banner_obfuscation_rate=1.0)
        )
        provider = web.fwb_providers["weebly"]
        styles = set()
        for _ in range(40):
            spec = generator.sample_spec(provider.service, rng)
            styles.add(spec.obfuscation_style)
        assert styles == {"inline", "stylesheet"}
