"""Levenshtein/Appendix-A similarity and visual-signature rendering."""

import numpy as np
import pytest

from repro.webdoc import (
    levenshtein,
    levenshtein_ratio,
    parse_html,
    render_signature,
    tag_sequence,
    website_similarity,
)
from repro.webdoc.render import SIGNATURE_DIM, region_signatures
from repro.webdoc.similarity import median_pairwise_similarity


class TestLevenshtein:
    @pytest.mark.parametrize("a,b,expected", [
        ("kitten", "sitting", 3),
        ("", "", 0),
        ("abc", "", 3),
        ("", "xyz", 3),
        ("same", "same", 0),
        ("abc", "acb", 2),
        ("flaw", "lawn", 2),
    ])
    def test_known_distances(self, a, b, expected):
        assert levenshtein(a, b) == expected

    def test_symmetry(self):
        assert levenshtein("abcdef", "azced") == levenshtein("azced", "abcdef")

    def test_ratio_bounds(self):
        assert levenshtein_ratio("", "") == 1.0
        assert levenshtein_ratio("abc", "abc") == 1.0
        assert levenshtein_ratio("abc", "xyz") == 0.0


class TestWebsiteSimilarity:
    def test_identical_pages(self):
        markup = "<html><body><div class='a'>x</div></body></html>"
        assert website_similarity(markup, markup) == pytest.approx(1.0)

    def test_symmetric(self):
        a = "<html><body><div class='a'>one</div><p>text</p></body></html>"
        b = "<html><body><span id='z'>different</span></body></html>"
        assert website_similarity(a, b) == pytest.approx(website_similarity(b, a))

    def test_templated_pages_more_similar_than_unrelated(self):
        shell = (
            "<html><head><style>.wrap{{margin:0}}</style></head>"
            "<body><div class='wrap'><div class='col'>{content}</div></div></body></html>"
        )
        a = shell.format(content="<h1>Bakery</h1><p>We bake bread.</p>")
        b = shell.format(content="<h1>Sign In</h1><form><input type='password'></form>")
        unrelated = "<html><body><table><tr><td>totally</td></tr></table></body></html>"
        assert website_similarity(a, b) > website_similarity(a, unrelated)

    def test_tag_sequence_covers_all_elements(self):
        doc = parse_html("<body><div><p>x</p></div></body>")
        tags = tag_sequence(doc)
        assert any(t.startswith("<div") for t in tags)
        assert any(t.startswith("<p") for t in tags)

    def test_median_pairwise(self, rng):
        group = ["<html><body><p>a</p></body></html>"] * 3
        value = median_pairwise_similarity(group, group, rng, max_pairs=5)
        assert value == pytest.approx(1.0)
        assert median_pairwise_similarity([], group, rng) == 0.0


class TestVisualSignature:
    def test_dimension(self):
        sig = render_signature("<html><body><p>x</p></body></html>")
        assert sig.vector.shape == (SIGNATURE_DIM,)

    def test_identical_pages_zero_distance(self):
        markup = "<html><head><title>T</title></head><body><form><input type='password'></form></body></html>"
        a, b = render_signature(markup), render_signature(markup)
        assert a.distance(b) == 0.0
        assert a.similarity(b) == 1.0

    def test_same_brand_pages_closer_than_different_layouts(self):
        login_a = (
            "<html><head><title>Acme - Sign In</title></head><body>"
            "<h1>Acme</h1><form><input type='email'><input type='password'>"
            "<button>Sign In</button></form></body></html>"
        )
        login_b = login_a.replace("Acme", "Acme Corp")
        blog = (
            "<html><head><title>My travel blog</title></head><body>"
            "<p>a</p><p>b</p><p>c</p><p>d</p><ul><li>x</li><li>y</li></ul>"
            "</body></html>"
        )
        a, b, c = map(render_signature, (login_a, login_b, blog))
        assert a.distance(b) < a.distance(c)

    def test_region_signatures_nonempty_for_structured_page(self):
        markup = (
            "<html><body><div><h1>t</h1><p>x</p></div>"
            "<div><form><input><input></form><p>y</p></div></body></html>"
        )
        regions = region_signatures(markup, max_regions=8)
        assert 1 <= len(regions) <= 8
        assert all(r.vector.shape == (SIGNATURE_DIM,) for r in regions)

    def test_region_cap_respected(self):
        markup = "<html><body>" + "<div><p>a</p><p>b</p></div>" * 50 + "</body></html>"
        assert len(region_signatures(markup, max_regions=10)) == 10
