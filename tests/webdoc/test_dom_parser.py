"""DOM model and tolerant HTML parser."""

import pytest

from repro.errors import ParseError
from repro.webdoc import Element, TextNode, parse_html


class TestParser:
    def test_basic_structure(self):
        doc = parse_html(
            "<html><head><title>T</title></head><body><p>hi</p></body></html>"
        )
        assert doc.title == "T"
        assert doc.root.tag == "html"
        assert [c.tag for c in doc.root.children] == ["head", "body"]

    def test_synthesizes_head_and_body(self):
        doc = parse_html("<title>X</title><p>content</p>")
        assert doc.title == "X"
        assert doc.find("p") is not None

    def test_void_elements_do_not_nest(self):
        doc = parse_html("<body><input type='text'><input type='password'></body>")
        inputs = doc.inputs()
        assert len(inputs) == 2
        assert all(not i.children for i in inputs)

    def test_unclosed_tags_tolerated(self):
        doc = parse_html("<body><div><p>one<p>two</div></body>")
        assert len(doc.find_all("p")) == 2

    def test_stray_end_tag_ignored(self):
        doc = parse_html("<body></span><p>ok</p></body>")
        assert doc.find("p").text_content() == "ok"

    def test_implicit_li_close(self):
        doc = parse_html("<ul><li>a<li>b<li>c</ul>")
        assert len(doc.find_all("li")) == 3

    def test_attributes_lowercased(self):
        doc = parse_html('<div ID="main" Class="a b">x</div>')
        div = doc.find("div")
        assert div.id == "main"
        assert div.classes == ["a", "b"]

    def test_nonstandard_noindex_element(self):
        doc = parse_html("<noindex></noindex><body>x</body>")
        assert doc.has_noindex()

    def test_rejects_non_string(self):
        with pytest.raises(ParseError):
            parse_html(None)

    def test_self_closing_syntax(self):
        doc = parse_html("<body><br/><img src='x'/></body>")
        assert doc.find("img") is not None

    def test_roundtrip_is_reparseable(self):
        markup = '<html><head><title>R</title></head><body><a href="/x">y</a></body></html>'
        doc = parse_html(markup)
        again = parse_html(doc.to_html())
        assert again.title == "R"
        assert again.links()[0].get("href") == "/x"


class TestQueries:
    MARKUP = """
    <html><head><title>Acme - Sign In</title>
    <meta name="robots" content="noindex, nofollow"></head>
    <body>
      <div id="fwb-banner" style="visibility:hidden">Powered by Weebly</div>
      <form action="/submit">
        <input type="email" name="email">
        <input type="password" name="pass">
        <input type="text" name="ssn_number" placeholder="Social Security Number">
      </form>
      <a href="https://evil.example.com/payload.exe" download>get</a>
      <iframe src="https://other.example.net/"></iframe>
    </body></html>
    """

    def test_noindex_detected(self):
        assert parse_html(self.MARKUP).has_noindex()

    def test_password_inputs(self):
        assert len(parse_html(self.MARKUP).password_inputs()) == 1

    def test_credential_inputs_include_ssn(self):
        doc = parse_html(self.MARKUP)
        names = {i.get("name") for i in doc.credential_inputs()}
        assert names == {"email", "pass", "ssn_number"}

    def test_download_links(self):
        assert len(parse_html(self.MARKUP).download_links()) == 1

    def test_hidden_element_detection(self):
        doc = parse_html(self.MARKUP)
        banner = doc.find(predicate=lambda e: e.id == "fwb-banner")
        assert banner.is_hidden()

    def test_display_none_hidden(self):
        doc = parse_html('<div style="display: none">x</div>')
        assert doc.find("div").is_hidden()

    def test_visible_element(self):
        doc = parse_html('<div style="color:red">x</div>')
        assert not doc.find("div").is_hidden()

    def test_iframes(self):
        assert len(parse_html(self.MARKUP).iframes()) == 1

    def test_text_content(self):
        doc = parse_html("<body><p>a <b>b</b> c</p></body>")
        assert doc.find("p").text_content() == "a b c"


class TestElement:
    def test_style_declarations(self):
        element = Element("div", {"style": "color: Red; Visibility:HIDDEN"})
        style = element.style_declarations()
        assert style == {"color": "red", "visibility": "hidden"}

    def test_manual_tree_building(self):
        root = Element("div")
        root.append(Element("span")).append_text("hello")
        assert root.text_content() == "hello"
        assert root.find("span") is not None

    def test_to_html_void(self):
        assert Element("br").to_html() == "<br>"
        element = Element("input", {"type": "text"})
        assert element.to_html() == '<input type="text">'
