"""Edge-case coverage across modules: error paths and boundary behaviour."""

import numpy as np
import pytest

from repro.errors import ConfigError, FetchError, ReportingError
from repro.simnet import Browser, Web
from repro.simnet.hosting import FileAsset, HostedSite, SiteStatus
from repro.simnet.url import parse_url
from repro.sitegen.templates import ContentBlock, PageSpec, TemplateLibrary


class TestHostingEdges:
    def test_page_path_must_be_absolute(self):
        site = HostedSite(
            root_url=parse_url("https://x.example.com/"), created_at=0, owner="u"
        )
        with pytest.raises(FetchError):
            site.add_page("relative", "<html></html>")
        with pytest.raises(FetchError):
            site.add_file("relative.zip", FileAsset("f", malicious=False))

    def test_abandoned_status(self):
        site = HostedSite(
            root_url=parse_url("https://x.example.com/"), created_at=0, owner="u"
        )
        site.remove(10, status=SiteStatus.ABANDONED)
        assert site.status is SiteStatus.ABANDONED
        assert not site.is_active(20)


class TestTemplateEdges:
    def test_unknown_block_kind_rejected(self, rng):
        library = TemplateLibrary()
        from repro.simnet.fwb import fwb_by_name

        spec = PageSpec(title="T", blocks=[ContentBlock("hologram")])
        with pytest.raises(ConfigError):
            library.render(fwb_by_name("weebly"), spec, rng)

    def test_unknown_service_gets_default_template(self, rng):
        library = TemplateLibrary()
        template = library.template_for("not-a-service")
        assert template.wrapper_class == "site-wrap"

    def test_override_injection(self, rng):
        from repro.sitegen.templates import _ServiceTemplate

        custom = _ServiceTemplate(1, "custom-wrap", "Custom banner", "custom")
        library = TemplateLibrary(overrides={"weebly": custom})
        assert library.template_for("weebly").wrapper_class == "custom-wrap"


class TestBrowserEdges:
    def test_relative_hrefs_resolved(self, web):
        site = web.fwb_providers["weebly"].create_site("rel", "u", 0)
        site.add_page("/", '<a class="btn" href="next">go</a>')
        site.add_page("/next", "<p>second</p>")
        browser = Browser(web)
        snapshot = browser.snapshot(site.root_url, 5)
        # Relative link is same-host: not an outbound link.
        assert snapshot.outbound_links == []

    def test_anchor_and_js_links_ignored(self, web):
        site = web.fwb_providers["weebly"].create_site("anch", "u", 0)
        site.add_page(
            "/",
            '<a href="#top">top</a><a href="javascript:void(0)">x</a>'
            '<a href="mailto:a@b.c">mail</a>',
        )
        snapshot = Browser(web).snapshot(site.root_url, 5)
        assert snapshot.outbound_links == []
        assert snapshot.downloads == []

    def test_malformed_href_skipped(self, web):
        site = web.fwb_providers["weebly"].create_site("bad", "u", 0)
        site.add_page("/", '<a class="btn" href="https://">broken</a>')
        snapshot = Browser(web).snapshot(site.root_url, 5)
        assert snapshot.outbound_links == []

    def test_bare_file_url_snapshot(self, web):
        site = web.fwb_providers["weebly"].create_site("filesite", "u", 0)
        site.add_file("/x.zip", FileAsset("x.zip", malicious=True, vt_detections=7))
        snapshot = Browser(web).snapshot(
            site.root_url.with_path("/x.zip"), 5
        )
        assert snapshot.markup == ""
        assert [a.filename for a in snapshot.downloads] == ["x.zip"]


class TestReportingEdges:
    def test_missing_abuse_desk_raises(self, web, rng, phishing_generator):
        from repro.core.preprocess import Preprocessor
        from repro.core.reporting import ReportingModule
        from repro.core.streaming import StreamObservation
        from repro.social import TwitterPlatform

        twitter = TwitterPlatform(rng)
        reporting = ReportingModule({}, {"twitter": twitter})
        site = phishing_generator.create_site(web.fwb_providers["weebly"], 0, rng)
        post = twitter.publish_url(site.root_url, "a", 0, phishing=True)
        observation = StreamObservation(site.root_url, post, "twitter", 0, "weebly")
        page = Preprocessor(web).process(site.root_url, 0)
        with pytest.raises(ReportingError):
            reporting.report(observation, page, now=0)

    def test_self_hosted_report_skips_desk(self, web, rng, kit_generator):
        from repro.core.reporting import ReportingModule
        from repro.core.streaming import StreamObservation
        from repro.social import TwitterPlatform

        twitter = TwitterPlatform(rng)
        reporting = ReportingModule({}, {"twitter": twitter})
        site = kit_generator.create_site(web.self_hosting, 0, rng)
        post = twitter.publish_url(site.root_url, "a", 0, phishing=True)
        observation = StreamObservation(site.root_url, post, "twitter", 0, None)
        report = reporting.report(observation, None, now=0)
        assert report.fwb_outcome is None

    def test_platform_report_action_rate(self, web, rng, kit_generator):
        from repro.core.reporting import ReportingModule
        from repro.core.streaming import StreamObservation
        from repro.social import TwitterPlatform

        twitter = TwitterPlatform(rng)
        reporting = ReportingModule(
            {}, {"twitter": twitter}, platform_report_action_rate=1.0
        )
        site = kit_generator.create_site(web.self_hosting, 0, rng)
        post = twitter.publish_url(site.root_url, "a", 0, phishing=True)
        observation = StreamObservation(site.root_url, post, "twitter", 0, None)
        report = reporting.report(observation, None, now=5)
        assert report.platform_actioned
        assert not twitter.is_post_live(post.post_id, 6)


class TestEvasiveThreshold:
    def test_driveby_requires_malware_threshold(self, web, rng):
        """Files below the 4-detection bar do not make a page a drive-by."""
        from repro.core.evasive import classify_evasive

        site = web.fwb_providers["sharepoint"].create_site("greyware", "u", 0)
        site.add_page(
            "/", '<a href="/tool.zip" download>tool</a>'
        )
        site.add_file("/tool.zip", FileAsset("tool.zip", malicious=False,
                                             vt_detections=3))
        browser = Browser(web)
        snapshot = browser.snapshot(site.root_url, 5)
        assert classify_evasive(snapshot, browser) is None
