"""CLI commands and export serialization."""

import csv
import json

import pytest

from repro.analysis import build_fig9, build_table1, build_table3, build_table4
from repro.analysis.export import (
    figure_to_dict,
    table_to_dicts,
    timelines_to_rows,
    write_figure_csv,
    write_figure_json,
    write_table_json,
    write_timelines_csv,
)
from repro.cli import build_parser, main


class TestExports:
    def test_timelines_csv_roundtrip(self, campaign_result, tmp_path):
        path = write_timelines_csv(
            campaign_result.timelines, tmp_path / "timelines.csv"
        )
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(campaign_result.timelines)
        first = rows[0]
        assert {"url", "platform", "hosting", "vt_final", "gsb_min"} <= set(first)
        assert first["hosting"] in ("fwb", "self_hosted")

    def test_empty_timelines_csv(self, tmp_path):
        path = write_timelines_csv([], tmp_path / "empty.csv")
        assert path.read_text() == ""

    def test_table3_json(self, campaign_result, tmp_path):
        rows = build_table3(campaign_result.timelines)
        path = write_table_json(rows, tmp_path / "table3.json")
        data = json.loads(path.read_text())
        assert len(data) == 6
        assert set(data[0]) == {"entity", "fwb", "self_hosted"}
        assert 0 <= data[0]["fwb"]["coverage"] <= 1

    def test_table4_json(self, campaign_result, tmp_path):
        rows = build_table4(campaign_result.timelines)
        data = table_to_dicts(rows)
        assert all("entities" in row for row in data)

    def test_table1_json_via_dataclass_path(self, tmp_path):
        rows = build_table1(seed=3, sites_per_class=3, max_pairs=4,
                            services=("weebly",))
        data = table_to_dicts(rows)
        assert data[0]["fwb"] == "weebly"

    def test_unknown_row_type_rejected(self):
        with pytest.raises(TypeError):
            table_to_dicts([object()])

    def test_figure_json_and_csv(self, campaign_result, tmp_path):
        figure = build_fig9(campaign_result.timelines)
        json_path = write_figure_json(figure, tmp_path / "fig9.json")
        data = json.loads(json_path.read_text())
        assert data["x_values"] == list(figure.x_values)
        assert set(data["series"]) == set(figure.series)

        csv_path = write_figure_csv(figure, tmp_path / "fig9.csv")
        with csv_path.open() as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == len(figure.x_values) + 1
        assert rows[0][0] == figure.x_label

    def test_figure_to_dict_pure(self, campaign_result):
        figure = build_fig9(campaign_result.timelines)
        data = figure_to_dict(figure)
        assert data["title"].startswith("Fig.9")


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        for command in ("campaign", "historical", "characterize",
                        "table1", "table2", "demo"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_runs(self, capsys):
        assert main(["--seed", "3", "demo"]) == 0
        out = capsys.readouterr().out
        assert "verdict:" in out

    def test_characterize_runs(self, capsys):
        assert main(["characterize", "--sample", "200"]) == 0
        assert "kappa" in capsys.readouterr().out

    def test_table1_runs(self, capsys):
        assert main(["table1", "--sites", "3", "--pairs", "4"]) == 0
        assert "weebly" in capsys.readouterr().out

    def test_campaign_with_export(self, tmp_path, capsys):
        code = main([
            "campaign", "--days", "1", "--target", "40",
            "--train-samples", "40", "--export-dir", str(tmp_path / "out"),
        ])
        assert code == 0
        out_dir = tmp_path / "out"
        for filename in ("timelines.csv", "table3.json", "table4.json", "fig9.json"):
            assert (out_dir / filename).exists(), filename
        assert "FWB cov" in capsys.readouterr().out

    def test_historical_runs(self, capsys):
        assert main(["historical", "--scale", "0.005"]) == 0
        out = capsys.readouterr().out
        assert "D1:" in out and "SLD filter" in out
