"""URL parsing and lexical-feature tests."""

import pytest

from repro.errors import URLError
from repro.simnet.url import (
    URL,
    URLStringStats,
    count_sensitive_words,
    count_suspicious_symbols,
    extract_urls,
    parse_url,
)


class TestParseUrl:
    def test_basic_https(self):
        url = parse_url("https://mysite.weebly.com/login")
        assert url.scheme == "https"
        assert url.host == "mysite.weebly.com"
        assert url.path == "/login"
        assert url.query == ""

    def test_defaults_root_path(self):
        assert parse_url("http://example.com").path == "/"

    def test_query_parsing(self):
        url = parse_url("https://a.example.com/p?x=1&y=2")
        assert url.query == "x=1&y=2"
        assert url.path == "/p"

    def test_query_without_path(self):
        url = parse_url("https://example.com?token=abc")
        assert url.path == "/"
        assert url.query == "token=abc"

    def test_fragment_stripped(self):
        assert parse_url("https://example.com/page#frag").path == "/page"

    def test_host_lowercased(self):
        assert parse_url("https://MySite.WEEBLY.com/").host == "mysite.weebly.com"

    def test_port_stripped(self):
        assert parse_url("https://example.com:8443/x").host == "example.com"

    def test_deceptive_userinfo_stripped(self):
        url = parse_url("https://paypal.com@evil.example.com/")
        assert url.host == "evil.example.com"

    @pytest.mark.parametrize("bad", [
        "", "not a url", "ftp://example.com/", "https://", "https://nohost",
        "https://bad_label.com/", "https://.leading.dot/",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(URLError):
            parse_url(bad)

    def test_str_roundtrip(self):
        text = "https://mysite.weebly.com/login?x=1"
        assert str(parse_url(text)) == text


class TestUrlStructure:
    def test_second_level_domain_identifies_fwb(self):
        url = parse_url("https://mywebsite.000webhostapp.com/")
        assert url.second_level_domain == "000webhostapp"
        assert url.registered_domain == "000webhostapp.com"
        assert url.subdomain == "mywebsite"

    def test_multi_label_suffix(self):
        url = parse_url("https://shop.example.co.uk/")
        assert url.tld == "co.uk"
        assert url.registered_domain == "example.co.uk"
        assert url.subdomain == "shop"

    def test_no_subdomain(self):
        url = parse_url("https://example.com/")
        assert not url.has_subdomain
        assert url.subdomain == ""

    def test_depth(self):
        assert parse_url("https://a.com/x/y/z").depth == 3
        assert parse_url("https://a.com/").depth == 0

    def test_bare_suffix_rejected(self):
        with pytest.raises(URLError):
            _ = parse_url("https://co.uk/").registered_domain

    def test_with_path_and_root(self):
        url = parse_url("https://a.example.com/deep/page?q=1")
        assert str(url.root()) == "https://a.example.com/"
        assert url.with_path("/other").path == "/other"


class TestExtraction:
    def test_extracts_urls_from_post_text(self):
        urls = extract_urls(
            "check this https://scam.weebly.com/login and http://x.example.org!"
        )
        assert [u.host for u in urls] == ["scam.weebly.com", "x.example.org"]

    def test_trailing_punctuation_stripped(self):
        (url,) = extract_urls("go to https://a.example.com/page.")
        assert url.path == "/page"

    def test_no_urls(self):
        assert extract_urls("nothing to see here") == []
        assert extract_urls("") == []


class TestLexicalFeatures:
    def test_sensitive_words_counted(self):
        url = parse_url("https://paypal-login-verify.weebly.com/account")
        assert count_sensitive_words(url) >= 3  # login, verify, account

    def test_suspicious_symbols(self):
        url = parse_url("https://a-b.example.com/x_y?t=%20")
        assert count_suspicious_symbols(url) >= 3

    def test_stats_snapshot(self):
        stats = URLStringStats.of(parse_url("https://ab1.example.com/p?x=1"))
        assert stats.length == len("https://ab1.example.com/p?x=1")
        assert stats.n_digits == 2
        assert stats.has_query
        assert stats.subdomain_labels == 1
