"""Browser fetch/snapshot behaviour and the search index policy."""

import pytest

from repro.errors import SiteRemovedError
from repro.simnet import Browser, Web
from repro.simnet.hosting import FileAsset
from repro.simnet.url import parse_url

PAGE = """<html><head><title>Hello</title></head>
<body><a class="btn" href="https://target.example.xyz/">Continue</a>
<iframe src="https://framed.example.xyz/inner"></iframe>
<a href="/file.zip" download>Get</a></body></html>"""

NOINDEX_PAGE = (
    '<html><head><meta name="robots" content="noindex"><title>H</title>'
    "</head><body>hi</body></html>"
)


@pytest.fixture()
def web():
    return Web()


@pytest.fixture()
def browser(web):
    return Browser(web)


def _make_site(web, name="page", fwb="weebly", markup=PAGE):
    site = web.fwb_providers[fwb].create_site(name, owner="u", now=0)
    site.add_page("/", markup)
    return site


class TestFetch:
    def test_fetch_ok(self, web, browser):
        site = _make_site(web)
        result = browser.fetch(site.root_url, now=10)
        assert result.ok and "Hello" in result.markup
        assert result.certificate is not None

    def test_fetch_unknown_host_404(self, browser):
        assert browser.fetch(parse_url("https://ghost.example.org/"), 0).status == 404

    def test_fetch_missing_page_404(self, web, browser):
        site = _make_site(web)
        result = browser.fetch(site.root_url.with_path("/nope"), 10)
        assert result.status == 404

    def test_fetch_removed_site_410(self, web, browser):
        site = _make_site(web)
        web.take_down(site.root_url, now=5)
        assert browser.fetch(site.root_url, now=10).status == 410

    def test_fetch_download(self, web, browser):
        site = _make_site(web)
        site.add_file("/file.zip", FileAsset("file.zip", malicious=True, vt_detections=8))
        result = browser.fetch(site.root_url.with_path("/file.zip"), 10)
        assert result.ok and result.download is not None
        assert result.download.vt_detections == 8


class TestSnapshot:
    def test_snapshot_contents(self, web, browser):
        site = _make_site(web)
        site.add_file("/file.zip", FileAsset("file.zip", malicious=True, vt_detections=8))
        # Create the framed external site so the iframe resolves.
        framed = web.self_hosting.create_site("framed.example.xyz", owner="a", now=0)
        framed.add_page("/inner", "<html><body><input type=password></body></html>")
        snap = browser.snapshot(site.root_url, now=10)
        assert snap.document.title == "Hello"
        assert len(snap.iframe_contents) == 1
        src, inner_markup = snap.iframe_contents[0]
        assert src.host == "framed.example.xyz"
        assert "password" in inner_markup
        assert [a.filename for a in snap.downloads] == ["file.zip"]
        assert [u.host for u in snap.outbound_links] == ["target.example.xyz"]

    def test_snapshot_of_removed_site_raises(self, web, browser):
        site = _make_site(web)
        web.take_down(site.root_url, now=5)
        with pytest.raises(SiteRemovedError):
            browser.snapshot(site.root_url, now=10)

    def test_unresolvable_iframe_yields_empty_markup(self, web, browser):
        site = _make_site(web)
        snap = browser.snapshot(site.root_url, now=10)
        assert snap.iframe_contents[0][1] == ""

    def test_follow_workflow_traverses_button(self, web, browser):
        site = _make_site(web)
        target = web.self_hosting.create_site("target.example.xyz", owner="a", now=0)
        target.add_page("/", "<html><body><form><input type=password></form></body></html>")
        chain = browser.follow_workflow(site.root_url, now=10)
        assert len(chain) == 2
        assert chain[1].url.host == "target.example.xyz"

    def test_follow_workflow_handles_cycles(self, web, browser):
        a = web.fwb_providers["weebly"].create_site("cyc-a", owner="u", now=0)
        b = web.fwb_providers["wix"].create_site("cyc-b", owner="u", now=0)
        a.add_page("/", '<a class="btn" href="https://cyc-b.wixsite.com/">go</a>')
        b.add_page("/", '<a class="btn" href="https://cyc-a.weebly.com/">back</a>')
        chain = browser.follow_workflow(a.root_url, now=5)
        assert len(chain) == 2  # cycle cut


class TestSearchIndex:
    def test_unlinked_page_not_indexed(self, web):
        url = parse_url("https://lonely.weebly.com/")
        assert not web.search_index.submit(url, "<html><body>x</body></html>", now=0)

    def test_linked_page_indexed(self, web):
        url = parse_url("https://popular.weebly.com/")
        web.search_index.record_incoming_link(url)
        assert web.search_index.submit(url, "<html><title>Pop</title></html>", now=0)
        assert web.search_index.is_indexed(url)

    def test_noindex_refused_even_when_linked(self, web):
        url = parse_url("https://hidden.weebly.com/")
        web.search_index.record_incoming_link(url)
        assert not web.search_index.submit(url, NOINDEX_PAGE, now=0)

    def test_removal(self, web):
        url = parse_url("https://temp.weebly.com/")
        web.search_index.record_incoming_link(url)
        web.search_index.submit(url, "<html><title>T</title></html>", now=0)
        web.search_index.remove(url)
        assert not web.search_index.is_indexed(url)

    def test_search_hosts(self, web):
        url = parse_url("https://paypaul-login.weebly.com/")
        web.search_index.record_incoming_link(url)
        web.search_index.submit(url, "<html><title>x</title></html>", now=0)
        assert "paypaul-login.weebly.com" in web.search_index.search_hosts("paypaul")
