"""Domain registry and WHOIS semantics."""

import pytest

from repro.errors import DomainTakenError, UnknownDomainError
from repro.simnet.dns import DomainRegistry
from repro.simnet.url import parse_url
from repro.simnet.whois import WhoisService

DAY = 24 * 60
YEAR = 365 * DAY


@pytest.fixture()
def registry():
    reg = DomainRegistry()
    reg.register("weebly.com", registered_at=-16 * YEAR, registrant="weebly")
    reg.register("fresh-scam.xyz", registered_at=100, registrant="attacker")
    return reg


class TestRegistry:
    def test_duplicate_registration_rejected(self, registry):
        with pytest.raises(DomainTakenError):
            registry.register("weebly.com", 0, "someone")

    def test_subdomain_allocation(self, registry):
        registry.add_subdomain("weebly.com", "scam.weebly.com")
        record = registry.record_for("weebly.com")
        assert "scam.weebly.com" in record.subdomains

    def test_duplicate_subdomain_rejected(self, registry):
        registry.add_subdomain("weebly.com", "scam.weebly.com")
        with pytest.raises(DomainTakenError):
            registry.add_subdomain("weebly.com", "scam.weebly.com")

    def test_foreign_subdomain_rejected(self, registry):
        with pytest.raises(UnknownDomainError):
            registry.add_subdomain("weebly.com", "scam.wix.com")

    def test_resolve_requires_allocation(self, registry):
        url = parse_url("https://ghost.weebly.com/")
        assert registry.resolve(url) is None
        registry.add_subdomain("weebly.com", "ghost.weebly.com")
        assert registry.resolve(url) is not None

    def test_resolve_apex(self, registry):
        assert registry.resolve(parse_url("https://weebly.com/")) is not None

    def test_resolve_unknown_domain(self, registry):
        assert registry.resolve(parse_url("https://nowhere.example.org/")) is None

    def test_drop(self, registry):
        registry.drop("fresh-scam.xyz")
        assert "fresh-scam.xyz" not in registry
        with pytest.raises(UnknownDomainError):
            registry.drop("fresh-scam.xyz")

    def test_domains_of(self, registry):
        assert [r.domain for r in registry.domains_of("attacker")] == ["fresh-scam.xyz"]

    def test_case_insensitive(self, registry):
        assert "WEEBLY.COM".lower() in registry
        assert registry.record_for("WEEBLY.COM").domain == "weebly.com"


class TestWhois:
    def test_subdomain_inherits_fwb_age(self, registry):
        """The paper's key evasion: FWB subdomains look ancient to WHOIS."""
        registry.add_subdomain("weebly.com", "scam.weebly.com")
        whois = WhoisService(registry)
        record = whois.lookup("scam.weebly.com", now=0)
        assert record is not None
        assert record.age_years == pytest.approx(16, abs=0.1)
        assert record.registered_domain == "weebly.com"

    def test_fresh_self_hosted_age(self, registry):
        whois = WhoisService(registry)
        record = whois.lookup("fresh-scam.xyz", now=100 + 3 * DAY)
        assert record.age_days == pytest.approx(3.0)

    def test_unknown_domain_returns_none(self, registry):
        whois = WhoisService(registry)
        assert whois.lookup("unknown.example.net", now=0) is None
        assert whois.domain_age_days("unknown.example.net", now=0) is None

    def test_accepts_url_objects(self, registry):
        whois = WhoisService(registry)
        record = whois.lookup(parse_url("https://fresh-scam.xyz/login"), now=200)
        assert record is not None
        assert record.queried_host == "fresh-scam.xyz"

    def test_age_clamped_at_zero(self, registry):
        whois = WhoisService(registry)
        record = whois.lookup("fresh-scam.xyz", now=0)  # before registration
        assert record.age_minutes == 0
