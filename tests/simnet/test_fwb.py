"""FWB service-profile invariants from the paper."""

import pytest

from repro.errors import ConfigError
from repro.simnet.fwb import (
    FWBPolicy,
    FWBService,
    ReportResponsiveness,
    default_fwb_services,
    fwb_by_name,
    fwb_domain_index,
)
from repro.simnet.tls import ValidationLevel
from repro.simnet.url import parse_url


@pytest.fixture(scope="module")
def services():
    return default_fwb_services()


class TestCatalogInvariants:
    def test_seventeen_services(self, services):
        assert len(services) == 17

    def test_attacker_weights_sum_to_paper_total(self, services):
        assert sum(s.attacker_weight for s in services) == 31405

    def test_fourteen_of_seventeen_offer_com(self, services):
        """§3 'Premium TLDs': 14 of 17 FWBs provide a .com TLD."""
        assert sum(1 for s in services if s.offers_com_tld) == 14

    def test_all_certs_ov_or_ev(self, services):
        assert all(
            s.cert_level in (ValidationLevel.OV, ValidationLevel.EV)
            for s in services
        )

    def test_domains_unique(self, services):
        domains = [s.domain for s in services]
        assert len(set(domains)) == len(domains)

    def test_services_are_old(self, services):
        """Every FWB predates the epoch by years (domain-age evasion)."""
        assert all(s.founded_years_before_epoch >= 5 for s in services)
        assert all(s.registered_at < 0 for s in services)

    def test_silent_desks_match_paper(self, services):
        """WordPress, GoDaddy, Firebase, Sharepoint, Yolasite never respond."""
        silent = {
            s.name for s in services
            if s.policy.responsiveness == ReportResponsiveness.SILENT
        }
        assert {"wordpress", "godaddysites", "firebase", "sharepoint",
                "yolasite"} <= silent

    def test_responsive_desks_match_paper(self, services):
        responsive = {
            s.name for s in services
            if s.policy.responsiveness == ReportResponsiveness.RESPONSIVE
        }
        assert {"weebly", "000webhost", "wix", "zoho_forms"} <= responsive

    def test_evasive_services(self, services):
        """§5.5: Google Sites / Sharepoint / Google Forms / Blogspot host
        most evasive attacks."""
        shares = {s.name: s.evasive_share for s in services}
        for evasive in ("google_sites", "sharepoint", "google_forms", "blogspot"):
            assert shares[evasive] > 0.3
        assert shares["weebly"] < 0.1


class TestServiceApi:
    def test_lookup_by_name(self, services):
        assert fwb_by_name("weebly", services).domain == "weebly.com"
        with pytest.raises(ConfigError):
            fwb_by_name("not-a-service", services)

    def test_site_host(self, services):
        weebly = fwb_by_name("weebly", services)
        assert weebly.site_host("my-scam") == "my-scam.weebly.com"

    def test_owns_url(self, services):
        weebly = fwb_by_name("weebly", services)
        assert weebly.owns_url(parse_url("https://x.weebly.com/"))
        assert not weebly.owns_url(parse_url("https://weebly.com/"))  # apex
        assert not weebly.owns_url(parse_url("https://x.wixsite.com/"))

    def test_domain_index(self, services):
        index = fwb_domain_index(services)
        assert index["weebly.com"].name == "weebly"
        assert len(index) == 17


class TestPolicyValidation:
    def test_invalid_rates_rejected(self):
        with pytest.raises(ConfigError):
            FWBPolicy(removal_rate=1.5, median_removal_minutes=10,
                      responsiveness="silent", response_rate=0.0)
        with pytest.raises(ConfigError):
            FWBPolicy(removal_rate=0.5, median_removal_minutes=-1,
                      responsiveness="silent", response_rate=0.0)

    def test_invalid_service_config_rejected(self):
        with pytest.raises(ConfigError):
            FWBService(
                name="x", domain="x.com", organization="X",
                founded_years_before_epoch=1.0,
                cert_level=ValidationLevel.OV, has_banner=False,
                allows_custom_html=True, allows_credential_forms=True,
                attacker_weight=1,
                policy=FWBPolicy(0.5, 10, "silent", 0.0),
                evasive_share=0.5, evasive_mix=(0.5, 0.2, 0.2),  # sums to 0.9
            )
