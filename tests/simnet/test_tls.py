"""Certificate issuance, inheritance, and CT-log visibility."""

import pytest

from repro.errors import CertificateError
from repro.simnet.tls import (
    Certificate,
    CertificateAuthority,
    CTLog,
    DV_VALIDITY_MINUTES,
    ValidationLevel,
)
from repro.simnet.url import parse_url


@pytest.fixture()
def ca():
    return CertificateAuthority()


class TestIssuance:
    def test_dv_certificate_logged_to_ct(self, ca):
        ca.issue_dv("fresh-scam.xyz", now=100)
        assert ca.ct_log.contains_host("fresh-scam.xyz")

    def test_dv_validity_window(self, ca):
        cert = ca.issue_dv("a.example.com", now=0)
        assert cert.valid_at(0)
        assert cert.valid_at(DV_VALIDITY_MINUTES - 1)
        assert not cert.valid_at(DV_VALIDITY_MINUTES)

    def test_shared_cert_rejects_dv_level(self, ca):
        with pytest.raises(CertificateError):
            ca.issue_shared("weebly.com", "Weebly", now=0, level=ValidationLevel.DV)

    def test_shared_cert_is_wildcard(self, ca):
        cert = ca.issue_shared("weebly.com", "Weebly, Inc.", now=0)
        assert cert.wildcard
        assert cert.covers("anything.weebly.com")
        assert cert.covers("weebly.com")
        assert not cert.covers("a.b.weebly.com")  # single-label wildcard
        assert not cert.covers("weebly.com.evil.org")


class TestInheritance:
    def test_fwb_site_presents_shared_certificate(self, ca):
        """Figure 3's observation: phishing page and FWB share one cert."""
        shared = ca.issue_shared("weebly.com", "Weebly, Inc.", now=0,
                                 level=ValidationLevel.EV)
        presented = ca.certificate_for(parse_url("https://scam.weebly.com/"))
        assert presented is not None
        assert presented.fingerprint == shared.fingerprint
        assert presented.level is ValidationLevel.EV

    def test_fwb_subdomain_not_individually_logged(self, ca):
        """The CT-log invisibility that defeats CT monitors (§3)."""
        ca.issue_shared("weebly.com", "Weebly, Inc.", now=0)
        assert not ca.ct_log.contains_host("scam.weebly.com")
        assert ca.ct_log.contains_host("weebly.com")

    def test_exact_match_preferred_over_wildcard(self, ca):
        ca.issue_shared("weebly.com", "Weebly", now=0)
        own = ca.issue_dv("special.weebly.com", now=5)
        presented = ca.certificate_for(parse_url("https://special.weebly.com/"))
        assert presented.fingerprint == own.fingerprint

    def test_unknown_host_has_no_certificate(self, ca):
        assert ca.certificate_for(parse_url("https://nowhere.example.io/")) is None


class TestCTLog:
    def test_entries_since(self):
        log = CTLog()
        cert = Certificate(
            common_name="a.example.com", organization="a",
            level=ValidationLevel.DV, issued_at=0, expires_at=100,
        )
        log.append(cert, now=50)
        assert len(log.entries_since(0)) == 1
        assert len(log.entries_since(51)) == 0

    def test_fingerprint_stability(self):
        kwargs = dict(
            common_name="x.example.com", organization="x",
            level=ValidationLevel.OV, issued_at=1, expires_at=2,
        )
        assert Certificate(**kwargs).fingerprint == Certificate(**kwargs).fingerprint
        other = Certificate(**{**kwargs, "organization": "y"})
        assert other.fingerprint != Certificate(**kwargs).fingerprint
