"""Hosting providers, takedowns, and the assembled Web."""

import pytest

from repro.errors import DomainTakenError
from repro.simnet import Web
from repro.simnet.hosting import FileAsset, SiteStatus
from repro.simnet.url import parse_url


@pytest.fixture()
def web():
    return Web()


class TestFWBHosting:
    def test_create_site_allocates_subdomain(self, web):
        provider = web.fwb_providers["weebly"]
        site = provider.create_site("my-page", owner="user", now=10)
        assert site.host == "my-page.weebly.com"
        assert web.registry.resolve(site.root_url) is not None

    def test_site_name_collision(self, web):
        provider = web.fwb_providers["weebly"]
        provider.create_site("taken", owner="a", now=0)
        with pytest.raises(DomainTakenError):
            provider.create_site("taken", owner="b", now=1)

    def test_no_ct_entry_for_customer_site(self, web):
        provider = web.fwb_providers["wix"]
        site = provider.create_site("scampage", owner="attacker", now=0)
        assert not web.ct_log.contains_host(site.host)

    def test_take_down_frees_subdomain_and_kills_site(self, web):
        provider = web.fwb_providers["weebly"]
        site = provider.create_site("gone", owner="attacker", now=0)
        assert provider.take_down(site.host, now=50)
        assert site.status is SiteStatus.REMOVED
        assert site.removed_at == 50
        assert not site.is_active(60)
        assert web.registry.resolve(site.root_url) is None

    def test_take_down_idempotent(self, web):
        provider = web.fwb_providers["weebly"]
        site = provider.create_site("once", owner="attacker", now=0)
        assert provider.take_down(site.host, now=5)
        assert not provider.take_down(site.host, now=6)

    def test_pages_and_files(self, web):
        provider = web.fwb_providers["weebly"]
        site = provider.create_site("content", owner="user", now=0)
        site.add_page("/", "<html></html>")
        site.add_file("/doc.zip", FileAsset("doc.zip", malicious=True, vt_detections=9))
        assert site.page_for(parse_url("https://content.weebly.com/")) == "<html></html>"
        asset = site.file_for(parse_url("https://content.weebly.com/doc.zip"))
        assert asset is not None and asset.malicious


class TestSelfHosting:
    def test_create_registers_domain_and_logs_cert(self, web):
        site = web.self_hosting.create_site("scam-login.xyz", owner="attacker", now=7)
        assert "scam-login.xyz" in web.registry
        assert web.ct_log.contains_host("scam-login.xyz")
        assert site.root_url.scheme == "https"

    def test_http_site_has_no_certificate(self, web):
        site = web.self_hosting.create_site("plain.top", owner="attacker", now=0,
                                            https=False)
        assert site.root_url.scheme == "http"
        assert not web.ct_log.contains_host("plain.top")

    def test_takedown_drops_domain(self, web):
        web.self_hosting.create_site("brief.xyz", owner="attacker", now=0)
        assert web.self_hosting.take_down("brief.xyz", now=10)
        assert "brief.xyz" not in web.registry

    def test_backdated_registration(self, web):
        site = web.self_hosting.create_site(
            "old-blog.com", owner="user", now=1000, registered_at=-100000
        )
        record = web.whois.lookup(site.root_url, now=1000)
        assert record.age_minutes == 101000


class TestWebAssembly:
    def test_seventeen_providers(self, web):
        assert len(web.fwb_providers) == 17

    def test_fwb_attribution(self, web):
        provider = web.fwb_providers["blogspot"]
        site = provider.create_site("scam-blog", owner="attacker", now=0)
        service = web.fwb_for(site.root_url)
        assert service is not None and service.name == "blogspot"
        # Apex is the service itself, not a customer site.
        assert web.fwb_for(parse_url("https://blogspot.com/")) is None
        assert web.fwb_for(parse_url("https://other.example.com/")) is None

    def test_site_lookup_across_providers(self, web):
        fwb_site = web.fwb_providers["weebly"].create_site("a", owner="u", now=0)
        self_site = web.self_hosting.create_site("b-site.com", owner="u", now=0)
        assert web.site_for(fwb_site.root_url) is fwb_site
        assert web.site_for(self_site.root_url) is self_site
        assert web.site_for(parse_url("https://nope.example.net/")) is None

    def test_web_take_down_and_is_active(self, web):
        site = web.fwb_providers["wix"].create_site("z", owner="attacker", now=0)
        assert web.is_active(site.root_url, 10)
        assert web.take_down(site.root_url, 20)
        assert not web.is_active(site.root_url, 30)

    def test_iter_sites(self, web):
        web.fwb_providers["weebly"].create_site("s1", owner="u", now=0)
        web.self_hosting.create_site("s2-site.com", owner="u", now=0)
        hosts = {s.host for s in web.iter_sites()}
        assert {"s1.weebly.com", "s2-site.com"} <= hosts
