"""§5.5 evasive-vector heuristics."""

import pytest

from repro.core.evasive import EvasiveVector, classify_evasive, has_credential_fields
from repro.simnet import Browser
from repro.sitegen.phishing import PhishingVariant


def _snapshot_for(web, phishing_generator, rng, service, variant, target=None):
    provider = web.fwb_providers[service]
    spec = phishing_generator.sample_spec(
        provider.service, rng, variant=variant, target_url=target
    )
    spec.cloaked = False
    site = phishing_generator.create_site(provider, 0, rng, spec=spec)
    return Browser(web).snapshot(site.root_url, now=10)


class TestHeuristics:
    def test_credential_page_is_not_evasive(self, web, phishing_generator, rng):
        snap = _snapshot_for(
            web, phishing_generator, rng, "weebly", PhishingVariant.CREDENTIAL
        )
        assert has_credential_fields(snap)
        assert classify_evasive(snap, Browser(web)) is None

    def test_two_step_classified(self, web, phishing_generator, rng):
        target = web.self_hosting.create_site("target-kit.xyz", "attacker", 0)
        target.add_page(
            "/", "<html><body><form><input type=password></form></body></html>"
        )
        snap = _snapshot_for(
            web, phishing_generator, rng, "google_sites",
            PhishingVariant.TWO_STEP, target="https://target-kit.xyz/",
        )
        assert classify_evasive(snap, Browser(web)) is EvasiveVector.TWO_STEP

    def test_two_step_with_dead_target_still_classified(
        self, web, phishing_generator, rng
    ):
        snap = _snapshot_for(
            web, phishing_generator, rng, "google_sites",
            PhishingVariant.TWO_STEP, target="https://removed-target.xyz/",
        )
        assert classify_evasive(snap, Browser(web)) is EvasiveVector.TWO_STEP

    def test_iframe_classified(self, web, phishing_generator, rng):
        snap = _snapshot_for(
            web, phishing_generator, rng, "blogspot",
            PhishingVariant.IFRAME, target="https://framed-attack.xyz/inner",
        )
        assert classify_evasive(snap, Browser(web)) is EvasiveVector.IFRAME

    def test_driveby_classified(self, web, phishing_generator, rng):
        snap = _snapshot_for(
            web, phishing_generator, rng, "sharepoint", PhishingVariant.DRIVEBY
        )
        assert classify_evasive(snap, Browser(web)) is EvasiveVector.DRIVEBY

    def test_benign_page_not_evasive(self, web, benign_generator, rng):
        site = benign_generator.create_fwb_site(web.fwb_providers["weebly"], 0, rng)
        snap = Browser(web).snapshot(site.root_url, now=5)
        vector = classify_evasive(snap, Browser(web))
        # Benign pages may have nav links but never a cross-domain CTA
        # button, external iframe, or malicious download.
        assert vector is None
