"""Preprocessor, classifier, streaming, reporting, and framework wiring."""

import numpy as np
import pytest

from repro.core import (
    FreePhishClassifier,
    Preprocessor,
    StreamingModule,
)
from repro.core.reporting import ReportingModule
from repro.ecosystem.takedown import AbuseDesk
from repro.errors import NotFittedError, StreamError
from repro.ml import RandomForestClassifier
from repro.simnet import Browser, Web
from repro.simnet.url import parse_url
from repro.social import (
    CrowdTangleAPI,
    FacebookPlatform,
    TwitterAPI,
    TwitterPlatform,
)


class TestPreprocessor:
    def test_process_returns_features_and_snapshot(self, web, phishing_generator, rng):
        pre = Preprocessor(web)
        site = phishing_generator.create_site(web.fwb_providers["weebly"], 0, rng)
        page = pre.process(site.root_url, now=10)
        assert page is not None
        assert page.fwb_name == "weebly"
        assert page.fwb_vector.shape == (20,)
        assert len(pre.archive) == 1

    def test_unreachable_returns_none(self, web):
        pre = Preprocessor(web)
        assert pre.process(parse_url("https://ghost.example.org/"), 0) is None

    def test_batch_and_matrix(self, web, benign_generator, rng):
        pre = Preprocessor(web)
        urls = [
            benign_generator.create_fwb_site(web.fwb_providers["wix"], 0, rng).root_url
            for _ in range(3)
        ]
        pages = pre.process_batch(urls, now=5)
        assert len(pages) == 3
        assert pre.feature_matrix(pages).shape == (3, 20)
        assert pre.feature_matrix([]).shape == (0, 20)

    def test_batch_skips_and_reports_unreachable(self, web, benign_generator,
                                                 rng):
        pre = Preprocessor(web)
        live = [
            benign_generator.create_fwb_site(web.fwb_providers["wix"], 0, rng).root_url
            for _ in range(2)
        ]
        ghost = parse_url("https://ghost.weebly.com/")
        report = pre.process_batch_report([live[0], ghost, live[1]], now=5)
        # The dead URL is reported, not raised, and does not abort the batch.
        assert report.n_processed == 2
        assert [str(p.url) for p in report.pages] == [str(u) for u in live]
        assert report.n_skipped == 1
        assert str(report.skipped[0].url) == str(ghost)
        assert report.skipped[0].reason == "unreachable"
        # The pages-only convenience wrapper stays consistent.
        assert len(pre.process_batch([live[0], ghost, live[1]], now=5)) == 2

    def test_batch_reports_mid_batch_takedown(self, web, phishing_generator,
                                              rng):
        pre = Preprocessor(web)
        sites = [
            phishing_generator.create_site(web.fwb_providers["weebly"], 0, rng)
            for _ in range(3)
        ]
        web.take_down(sites[1].root_url, now=3)
        report = pre.process_batch_report([s.root_url for s in sites], now=5)
        assert report.n_processed == 2
        assert report.n_skipped == 1
        assert str(report.skipped[0].url) == str(sites[1].root_url)


class TestClassifier:
    def test_fit_predict_on_ground_truth(self, ground_truth):
        clf = FreePhishClassifier(
            model=RandomForestClassifier(n_estimators=20, random_state=0)
        )
        clf.fit_pages(ground_truth.pages, ground_truth.labels)
        X, y = ground_truth.split_arrays(clf.feature_names)
        summary = clf.evaluate(X, y)
        assert summary.accuracy > 0.9  # training-set sanity

    def test_classify_page_times_inference(self, ground_truth):
        clf = FreePhishClassifier(
            model=RandomForestClassifier(n_estimators=10, random_state=0)
        )
        clf.fit_pages(ground_truth.pages, ground_truth.labels)
        prediction = clf.classify_page(ground_truth.pages[0])
        assert prediction.label in (0, 1)
        assert 0.0 <= prediction.probability <= 1.0
        assert prediction.runtime_seconds > 0

    def test_unfitted_raises(self, ground_truth):
        clf = FreePhishClassifier()
        with pytest.raises(NotFittedError):
            clf.classify_page(ground_truth.pages[0])


def _stream_setup(web, rng):
    twitter = TwitterPlatform(rng)
    facebook = FacebookPlatform(rng)
    streaming = StreamingModule(
        web, TwitterAPI(twitter), CrowdTangleAPI(facebook)
    )
    return twitter, facebook, streaming


class TestStreaming:
    def test_poll_collects_both_platforms(self, web, rng):
        twitter, facebook, streaming = _stream_setup(web, rng)
        twitter.publish("see https://a.weebly.com/x", "u", now=5)
        facebook.publish("see https://b.wixsite.com/y", "u", now=7)
        observations = streaming.poll(now=10)
        assert {o.platform for o in observations} == {"twitter", "facebook"}
        assert all(o.is_fwb for o in observations)

    def test_deduplication_across_polls(self, web, rng):
        twitter, _fb, streaming = _stream_setup(web, rng)
        twitter.publish("https://a.weebly.com/x", "u", now=5)
        first = streaming.poll(now=10)
        twitter.publish("again https://a.weebly.com/x", "u", now=15)
        second = streaming.poll(now=20)
        assert len(first) == 1 and len(second) == 0

    def test_non_fwb_urls_flagged(self, web, rng):
        twitter, _fb, streaming = _stream_setup(web, rng)
        twitter.publish("https://random-kit.xyz/login", "u", now=5)
        (obs,) = streaming.poll(now=10)
        assert not obs.is_fwb and obs.fwb_name is None

    def test_backwards_poll_rejected(self, web, rng):
        _t, _f, streaming = _stream_setup(web, rng)
        streaming.poll(now=100)
        with pytest.raises(StreamError):
            streaming.poll(now=50)

    def test_run_window_covers_interval(self, web, rng):
        twitter, _fb, streaming = _stream_setup(web, rng)
        for i in range(6):
            twitter.publish(f"https://s{i}.weebly.com/", "u", now=i * 25)
        observations = streaming.run_window(0, 150)
        assert len(observations) == 6


class TestReporting:
    def test_report_reaches_abuse_desk(self, web, phishing_generator, rng):
        twitter = TwitterPlatform(rng)
        desk = AbuseDesk(web.fwb_providers["weebly"], web, rng)
        reporting = ReportingModule({"weebly": desk}, {"twitter": twitter})
        site = phishing_generator.create_site(web.fwb_providers["weebly"], 0, rng)
        post = twitter.publish_url(site.root_url, "attacker", 5, phishing=True)

        from repro.core.streaming import StreamObservation

        obs = StreamObservation(
            url=site.root_url, post=post, platform="twitter",
            observed_at=10, fwb_name="weebly",
        )
        pre = Preprocessor(web)
        page = pre.process(site.root_url, 10)
        report = reporting.report(obs, page, now=10)
        assert report.fwb_outcome is not None
        assert str(site.root_url) in desk.tickets
        assert len(reporting.reports) == 1

    def test_response_rates_aggregation(self, web, phishing_generator, rng):
        twitter = TwitterPlatform(rng)
        desks = {
            "weebly": AbuseDesk(web.fwb_providers["weebly"], web, rng),
            "wordpress": AbuseDesk(web.fwb_providers["wordpress"], web, rng),
        }
        reporting = ReportingModule(desks, {"twitter": twitter})
        pre = Preprocessor(web)
        from repro.core.streaming import StreamObservation

        for fwb in ("weebly", "wordpress"):
            for _ in range(10):
                site = phishing_generator.create_site(web.fwb_providers[fwb], 0, rng)
                post = twitter.publish_url(site.root_url, "a", 0, phishing=True)
                obs = StreamObservation(site.root_url, post, "twitter", 0, fwb)
                reporting.report(obs, pre.process(site.root_url, 0), now=0)
        rates = reporting.response_rates_by_fwb()
        assert rates["wordpress"]["no_response"] == 1.0
        assert rates["weebly"]["no_response"] < 1.0
