"""Analysis module timelines, framework orchestration, extension guard."""

import numpy as np
import pytest

from repro.core.extension import FreePhishExtension, NavigationVerdict
from repro.core.monitor import VT_SAMPLE_OFFSETS, UrlTimeline, _round_up_to_poll


class TestPollRounding:
    def test_rounds_up_to_grid(self):
        assert _round_up_to_poll(7, 10) == 10
        assert _round_up_to_poll(10, 10) == 10
        assert _round_up_to_poll(11, 10) == 20
        assert _round_up_to_poll(0, 10) == 10
        assert _round_up_to_poll(None, 10) is None


class TestTimelines:
    def test_campaign_timelines_have_expected_structure(self, campaign_result):
        timelines = campaign_result.timelines
        assert timelines, "campaign produced no tracked URLs"
        for timeline in timelines[:20]:
            assert set(timeline.blocklist_offsets) == {
                "gsb", "phishtank", "openphish", "ecrimex",
            }
            assert len(timeline.vt_samples) == len(VT_SAMPLE_OFFSETS)
            offsets = [o for o, _p in timeline.vt_samples]
            assert offsets == sorted(offsets)
            counts = [p for _o, p in timeline.vt_samples]
            assert counts == sorted(counts)  # detections only accumulate

    def test_offsets_on_poll_grid(self, campaign_result):
        for timeline in campaign_result.timelines:
            for offset in timeline.blocklist_offsets.values():
                if offset is not None:
                    assert offset % 10 == 0 and offset > 0
            if timeline.post_removal_offset is not None:
                assert timeline.post_removal_offset % 10 == 0

    def test_both_populations_tracked(self, campaign_result):
        assert campaign_result.fwb_timelines
        assert campaign_result.self_hosted_timelines
        assert all(t.fwb_name for t in campaign_result.fwb_timelines)
        assert all(t.fwb_name is None for t in campaign_result.self_hosted_timelines)

    def test_vt_at_lookup(self):
        timeline = UrlTimeline(
            url="https://x.weebly.com/", platform="twitter",
            fwb_name="weebly", first_seen=0,
            vt_samples=[(180, 1), (1440, 3), (2880, 5)],
        )
        assert timeline.vt_at(100) == 0
        assert timeline.vt_at(180) == 1
        assert timeline.vt_at(2000) == 3
        assert timeline.vt_final() == 5

    def test_tracked_urls_are_truth_phishing(self, campaign_result):
        """The classifier-filtered dataset should be almost all phishing."""
        wrong = [t for t in campaign_result.timelines if not t.is_phishing_truth]
        assert len(wrong) <= 0.05 * len(campaign_result.timelines)


class TestFrameworkStats:
    def test_detection_counts_consistent(self, campaign_world_and_result):
        world, result = campaign_world_and_result
        stats = world.framework.stats
        assert stats.detections == len(world.framework.detections)
        assert stats.reports_filed == stats.detections
        assert stats.observations >= stats.detections
        assert result.detections == stats.detections

    def test_detected_urls_unique(self, campaign_world_and_result):
        world, _result = campaign_world_and_result
        urls = world.framework.detected_urls()
        assert len(urls) == len(set(urls))


class TestExtension:
    def test_blocks_feed_urls_without_fetch(self, campaign_world_and_result):
        world, _result = campaign_world_and_result
        extension = FreePhishExtension(world.web, world.classifier)
        detected = world.framework.detected_urls()
        fwb_detected = [
            u for u, r in zip(detected, world.framework.detections)
            if r.observation.is_fwb
        ]
        assert fwb_detected
        extension.update_feed(fwb_detected[:3])
        from repro.simnet.url import parse_url

        verdict = extension.check(parse_url(fwb_detected[0]), now=10 ** 6)
        assert verdict is NavigationVerdict.BLOCKED_FEED

    def test_classifier_blocks_fresh_fwb_phishing(
        self, campaign_world_and_result, rng
    ):
        world, _result = campaign_world_and_result
        extension = FreePhishExtension(world.web, world.classifier)
        site = world.attacker.phishing_generator.create_site(
            world.web.fwb_providers["weebly"], now=10 ** 6, rng=rng
        )
        result = extension.navigate(site.root_url, now=10 ** 6 + 5)
        # Most fresh credential pages should be blocked by the local model.
        assert result.verdict in (
            NavigationVerdict.BLOCKED_CLASSIFIER, NavigationVerdict.ALLOWED,
        )
        assert extension.stats["checked"] >= 1

    def test_benign_navigation_allowed(self, campaign_world_and_result, rng):
        world, _result = campaign_world_and_result
        extension = FreePhishExtension(world.web, world.classifier)
        site = world.benign_users.generator.create_fwb_site(
            world.web.fwb_providers["wix"], now=10 ** 6, rng=rng
        )
        result = extension.navigate(site.root_url, now=10 ** 6 + 5)
        assert result.verdict is NavigationVerdict.ALLOWED
        assert result.fetch is not None and result.fetch.ok

    def test_unreachable(self, campaign_world_and_result):
        world, _result = campaign_world_and_result
        extension = FreePhishExtension(world.web, world.classifier)
        from repro.simnet.url import parse_url

        result = extension.navigate(parse_url("https://gone.example.net/"), 0)
        assert result.verdict is NavigationVerdict.UNREACHABLE

    def test_verdict_cached(self, campaign_world_and_result, rng):
        world, _result = campaign_world_and_result
        extension = FreePhishExtension(world.web, world.classifier)
        site = world.benign_users.generator.create_fwb_site(
            world.web.fwb_providers["weebly"], now=10 ** 6, rng=rng
        )
        extension.check(site.root_url, now=10 ** 6 + 1)
        # Site removed afterwards; cached ALLOWED verdict still returned.
        world.web.take_down(site.root_url, now=10 ** 6 + 2)
        assert extension.check(site.root_url, 10 ** 6 + 3) is NavigationVerdict.ALLOWED
