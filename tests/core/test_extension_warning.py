"""Extension warning page and user-override mechanics."""

import pytest

from repro.core.extension import FreePhishExtension, NavigationVerdict
from repro.simnet.url import parse_url
from repro.webdoc import parse_html


@pytest.fixture()
def extension(campaign_world_and_result):
    world, _result = campaign_world_and_result
    ext = FreePhishExtension(world.web, world.classifier)
    ext.update_feed(world.framework.detected_urls())
    return world, ext


class TestWarningPage:
    def test_warning_page_names_url_and_source(self, extension):
        _world, ext = extension
        url = parse_url("https://scam-page.weebly.com/")
        markup = ext.warning_page(url, NavigationVerdict.BLOCKED_FEED)
        assert str(url) in markup
        assert "detection feed" in markup
        document = parse_html(markup)
        assert "phishing" in document.title.lower()

    def test_warning_page_classifier_source(self, extension):
        _world, ext = extension
        url = parse_url("https://scam-page.weebly.com/")
        markup = ext.warning_page(url, NavigationVerdict.BLOCKED_CLASSIFIER)
        assert "on-device analysis" in markup

    def test_warning_page_has_proceed_link(self, extension):
        _world, ext = extension
        markup = ext.warning_page(
            parse_url("https://x.weebly.com/"), NavigationVerdict.BLOCKED_FEED
        )
        document = parse_html(markup)
        proceed = document.find(predicate=lambda e: e.id == "proceed-anyway")
        assert proceed is not None


class TestUserOverride:
    def test_allow_anyway_unblocks(self, extension):
        world, ext = extension
        fwb_urls = [
            r.observation.url for r in world.framework.detections
            if r.observation.is_fwb
        ]
        assert fwb_urls
        url = fwb_urls[0]
        assert ext.check(url, now=10 ** 7).name.startswith("BLOCKED")
        ext.allow_anyway(url)
        assert ext.check(url, now=10 ** 7) is NavigationVerdict.ALLOWED
        assert ext.stats["overridden"] == 1

    def test_override_is_per_url(self, extension):
        world, ext = extension
        fwb_urls = [
            r.observation.url for r in world.framework.detections
            if r.observation.is_fwb
        ]
        if len(fwb_urls) < 2:
            pytest.skip("need two detections")
        ext.allow_anyway(fwb_urls[0])
        assert ext.check(fwb_urls[1], now=10 ** 7).name.startswith("BLOCKED")
