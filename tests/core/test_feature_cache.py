"""Snapshot-keyed feature/page caches and the batched classify hand-off.

Covers the hot-path additions of the performance pass:

* :func:`snapshot_key` — the sanctioned cache-key producer (RP304);
* the :class:`FeatureExtractor` memo and the :class:`Preprocessor` page
  cache (hit/miss/evicted counters, LRU bound, keep=False hygiene);
* :meth:`FreePhishClassifier.classify_pages` — one ``predict_proba`` per
  batch, bit-identical to the per-page path;
* the lazily rendered :class:`PageSnapshot` visual signature.
"""

import numpy as np
import pytest

from repro.core import FreePhishClassifier, Preprocessor
from repro.core.features import (
    FeatureExtractor,
    snapshot_key,
)
from repro.ml import RandomForestClassifier
from repro.obs import Instrumentation
from repro.simnet.url import parse_url
from repro.webdoc import VisualSignature

URL_A = parse_url("https://login-secure.weebly.com/")
URL_B = parse_url("https://other-site.weebly.com/")
MARKUP = "<html><head><title>hi</title></head><body><a href='/'>x</a></body></html>"


class TestSnapshotKey:
    def test_deterministic(self):
        assert snapshot_key(URL_A, MARKUP) == snapshot_key(URL_A, MARKUP)

    def test_prefixed_hex_digest(self):
        key = snapshot_key(URL_A, MARKUP)
        assert key.startswith("snap:")
        assert len(key) == len("snap:") + 64

    def test_markup_changes_key(self):
        assert snapshot_key(URL_A, MARKUP) != snapshot_key(URL_A, MARKUP + " ")

    def test_url_changes_key(self):
        assert snapshot_key(URL_A, MARKUP) != snapshot_key(URL_B, MARKUP)

    def test_accepts_plain_string_url(self):
        assert snapshot_key(str(URL_A), MARKUP) == snapshot_key(URL_A, MARKUP)


class TestFeatureExtractorCache:
    def _counters(self, instr):
        counters = instr.metrics.snapshot()["counters"]
        return (
            counters.get("features.cache.hit", 0),
            counters.get("features.cache.miss", 0),
            counters.get("features.cache.evicted", 0),
        )

    def test_repeat_extraction_hits(self):
        instr = Instrumentation()
        extractor = FeatureExtractor(instrumentation=instr)
        first = extractor.extract(URL_A, MARKUP)
        second = extractor.extract(URL_A, MARKUP)
        assert second is first
        assert self._counters(instr) == (1, 1, 0)

    def test_changed_markup_misses(self):
        instr = Instrumentation()
        extractor = FeatureExtractor(instrumentation=instr)
        extractor.extract(URL_A, MARKUP)
        extractor.extract(URL_A, MARKUP + "<p>changed</p>")
        assert self._counters(instr) == (0, 2, 0)

    def test_lru_bound_and_eviction_counter(self):
        instr = Instrumentation()
        extractor = FeatureExtractor(cache_size=2, instrumentation=instr)
        for i in range(4):
            extractor.extract(URL_A, MARKUP + "x" * i)
        hits, misses, evicted = self._counters(instr)
        assert (hits, misses, evicted) == (0, 4, 2)

    def test_lru_recency_order(self):
        extractor = FeatureExtractor(cache_size=2)
        a = extractor.extract(URL_A, MARKUP + "a")
        extractor.extract(URL_A, MARKUP + "b")
        # Touch "a" so "b" is the eviction victim when "c" arrives.
        assert extractor.extract(URL_A, MARKUP + "a") is a
        extractor.extract(URL_A, MARKUP + "c")
        assert extractor.extract(URL_A, MARKUP + "a") is a  # still cached

    def test_zero_cache_size_disables(self):
        instr = Instrumentation()
        extractor = FeatureExtractor(cache_size=0, instrumentation=instr)
        first = extractor.extract(URL_A, MARKUP)
        second = extractor.extract(URL_A, MARKUP)
        assert first is not second
        assert np.array_equal(first.fwb_vector, second.fwb_vector)
        assert self._counters(instr) == (0, 0, 0)


@pytest.fixture()
def live_urls(web, benign_generator, rng):
    provider = web.fwb_providers["wix"]
    return [
        benign_generator.create_fwb_site(provider, 0, rng).root_url
        for _ in range(4)
    ]


class TestPreprocessorCache:
    def _counters(self, instr):
        counters = instr.metrics.snapshot()["counters"]
        return (
            counters.get("preprocess.cache.hit", 0),
            counters.get("preprocess.cache.miss", 0),
            counters.get("preprocess.cache.evicted", 0),
        )

    def test_reobservation_hits(self, web, live_urls):
        instr = Instrumentation()
        pre = Preprocessor(web, instrumentation=instr)
        first = pre.process(live_urls[0], now=0, keep=False)
        second = pre.process(live_urls[0], now=30, keep=False)
        assert second is first
        assert self._counters(instr) == (1, 1, 0)

    def test_keep_false_never_archives(self, web, live_urls):
        """Regression: discarded observations must not grow internal state."""
        pre = Preprocessor(web)
        pre.process(live_urls[0], now=0, keep=False)
        pre.process(live_urls[0], now=30, keep=False)  # cache-hit path too
        assert pre.archive == []

    def test_keep_true_archives_even_on_cache_hit(self, web, live_urls):
        pre = Preprocessor(web)
        pre.process(live_urls[0], now=0, keep=False)
        page = pre.process(live_urls[0], now=30, keep=True)
        assert pre.archive == [page]

    def test_cache_bound_and_evictions(self, web, live_urls):
        instr = Instrumentation()
        pre = Preprocessor(web, instrumentation=instr, cache_size=2)
        for url in live_urls[:3]:
            pre.process(url, now=0, keep=False)
        assert pre.cache_len == 2
        assert self._counters(instr) == (0, 3, 1)

    def test_unreachable_returns_none_without_caching(self, web):
        instr = Instrumentation()
        pre = Preprocessor(web, instrumentation=instr)
        ghost = parse_url("https://ghost.weebly.com/")
        assert pre.process(ghost, now=0, keep=False) is None
        assert pre.cache_len == 0
        assert self._counters(instr) == (0, 0, 0)

    def test_zero_cache_size_disables(self, web, live_urls):
        instr = Instrumentation()
        pre = Preprocessor(web, instrumentation=instr, cache_size=0)
        first = pre.process(live_urls[0], now=0, keep=False)
        second = pre.process(live_urls[0], now=30, keep=False)
        assert first is not second
        assert pre.cache_len == 0
        assert self._counters(instr) == (0, 0, 0)

    def test_cached_page_features_identical(self, web, live_urls):
        pre = Preprocessor(web)
        first = pre.process(live_urls[1], now=0, keep=False)
        fresh = Preprocessor(web).process(live_urls[1], now=30, keep=False)
        assert np.array_equal(first.fwb_vector, fresh.fwb_vector)


class TestBatchedClassify:
    @pytest.fixture()
    def fitted(self, ground_truth):
        classifier = FreePhishClassifier(
            model=RandomForestClassifier(n_estimators=15, random_state=11)
        )
        classifier.fit_pages(ground_truth.pages, ground_truth.labels)
        return classifier

    def test_batch_matches_per_page(self, fitted, ground_truth):
        pages = ground_truth.pages[:24]
        batched = fitted.classify_pages(pages)
        for page, prediction in zip(pages, batched):
            single = fitted.classify_page(page)
            assert prediction.probability == single.probability
            assert prediction.label == single.label

    def test_single_page_batch(self, fitted, ground_truth):
        page = ground_truth.pages[0]
        [prediction] = fitted.classify_pages([page])
        assert prediction.probability == fitted.classify_page(page).probability

    def test_empty_batch(self, fitted):
        assert fitted.classify_pages([]) == []

    def test_runtime_amortized(self, fitted, ground_truth):
        batched = fitted.classify_pages(ground_truth.pages[:8])
        runtimes = {prediction.runtime_seconds for prediction in batched}
        assert len(runtimes) == 1  # one timed call, split across the batch


class _StubStreaming:
    """Replays one fixed observation list every poll."""

    def __init__(self, observations):
        self._observations = observations

    def poll(self, now):
        return list(self._observations)


class _StubReporting:
    def __init__(self):
        self.reported = []

    def report(self, observation, page, now):
        self.reported.append((str(observation.url), now))


class _StubAnalysis:
    def __init__(self):
        self.tracked = []

    def track(self, observation):
        self.tracked.append(str(observation.url))


class TestFrameworkBatching:
    def _observations(self, web, phishing_generator, benign_generator, rng):
        from repro.core.streaming import StreamObservation
        from repro.social.posts import Post

        provider = web.fwb_providers["weebly"]
        sites = [phishing_generator.create_site(provider, 0, rng) for _ in range(3)]
        sites += [benign_generator.create_fwb_site(provider, 0, rng) for _ in range(3)]
        observations = []
        for i, site in enumerate(sites):
            post = Post(
                platform="twitter", post_id=f"p{i}", author=f"u{i}",
                text=str(site.root_url), created_at=0,
            )
            observations.append(
                StreamObservation(
                    url=site.root_url, post=post, platform="twitter",
                    observed_at=0, fwb_name="weebly",
                )
            )
        return observations

    def test_step_matches_sequential_classification(
        self, web, phishing_generator, benign_generator, rng, ground_truth
    ):
        """One batched tick must flag exactly the pages the per-page
        classifier flags, with identical probabilities, in arrival order."""
        from repro.core import FreePhish

        observations = self._observations(
            web, phishing_generator, benign_generator, rng
        )
        classifier = FreePhishClassifier(
            model=RandomForestClassifier(n_estimators=15, random_state=11)
        )
        classifier.fit_pages(ground_truth.pages, ground_truth.labels)
        reporting = _StubReporting()
        analysis = _StubAnalysis()
        framework = FreePhish(
            web, _StubStreaming(observations), Preprocessor(web), classifier,
            reporting, analysis,
        )
        fresh = framework.step(now=10)

        expected = []
        reference = Preprocessor(web)
        for observation in observations:
            page = reference.process(observation.url, 10, keep=False)
            prediction = classifier.classify_page(page)
            if prediction.label == 1:
                expected.append((str(observation.url), prediction.probability))
        assert [(str(r.observation.url), r.probability) for r in fresh] == expected
        assert reporting.reported == [(url, 10) for url, _ in expected]
        assert analysis.tracked == [url for url, _ in expected]
        assert framework.stats.detections == len(expected)

    def test_batch_counters(
        self, web, phishing_generator, benign_generator, rng, ground_truth
    ):
        from repro.core import FreePhish

        observations = self._observations(
            web, phishing_generator, benign_generator, rng
        )
        classifier = FreePhishClassifier(
            model=RandomForestClassifier(n_estimators=15, random_state=11)
        )
        classifier.fit_pages(ground_truth.pages, ground_truth.labels)
        framework = FreePhish(
            web, _StubStreaming(observations), Preprocessor(web), classifier,
            _StubReporting(), _StubAnalysis(),
        )
        framework.step(now=10)
        counters = framework.instr.metrics.snapshot()["counters"]
        assert counters["classify.batch.calls"] == 1
        assert counters["classify.batch.rows"] == len(observations)


class TestLazySignature:
    def test_signature_rendered_on_demand(self, web, browser, live_urls):
        snapshot = browser.snapshot(live_urls[0], now=0)
        assert snapshot._signature is None  # not rendered at snapshot time
        signature = snapshot.signature
        assert isinstance(signature, VisualSignature)
        assert snapshot.signature is signature  # memoized
