"""Feature extraction (§4.2): the 20-feature vectors."""

import numpy as np
import pytest

from repro.core.features import (
    BASE_FEATURE_NAMES,
    FWB_FEATURE_NAMES,
    FeatureExtractor,
)
from repro.errors import FeatureError
from repro.simnet.url import parse_url


@pytest.fixture(scope="module")
def extractor():
    return FeatureExtractor()


PHISH_MARKUP = """
<html><head><title>PayPaul - Sign In</title>
<meta name="robots" content="noindex"></head><body>
<div class="fwb-banner" style="visibility:hidden"><a href="https://weebly.com/">Powered by Weebly</a></div>
<form method="post" action="/submit">
  <input type="email" name="email"><input type="password" name="password">
</form>
<a href="#">empty</a>
<a href="https://elsewhere.example.com/x">ext</a>
<a href="/local">int</a>
</body></html>
"""

BENIGN_MARKUP = """
<html><head><title>Sunny Bakery</title></head><body>
<nav><ul><li><a href="/">Home</a></li><li><a href="/about">About</a></li></ul></nav>
<p>Fresh bread daily.</p><img src="/shop.jpg" alt="storefront">
</body></html>
"""


class TestFeatureSets:
    def test_base_has_20_features(self):
        assert len(BASE_FEATURE_NAMES) == 20

    def test_fwb_has_20_features(self):
        assert len(FWB_FEATURE_NAMES) == 20

    def test_fwb_swaps_exactly_two(self):
        base, fwb = set(BASE_FEATURE_NAMES), set(FWB_FEATURE_NAMES)
        assert base - fwb == {"has_https", "n_tld_tokens"}
        assert fwb - base == {"obfuscated_fwb_banner", "has_noindex"}


class TestExtraction:
    def test_phishing_page_features(self, extractor):
        url = parse_url("https://paypaul-login-verify.weebly.com/")
        features = extractor.extract(url, PHISH_MARKUP)
        values = features.values
        assert values["has_login_form"] == 1.0
        assert values["n_password_fields"] == 1.0
        assert values["brand_in_url"] == 1.0
        assert values["n_sensitive_words"] >= 2
        assert values["obfuscated_fwb_banner"] == 1.0
        assert values["has_noindex"] == 1.0
        assert values["title_brand_mismatch"] == 1.0
        assert values["n_empty_links"] == 1.0
        assert values["n_external_links"] == 1.0
        # The banner link points to weebly.com which is same-registered-host.
        assert values["n_internal_links"] >= 1

    def test_benign_page_features(self, extractor):
        url = parse_url("https://sunny-bakery.weebly.com/")
        values = extractor.extract(url, BENIGN_MARKUP).values
        assert values["has_login_form"] == 0.0
        assert values["brand_in_url"] == 0.0
        assert values["obfuscated_fwb_banner"] == 0.0
        assert values["has_noindex"] == 0.0
        assert values["title_brand_mismatch"] == 0.0

    def test_title_mismatch_absent_on_brand_domain(self, extractor):
        url = parse_url("https://paypaul.com/login")
        values = extractor.extract(url, PHISH_MARKUP).values
        assert values["title_brand_mismatch"] == 0.0

    def test_external_form_action(self, extractor):
        markup = (
            '<html><body><form action="https://collector.example.net/gate">'
            '<input type="password"></form></body></html>'
        )
        url = parse_url("https://x.weebly.com/")
        assert extractor.extract(url, markup).values["external_form_action"] == 1.0

    def test_vector_orders_match_names(self, extractor):
        url = parse_url("https://x.weebly.com/")
        features = extractor.extract(url, PHISH_MARKUP)
        base = features.base_vector
        assert base[BASE_FEATURE_NAMES.index("has_https")] == 1.0
        fwb = features.fwb_vector
        assert fwb[FWB_FEATURE_NAMES.index("has_noindex")] == 1.0
        assert len(base) == len(fwb) == 20

    def test_unknown_feature_requested(self, extractor):
        url = parse_url("https://x.weebly.com/")
        features = extractor.extract(url, BENIGN_MARKUP)
        with pytest.raises(FeatureError):
            features.vector(["no_such_feature"])  # reprolint: disable=RP301 — deliberately unknown name; asserts FeatureError

    def test_unsupported_page_type(self, extractor):
        with pytest.raises(FeatureError):
            extractor.extract(parse_url("https://x.weebly.com/"), 12345)

    def test_extract_matrix(self, extractor):
        url = parse_url("https://x.weebly.com/")
        matrix = extractor.extract_matrix(
            [(url, PHISH_MARKUP), (url, BENIGN_MARKUP)]
        )
        assert matrix.shape == (2, 20)
        assert not np.array_equal(matrix[0], matrix[1])
