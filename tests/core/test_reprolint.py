"""Tier-1 gate: the whole tree must be reprolint-clean.

This test is what turns the reproduction's determinism and purity
conventions into enforced invariants: any PR that introduces a wall-clock
read, an unseeded RNG, a real-network import, or feature-schema drift
fails the suite here unless it carries an explicit, justified
``# reprolint: disable=RPxxx`` suppression.
"""

from pathlib import Path

import pytest

from repro.lint import ProjectContext, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
LINTED_DIRS = ("src", "tests", "examples", "benchmarks", "scripts")


@pytest.fixture(scope="module")
def tree_report():
    paths = [REPO_ROOT / name for name in LINTED_DIRS if (REPO_ROOT / name).is_dir()]
    return run_lint(paths, project_root=REPO_ROOT)


class TestTreeIsClean:
    def test_no_unsuppressed_findings(self, tree_report):
        formatted = "\n".join(
            f"{f.path}:{f.line}: {f.rule_id} {f.message}"
            for f in tree_report.findings
        )
        assert not tree_report.findings, f"reprolint violations:\n{formatted}"

    def test_exit_code_clean(self, tree_report):
        assert tree_report.exit_code() == 0

    def test_whole_tree_was_scanned(self, tree_report):
        # A refactor that silently stopped scanning (moved dirs, glob bug)
        # would make this gate vacuous; pin a sane lower bound.
        assert tree_report.files_checked >= 150

    def test_every_suppression_carries_a_reason(self, tree_report):
        unjustified = [
            f"{f.path}:{f.line}: {f.rule_id}"
            for f in tree_report.suppressed
            if not f.suppress_reason
        ]
        assert not unjustified, (
            "suppressions must carry a justification after a dash:\n"
            + "\n".join(unjustified)
        )


class TestGateCatchesViolations:
    """The gate must actually fire: seed one violation of each family into
    a scratch library file and assert the linter reports it."""

    CASES = {
        "RP101": "import time\nt = time.time()\n",
        "RP201": "import requests\n",
        "RP302": "def f(rng):\n    return rng\n",
        "RP403": "def f(x):\n    assert x\n",
    }

    @pytest.mark.parametrize("rule_id", sorted(CASES))
    def test_seeded_violation_detected(self, rule_id, tmp_path):
        scratch = tmp_path / "src" / "repro" / "seeded.py"
        scratch.parent.mkdir(parents=True)
        scratch.write_text(self.CASES[rule_id])
        report = run_lint(
            [scratch], project_root=tmp_path, project=ProjectContext()
        )
        assert [f.rule_id for f in report.findings] == [rule_id]
        assert report.exit_code() != 0
