"""Extension edge cases: redirect chains, iframes, precedence, UNREACHABLE.

These exercise the awkward corners of the navigation guard now that it
routes through ``repro.serve``: multi-hop attacks that cross FWB hosts,
phishing content reachable only through an iframe, the feed-beats-
classifier precedence rule, and unreachable-page handling.
"""

import pytest

from repro.core.extension import FreePhishExtension, NavigationVerdict
from repro.serve.service import ServedFrom
from repro.simnet.browser import Browser
from repro.sitegen.phishing import PhishingVariant


@pytest.fixture()
def world_extension(campaign_world_and_result):
    world, _result = campaign_world_and_result
    return world, FreePhishExtension(world.web, world.classifier)


def _credential_site(world, rng, provider="wix"):
    generator = world.attacker.phishing_generator
    fwb_provider = world.web.fwb_providers[provider]
    spec = generator.sample_spec(fwb_provider.service, rng)
    spec.variant = PhishingVariant.CREDENTIAL
    spec.target_url = None
    return generator.create_site(fwb_provider, now=10 ** 6, rng=rng, spec=spec)


def _linked_site(world, rng, variant, target_url, provider="weebly"):
    generator = world.attacker.phishing_generator
    fwb_provider = world.web.fwb_providers[provider]
    spec = generator.sample_spec(fwb_provider.service, rng)
    spec.variant = variant
    spec.target_url = target_url
    return generator.create_site(fwb_provider, now=10 ** 6, rng=rng, spec=spec)


class TestRedirectChains:
    def test_two_step_chain_crosses_into_second_fwb_host(self, world_extension, rng):
        world, ext = world_extension
        credential = _credential_site(world, rng, provider="wix")
        landing = _linked_site(
            world, rng, PhishingVariant.TWO_STEP, str(credential.root_url)
        )
        chain = Browser(world.web).follow_workflow(landing.root_url, now=10 ** 6 + 5)
        assert len(chain) >= 2
        assert chain[1].url.host == credential.root_url.host
        assert chain[0].url.host != chain[1].url.host

    def test_extension_blocks_terminal_hop_once_fed(self, world_extension, rng):
        world, ext = world_extension
        credential = _credential_site(world, rng, provider="wix")
        landing = _linked_site(
            world, rng, PhishingVariant.TWO_STEP, str(credential.root_url)
        )
        ext.update_feed([str(credential.root_url)])
        chain = Browser(world.web).follow_workflow(landing.root_url, now=10 ** 6 + 5)
        verdicts = [ext.check(snapshot.url, 10 ** 6 + 6) for snapshot in chain]
        # Wherever the user bails mid-chain, the terminal phish never renders.
        assert verdicts[-1] is NavigationVerdict.BLOCKED_FEED
        result = ext.navigate(credential.root_url, 10 ** 6 + 7)
        assert result.blocked and result.fetch is None


class TestIframeEmbedding:
    def test_snapshot_resolves_framed_phishing_content(self, world_extension, rng):
        world, _ext = world_extension
        credential = _credential_site(world, rng, provider="wix")
        wrapper = _linked_site(
            world, rng, PhishingVariant.IFRAME, str(credential.root_url)
        )
        snapshot = Browser(world.web).snapshot(wrapper.root_url, now=10 ** 6 + 5)
        sources = [str(src) for src, _markup in snapshot.iframe_contents]
        assert str(credential.root_url) in sources
        framed = dict(
            (str(src), markup) for src, markup in snapshot.iframe_contents
        )[str(credential.root_url)]
        assert framed  # client-side content was actually resolved

    def test_framed_url_blocked_even_when_wrapper_is_not_fed(
        self, world_extension, rng
    ):
        world, ext = world_extension
        credential = _credential_site(world, rng, provider="wix")
        wrapper = _linked_site(
            world, rng, PhishingVariant.IFRAME, str(credential.root_url)
        )
        ext.update_feed([str(credential.root_url)])
        assert ext.check(credential.root_url, 10 ** 6 + 5) is (
            NavigationVerdict.BLOCKED_FEED
        )
        # The wrapper itself is outside the feed: the local model decides.
        wrapper_verdict = ext.check(wrapper.root_url, 10 ** 6 + 5)
        assert wrapper_verdict in (
            NavigationVerdict.ALLOWED, NavigationVerdict.BLOCKED_CLASSIFIER,
        )


class TestVerdictPrecedence:
    def test_feed_overrides_cached_classifier_allow(self, world_extension, rng):
        world, ext = world_extension
        site = world.benign_users.generator.create_fwb_site(
            world.web.fwb_providers["wix"], now=10 ** 6, rng=rng
        )
        first = ext.check_served(site.root_url, 10 ** 6 + 1)
        assert first.verdict is NavigationVerdict.ALLOWED
        # The backend later confirms it: the cached allow must not survive.
        ext.update_feed([str(site.root_url)])
        second = ext.check_served(site.root_url, 10 ** 6 + 2)
        assert second.verdict is NavigationVerdict.BLOCKED_FEED
        assert second.served_from is ServedFrom.FEED

    def test_feed_hit_never_reaches_classifier(self, world_extension, rng):
        world, ext = world_extension
        site = _credential_site(world, rng)
        ext.update_feed([str(site.root_url)])
        served = ext.check_served(site.root_url, 10 ** 6 + 1)
        assert served.served_from is ServedFrom.FEED
        assert served.probability is None  # no model ran

    def test_allowlist_overrides_everything(self, world_extension, rng):
        world, ext = world_extension
        site = _credential_site(world, rng)
        ext.update_feed([str(site.root_url)])
        ext.allow_anyway(site.root_url)
        served = ext.check_served(site.root_url, 10 ** 6 + 1)
        assert served.verdict is NavigationVerdict.ALLOWED
        assert served.served_from is ServedFrom.ALLOWLIST


class TestUnreachable:
    def test_unreachable_fwb_page_not_sticky(self, world_extension, rng):
        world, ext = world_extension
        site = _credential_site(world, rng)
        world.web.take_down(site.root_url, now=10 ** 6 + 1)
        first = ext.check(site.root_url, 10 ** 6 + 2)
        assert first is NavigationVerdict.UNREACHABLE
        # UNREACHABLE is never cached: the next check re-resolves instead
        # of replaying a stale availability answer.
        assert ext.service.cache.lookup(site.root_url, 10 ** 6 + 2) is None
        assert ext.check(site.root_url, 10 ** 6 + 3) is (
            NavigationVerdict.UNREACHABLE
        )

    def test_unreachable_does_not_count_as_blocked(self, world_extension, rng):
        world, ext = world_extension
        site = _credential_site(world, rng)
        world.web.take_down(site.root_url, now=10 ** 6 + 1)
        before = ext.stats["blocked"]
        ext.check(site.root_url, 10 ** 6 + 2)
        assert ext.stats["blocked"] == before
