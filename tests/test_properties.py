"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import hhmm_to_minutes, minutes_to_hhmm
from repro.errors import URLError
from repro.ml import DecisionTreeRegressor
from repro.ml.metrics import accuracy_score, confusion_matrix, f1_score
from repro.simnet.url import URL, extract_urls, parse_url
from repro.webdoc import levenshtein, levenshtein_ratio, parse_html
from repro.webdoc.render import render_signature

# -- strategies ---------------------------------------------------------------

_label = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=8
)
_host = st.builds(
    lambda parts: ".".join(parts),
    st.lists(_label, min_size=2, max_size=4),
)
_path = st.builds(
    lambda parts: "/" + "/".join(parts),
    st.lists(_label, min_size=0, max_size=3),
)
_url_text = st.builds(
    lambda scheme, host, path: f"{scheme}://{host}{path}",
    st.sampled_from(["http", "https"]),
    _host,
    _path,
)

_short_text = st.text(
    alphabet="abcdefghij <>/=\"'", min_size=0, max_size=60
)


class TestUrlProperties:
    @given(_url_text)
    def test_parse_str_roundtrip(self, text):
        url = parse_url(text)
        assert parse_url(str(url)) == url

    @given(_url_text)
    def test_registered_domain_is_host_suffix(self, text):
        url = parse_url(text)
        assert url.host.endswith(url.registered_domain)
        assert url.registered_domain.endswith(url.tld)

    @given(_url_text)
    def test_subdomain_plus_registered_reconstructs_host(self, text):
        url = parse_url(text)
        if url.subdomain:
            assert f"{url.subdomain}.{url.registered_domain}" == url.host
        else:
            assert url.host == url.registered_domain

    @given(st.text(max_size=120))
    def test_extract_urls_never_raises(self, text):
        for url in extract_urls(text):
            assert isinstance(url, URL)

    @given(_url_text, st.text(alphabet="abc !?", max_size=20))
    def test_extracted_from_padding(self, url_text, padding):
        found = extract_urls(f"{padding} {url_text} {padding}")
        assert any(u.host == parse_url(url_text).host for u in found)


class TestLevenshteinProperties:
    @given(st.text(max_size=40), st.text(max_size=40))
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(st.text(max_size=40))
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(st.text(max_size=30), st.text(max_size=30), st.text(max_size=30))
    @settings(max_examples=40)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(st.text(max_size=40), st.text(max_size=40))
    def test_bounds(self, a, b):
        distance = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= distance <= max(len(a), len(b))

    @given(st.text(max_size=40), st.text(max_size=40))
    def test_ratio_in_unit_interval(self, a, b):
        assert 0.0 <= levenshtein_ratio(a, b) <= 1.0

    @given(st.text(max_size=40), st.text(max_size=40),
           st.integers(min_value=0, max_value=10))
    def test_cutoff_consistent(self, a, b, cutoff):
        true_distance = levenshtein(a, b)
        bounded = levenshtein(a, b, cutoff=cutoff)
        if true_distance <= cutoff:
            assert bounded == true_distance
        else:
            assert bounded > cutoff


class TestParserProperties:
    @given(_short_text)
    @settings(max_examples=60)
    def test_parse_never_raises_on_text(self, text):
        document = parse_html(text)
        assert document.root.tag == "html"

    @given(_short_text)
    @settings(max_examples=40)
    def test_serialized_output_reparses(self, text):
        document = parse_html(text)
        again = parse_html(document.to_html())
        assert again.root.tag == "html"

    @given(_short_text)
    @settings(max_examples=40)
    def test_signature_finite(self, text):
        signature = render_signature(parse_html(text))
        assert np.isfinite(signature.vector).all()


class TestTimeProperties:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    def test_hhmm_roundtrip(self, minutes):
        assert hhmm_to_minutes(minutes_to_hhmm(minutes)) == minutes


class TestMetricProperties:
    @given(
        st.lists(st.integers(0, 1), min_size=1, max_size=50),
        st.lists(st.integers(0, 1), min_size=1, max_size=50),
    )
    def test_confusion_matrix_sums(self, y_true, y_pred):
        n = min(len(y_true), len(y_pred))
        matrix = confusion_matrix(y_true[:n], y_pred[:n])
        assert matrix.sum() == n
        assert (matrix >= 0).all()

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=50))
    def test_perfect_prediction(self, labels):
        assert accuracy_score(labels, labels) == 1.0
        if 1 in labels:
            assert f1_score(labels, labels) == 1.0


class TestTreeProperties:
    @given(
        st.integers(min_value=5, max_value=60),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=2 ** 31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_predictions_within_target_range(self, n, depth, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 3))
        y = rng.uniform(-5, 5, size=n)
        tree = DecisionTreeRegressor(max_depth=depth).fit(X, y)
        predictions = tree.predict(X)
        assert predictions.min() >= y.min() - 1e-9
        assert predictions.max() <= y.max() + 1e-9

    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_deeper_trees_fit_no_worse(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(60, 2))
        y = rng.normal(size=60)
        shallow = DecisionTreeRegressor(max_depth=1).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=5).fit(X, y)
        mse_shallow = float(np.mean((shallow.predict(X) - y) ** 2))
        mse_deep = float(np.mean((deep.predict(X) - y) ** 2))
        assert mse_deep <= mse_shallow + 1e-9
