"""Smoke tests: every shipped example must run clean end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )


class TestExamples:
    def test_quickstart(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "PHISHING" in result.stdout
        assert "benign" in result.stdout
        assert "shared wildcard" in result.stdout

    def test_evasive_attacks(self):
        result = _run("evasive_attacks.py")
        assert result.returncode == 0, result.stderr
        for vector in ("two_step", "iframe", "driveby"):
            assert vector in result.stdout

    def test_browser_extension(self):
        result = _run("browser_extension.py")
        assert result.returncode == 0, result.stderr
        assert "BLOCKED" in result.stdout
        assert "navigations blocked" in result.stdout

    def test_measurement_campaign_small(self):
        result = _run("measurement_campaign.py", "--days", "1", "--target", "60")
        assert result.returncode == 0, result.stderr
        assert "FWB cov" in result.stdout
        assert "abuse-desk report outcomes" in result.stdout

    def test_adaptive_attacker(self):
        result = _run("adaptive_attacker.py")
        assert result.returncode == 0, result.stderr
        assert "responsive trio mass" in result.stdout

    def test_historical_analysis(self):
        result = _run("historical_analysis.py")
        assert result.returncode == 0, result.stderr
        assert "pipeline funnel" in result.stdout
