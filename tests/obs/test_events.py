"""EventLog emission, sinks, rendering, and the bounded buffer."""

import io

import pytest

from repro.errors import ObservabilityError
from repro.obs import ConsoleSink, EventLog, render_event


class TestEventLog:
    def test_emit_returns_the_event(self):
        log = EventLog()
        event = log.emit("campaign.day", 1440, day=1, detections=12)
        assert event.kind == "campaign.day"
        assert event.time == 1440
        assert event.fields == {"day": 1, "detections": 12}

    def test_events_filter_by_kind_preserves_order(self):
        log = EventLog()
        log.emit("a", 0, n=1)
        log.emit("b", 10)
        log.emit("a", 20, n=2)
        assert [event.fields["n"] for event in log.events("a")] == [1, 2]
        assert len(log.events()) == 3

    def test_counts_by_kind_sorted(self):
        log = EventLog()
        log.emit("zebra", 0)
        log.emit("alpha", 0)
        log.emit("zebra", 0)
        assert log.counts_by_kind() == {"alpha": 1, "zebra": 2}
        assert list(log.counts_by_kind()) == ["alpha", "zebra"]

    def test_buffer_is_bounded_but_emitted_count_is_not(self):
        log = EventLog(max_events=3)
        for i in range(10):
            log.emit("tick", i)
        assert len(log) == 3
        assert log.n_emitted == 10
        assert [event.time for event in log.events()] == [7, 8, 9]

    def test_invalid_max_events_rejected(self):
        with pytest.raises(ObservabilityError):
            EventLog(max_events=0)

    def test_to_dict_sorts_field_keys(self):
        log = EventLog()
        event = log.emit("e", 5, zebra=1, alpha=2)
        assert list(event.to_dict()["fields"]) == ["alpha", "zebra"]


class TestSinks:
    def test_subscribed_sink_sees_every_event(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        log.emit("a", 0)
        log.emit("b", 10)
        assert [event.kind for event in seen] == ["a", "b"]

    def test_unsubscribe_stops_delivery(self):
        log = EventLog()
        seen = []
        sink = log.subscribe(seen.append)
        log.emit("a", 0)
        log.unsubscribe(sink)
        log.emit("b", 10)
        assert [event.kind for event in seen] == ["a"]

    def test_console_sink_renders_one_line_per_event(self):
        stream = io.StringIO()
        log = EventLog()
        log.subscribe(ConsoleSink(stream))
        log.emit("campaign.day", 1440, day=1, detections=12)
        assert stream.getvalue() == "[t=   1440m] campaign.day day=1 detections=12\n"


class TestRendering:
    def test_render_event_sorts_fields(self):
        log = EventLog()
        event = log.emit("e", 30, zebra=1, alpha="x")
        assert render_event(event) == "[t=     30m] e alpha=x zebra=1"

    def test_render_event_no_fields(self):
        log = EventLog()
        assert render_event(log.emit("start", 0)) == "[t=      0m] start"
