"""Counter/gauge/histogram primitives and the registry."""

import numpy as np
import pytest

from repro.errors import ObservabilityError
from repro.obs import Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("x")
        with pytest.raises(ObservabilityError):
            counter.inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestHistogramQuantiles:
    """Streaming quantiles must track numpy.percentile within the bucket
    growth factor's relative-error bound."""

    @pytest.mark.parametrize("seed", [0, 7, 20231024])
    def test_lognormal_quantiles_match_numpy(self, seed):
        rng = np.random.default_rng(seed)
        samples = rng.lognormal(mean=3.0, sigma=1.4, size=20_000)
        histogram = Histogram("delay")
        for sample in samples:
            histogram.observe(sample)
        for q in (0.50, 0.90, 0.99):
            exact = float(np.percentile(samples, q * 100))
            estimate = histogram.quantile(q)
            assert estimate == pytest.approx(exact, rel=0.02)

    def test_uniform_integer_quantiles_match_numpy(self):
        rng = np.random.default_rng(5)
        samples = rng.integers(1, 10_000, size=5_000)
        histogram = Histogram("minutes")
        for sample in samples:
            histogram.observe(int(sample))
        for q in (0.50, 0.90, 0.99):
            exact = float(np.percentile(samples, q * 100))
            assert histogram.quantile(q) == pytest.approx(exact, rel=0.02)

    def test_constant_stream_reports_exactly(self):
        histogram = Histogram("span")
        for _ in range(100):
            histogram.observe(42.0)
        assert histogram.quantile(0.0) == 42.0
        assert histogram.quantile(0.5) == 42.0
        assert histogram.quantile(0.99) == 42.0
        assert histogram.min == 42.0
        assert histogram.max == 42.0
        assert histogram.mean == 42.0

    def test_zero_values_share_the_zero_bucket(self):
        histogram = Histogram("span")
        for _ in range(99):
            histogram.observe(0.0)
        histogram.observe(100.0)
        assert histogram.quantile(0.5) == 0.0
        assert histogram.quantile(1.0) == 100.0
        assert histogram.count == 100

    def test_empty_histogram_returns_none(self):
        histogram = Histogram("empty")
        assert histogram.quantile(0.5) is None
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p50"] is None

    def test_negative_observation_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram("span").observe(-0.1)

    def test_out_of_range_quantile_rejected(self):
        histogram = Histogram("span")
        histogram.observe(1.0)
        with pytest.raises(ObservabilityError):
            histogram.quantile(1.5)

    def test_memory_is_bounded_by_buckets_not_samples(self):
        rng = np.random.default_rng(1)
        histogram = Histogram("spread")
        for sample in rng.lognormal(mean=0.0, sigma=2.0, size=50_000):
            histogram.observe(sample)
        # ~1e-9..1e3 spans roughly 28 decades of growth**i buckets; the
        # point is that it is thousands, not 50k sample objects.
        assert len(histogram._buckets) < 3_000


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_cross_kind_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("metric")
        with pytest.raises(ObservabilityError):
            registry.gauge("metric")
        with pytest.raises(ObservabilityError):
            registry.histogram("metric")

    def test_snapshot_is_sorted_and_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("zebra").inc()
        registry.counter("alpha").inc(2)
        registry.gauge("mid").set(7)
        registry.histogram("delay").observe(3.0)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["alpha", "zebra"]
        assert snapshot["counters"] == {"alpha": 2, "zebra": 1}
        assert snapshot["gauges"] == {"mid": 7.0}
        assert snapshot["histograms"]["delay"]["count"] == 1
        # Same observations in a different arrival order → same snapshot.
        other = MetricsRegistry()
        other.histogram("delay").observe(3.0)
        other.gauge("mid").set(7)
        other.counter("alpha").inc(2)
        other.counter("zebra").inc()
        assert other.snapshot() == snapshot

    def test_len_counts_all_kinds(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        registry.histogram("c")
        assert len(registry) == 3
