"""Tracer span nesting, ordering, clocks, and the ring buffer."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import MetricsRegistry, SimClock, Tracer


class TestSpanNesting:
    def test_nested_spans_record_parent_and_depth(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):
            clock.now = 10
            with tracer.span("inner"):
                clock.now = 30
        outer, = tracer.spans("outer")
        inner, = tracer.spans("inner")
        assert outer.parent is None and outer.depth == 0
        assert inner.parent == outer.index and inner.depth == 1
        assert (outer.start, outer.end) == (0, 30)
        assert (inner.start, inner.end) == (10, 30)
        assert inner.duration == 20

    def test_finish_order_is_innermost_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        assert [record.name for record in tracer.spans()] == ["c", "b", "a"]
        assert [record.index for record in tracer.spans()] == [2, 1, 0]

    def test_siblings_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("step"):
            with tracer.span("poll"):
                pass
            with tracer.span("classify"):
                pass
        step, = tracer.spans("step")
        assert {record.parent for record in tracer.spans()
                if record.name != "step"} == {step.index}

    def test_out_of_order_close_rejected(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(ObservabilityError):
            outer.__exit__(None, None, None)

    def test_active_depth_tracks_the_stack(self):
        tracer = Tracer()
        assert tracer.active_depth == 0
        with tracer.span("outer"):
            assert tracer.active_depth == 1
            with tracer.span("inner"):
                assert tracer.active_depth == 2
        assert tracer.active_depth == 0


class TestTracerAggregation:
    def test_finished_spans_feed_registry_histograms(self):
        registry = MetricsRegistry()
        clock = SimClock()
        tracer = Tracer(clock=clock, registry=registry)
        for duration in (5, 10, 15):
            with tracer.span("stage"):
                clock.now += duration
        histogram = registry.histogram("span.stage")
        assert histogram.count == 3
        assert histogram.total == 30

    def test_ring_buffer_bounds_records_not_counts(self):
        tracer = Tracer(max_spans=4)
        for _ in range(10):
            with tracer.span("tick"):
                pass
        assert len(tracer.spans()) == 4
        assert tracer.n_started == tracer.n_finished == 10
        # Oldest records rotated out: the newest indexes survive.
        assert [record.index for record in tracer.spans()] == [6, 7, 8, 9]

    def test_invalid_max_spans_rejected(self):
        with pytest.raises(ObservabilityError):
            Tracer(max_spans=0)


class TestClocks:
    def test_default_clock_is_deterministic_sim_time(self):
        tracer = Tracer()
        with tracer.span("stage"):
            pass
        record, = tracer.spans()
        assert record.start == 0.0 and record.end == 0.0

    def test_wall_clock_mode_measures_real_time(self):
        from repro.obs import wall_clock

        tracer = Tracer(clock=wall_clock())
        with tracer.span("stage"):
            sum(range(10_000))
        record, = tracer.spans()
        assert record.duration > 0
