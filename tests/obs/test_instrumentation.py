"""The Instrumentation facade, the null opt-out, and campaign telemetry."""

import json

import pytest

from repro.config import SimulationConfig
from repro.errors import ObservabilityError
from repro.obs import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    NullInstrumentation,
    TELEMETRY_SCHEMA_ID,
    load_telemetry,
    render_telemetry,
    write_telemetry_json,
)
from repro.sim import CampaignWorld


def tiny_world(instrumentation=None):
    config = SimulationConfig(seed=5, duration_days=1, target_fwb_phishing=25)
    return CampaignWorld(
        config, train_samples_per_class=40, instrumentation=instrumentation
    )


class TestInstrumentationFacade:
    def test_sim_mode_spans_use_the_sim_clock(self):
        instr = Instrumentation()
        instr.set_time(100)
        with instr.span("stage"):
            instr.set_time(130)
        record, = instr.tracer.spans("stage")
        assert (record.start, record.end) == (100, 130)
        assert instr.metrics.histogram("span.stage").total == 30

    def test_events_stamped_with_sim_time(self):
        instr = Instrumentation()
        instr.set_time(720)
        event = instr.emit("campaign.day", day=0)
        assert event.time == 720

    def test_profiling_mode_measures_wall_time(self):
        instr = Instrumentation.profiling()
        assert instr.mode == "wall"
        with instr.span("stage"):
            sum(range(10_000))
        record, = instr.tracer.spans("stage")
        assert record.duration > 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ObservabilityError):
            Instrumentation(mode="cpu")

    def test_telemetry_shape(self):
        instr = Instrumentation()
        instr.count("hits", 3)
        instr.observe("delay", 12.0)
        instr.emit("started")
        snapshot = instr.telemetry(include_spans=True)
        assert snapshot["schema"] == TELEMETRY_SCHEMA_ID
        assert snapshot["mode"] == "sim"
        assert snapshot["metrics"]["counters"] == {"hits": 3}
        assert snapshot["events"]["emitted"] == 1
        assert snapshot["spans"]["items"] == []


class TestNullInstrumentation:
    def test_is_a_drop_in_subclass(self):
        assert isinstance(NULL_INSTRUMENTATION, Instrumentation)
        assert NULL_INSTRUMENTATION.enabled is False
        assert Instrumentation().enabled is True

    def test_every_operation_is_a_noop(self):
        instr = NullInstrumentation()
        instr.count("x", 5)
        instr.observe("y", 1.0)
        instr.set_time(999)
        assert instr.emit("e", a=1) is None
        assert instr.now == 0.0
        assert instr.counter("x").value == 0
        assert instr.histogram("y").snapshot()["count"] == 0
        assert instr.telemetry()["metrics"]["counters"] == {}

    def test_span_reuses_one_shared_handle(self):
        instr = NullInstrumentation()
        first = instr.span("a")
        second = instr.span("b")
        assert first is second
        with first:
            with second:
                pass
        assert instr.tracer.n_started == 0

    def test_accessors_return_shared_singletons(self):
        a, b = NullInstrumentation(), NULL_INSTRUMENTATION
        assert a.counter("x") is b.counter("y")
        assert a.gauge("x") is b.gauge("y")
        assert a.histogram("x") is b.histogram("y")


class TestCampaignTelemetry:
    def test_same_seed_campaigns_serialize_byte_identically(self):
        first = tiny_world()
        first.run()
        second = tiny_world()
        second.run()
        json_a = first.instr.telemetry_json(include_spans=True)
        json_b = second.instr.telemetry_json(include_spans=True)
        assert json_a == json_b

    def test_campaign_telemetry_contents(self):
        world = tiny_world()
        result = world.run()
        snapshot = world.instr.telemetry()
        counters = snapshot["metrics"]["counters"]
        assert counters["framework.detections"] == result.detections
        assert counters["framework.observations"] == result.observations
        assert counters["monitor.timelines_resolved"] == len(result.timelines)
        assert snapshot["events"]["by_kind"]["campaign.start"] == 1
        assert snapshot["events"]["by_kind"]["campaign.finished"] == 1
        histograms = snapshot["metrics"]["histograms"]
        for stage in ("poll", "preprocess", "classify", "report", "step"):
            assert histograms[f"span.framework.{stage}"]["count"] > 0

    def test_framework_stats_compat_reads_registry(self):
        world = tiny_world()
        result = world.run()
        stats = world.framework.stats
        assert stats.detections == result.detections
        assert stats.observations == result.observations
        assert stats.as_dict()["polls"] == stats.polls

    def test_null_world_runs_identically_with_zero_telemetry(self):
        baseline = tiny_world().run()
        world = tiny_world(instrumentation=NULL_INSTRUMENTATION)
        result = world.run()
        assert [(t.url, t.first_seen) for t in result.timelines] == [
            (t.url, t.first_seen) for t in baseline.timelines
        ]
        assert world.instr.telemetry()["mode"] == "null"
        # Documented trade-off: a NULL-wired framework's stats read zero.
        assert world.framework.stats.detections == 0


class TestExport:
    def test_write_and_load_round_trip(self, tmp_path):
        instr = Instrumentation()
        instr.count("hits", 2)
        instr.set_time(60)
        instr.emit("tick", n=1)
        path = tmp_path / "telemetry.json"
        write_telemetry_json(instr, path)
        loaded = load_telemetry(path)
        assert loaded == instr.telemetry()
        # Canonical serialization: sorted keys, trailing newline.
        text = path.read_text()
        assert text.endswith("\n")
        assert text == json.dumps(loaded, sort_keys=True, indent=2) + "\n"

    def test_render_telemetry_text_report(self):
        instr = Instrumentation()
        instr.count("framework.detections", 7)
        instr.observe("moderation.delay_minutes", 90)
        instr.emit("campaign.day", day=1)
        text = render_telemetry(instr.telemetry())
        assert "telemetry report (mode=sim)" in text
        assert "framework.detections" in text
        assert "moderation.delay_minutes" in text
        assert "campaign.day" in text
