"""Boosted ensembles, random forest, and the StackModel."""

import numpy as np
import pytest

from repro.errors import NotFittedError, TrainingError
from repro.ml import (
    GradientBoostingClassifier,
    LightGBMClassifier,
    RandomForestClassifier,
    StackingClassifier,
    StackModel,
    XGBoostClassifier,
    accuracy_score,
    train_test_split,
)


def _nonlinear_data(n=600, seed=3):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 6))
    logits = (
        1.5 * X[:, 0]
        - X[:, 1]
        + 2.0 * (X[:, 2] > 0.3)
        + X[:, 3] * X[:, 4]
    )
    y = (logits + rng.normal(scale=0.6, size=n) > 0).astype(int)
    return train_test_split(X, y, test_size=0.3, random_state=1)


MODELS = [
    ("gbdt", lambda: GradientBoostingClassifier(n_estimators=50, random_state=0)),
    ("xgb", lambda: XGBoostClassifier(n_estimators=50, random_state=0)),
    ("lgbm", lambda: LightGBMClassifier(n_estimators=50, random_state=0)),
    ("rf", lambda: RandomForestClassifier(n_estimators=30, random_state=0)),
]


@pytest.mark.parametrize("name,factory", MODELS)
class TestCommonBehaviour:
    def test_learns_nonlinear_boundary(self, name, factory):
        Xtr, Xte, ytr, yte = _nonlinear_data()
        model = factory().fit(Xtr, ytr)
        assert accuracy_score(yte, model.predict(Xte)) > 0.78

    def test_probabilities_valid(self, name, factory):
        Xtr, Xte, ytr, yte = _nonlinear_data()
        proba = factory().fit(Xtr, ytr).predict_proba(Xte)
        assert proba.shape == (len(Xte), 2)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all() and (proba <= 1).all()

    def test_deterministic(self, name, factory):
        Xtr, _Xte, ytr, _yte = _nonlinear_data(200)
        a = factory().fit(Xtr, ytr).predict(Xtr)
        b = factory().fit(Xtr, ytr).predict(Xtr)
        assert np.array_equal(a, b)

    def test_predict_before_fit(self, name, factory):
        with pytest.raises(NotFittedError):
            factory().predict(np.zeros((2, 6)))

    def test_rejects_multiclass(self, name, factory):
        X = np.random.default_rng(0).normal(size=(30, 3))
        y = np.arange(30) % 3
        with pytest.raises(TrainingError):
            factory().fit(X, y)


class TestBoostingSpecifics:
    def test_more_stages_reduce_training_error(self):
        Xtr, _, ytr, _ = _nonlinear_data(300)
        few = GradientBoostingClassifier(n_estimators=5, random_state=0).fit(Xtr, ytr)
        many = GradientBoostingClassifier(n_estimators=80, random_state=0).fit(Xtr, ytr)
        assert accuracy_score(ytr, many.predict(Xtr)) >= accuracy_score(
            ytr, few.predict(Xtr)
        )

    def test_subsample_still_learns(self):
        Xtr, Xte, ytr, yte = _nonlinear_data()
        model = GradientBoostingClassifier(
            n_estimators=60, subsample=0.6, random_state=0
        ).fit(Xtr, ytr)
        assert accuracy_score(yte, model.predict(Xte)) > 0.78

    def test_invalid_hyperparameters(self):
        with pytest.raises(TrainingError):
            GradientBoostingClassifier(n_estimators=0)
        with pytest.raises(TrainingError):
            GradientBoostingClassifier(learning_rate=0.0)
        with pytest.raises(TrainingError):
            XGBoostClassifier(reg_lambda=-1)
        with pytest.raises(TrainingError):
            LightGBMClassifier(num_leaves=1)

    def test_xgb_regularization_shrinks_leaves(self):
        Xtr, _, ytr, _ = _nonlinear_data(300)
        mild = XGBoostClassifier(n_estimators=10, reg_lambda=0.1, random_state=0)
        harsh = XGBoostClassifier(n_estimators=10, reg_lambda=100.0, random_state=0)
        mild.fit(Xtr, ytr)
        harsh.fit(Xtr, ytr)
        spread_mild = np.std(mild.decision_function(Xtr))
        spread_harsh = np.std(harsh.decision_function(Xtr))
        assert spread_harsh < spread_mild

    def test_lgbm_leaf_budget(self):
        Xtr, _, ytr, _ = _nonlinear_data(300)
        model = LightGBMClassifier(n_estimators=3, num_leaves=4, random_state=0)
        model.fit(Xtr, ytr)

        def count_leaves(node):
            if node.is_leaf:
                return 1
            return count_leaves(node.left) + count_leaves(node.right)

        assert all(count_leaves(t.root) <= 4 for t in model._trees)

    def test_decision_function_matches_predict(self):
        Xtr, Xte, ytr, _ = _nonlinear_data(300)
        model = XGBoostClassifier(n_estimators=20, random_state=0).fit(Xtr, ytr)
        raw = model.decision_function(Xte)
        assert np.array_equal(model.predict(Xte), (raw >= 0).astype(int))


class TestStacking:
    def test_stackmodel_beats_single_weak_tree(self):
        Xtr, Xte, ytr, yte = _nonlinear_data(500)
        stack = StackModel(n_estimators=20, random_state=0).fit(Xtr, ytr)
        from repro.ml import DecisionTreeClassifier

        weak = DecisionTreeClassifier(max_depth=2).fit(Xtr, ytr)
        assert accuracy_score(yte, stack.predict(Xte)) >= accuracy_score(
            yte, weak.predict(Xte)
        )

    def test_augment_appends_predictions_and_vote(self):
        X = np.zeros((4, 3))
        preds = [np.array([0.9, 0.1, 0.8, 0.2]), np.array([0.7, 0.3, 0.6, 0.4])]
        out = StackingClassifier._augment(X, preds)
        assert out.shape == (4, 3 + 2 + 1)
        assert np.array_equal(out[:, -1], [1.0, 0.0, 1.0, 0.0])

    def test_single_class_labels_rejected(self):
        stack = StackModel(n_estimators=5, random_state=0)
        with pytest.raises(TrainingError):
            stack.fit(np.zeros((10, 2)), np.ones(10))

    def test_empty_layer_rejected(self):
        with pytest.raises(TrainingError):
            StackingClassifier(layers=[[]], final_factory=lambda: None)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            StackModel(n_estimators=5).predict_proba(np.zeros((1, 4)))
