"""Permutation feature importance."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml import (
    RandomForestClassifier,
    permutation_importance,
)


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(4)
    X = rng.normal(size=(400, 4))
    # Only columns 0 and 1 matter; 1 matters more.
    y = ((2.0 * X[:, 1] + 0.8 * X[:, 0]) > 0).astype(int)
    model = RandomForestClassifier(n_estimators=30, random_state=0).fit(X, y)
    return model, X, y


class TestPermutationImportance:
    def test_informative_features_rank_first(self, fitted):
        model, X, y = fitted
        results = permutation_importance(
            model, X, y, feature_names=["a", "b", "c", "d"], random_state=1
        )
        assert results[0].feature == "b"
        assert {results[0].feature, results[1].feature} == {"a", "b"}

    def test_noise_features_near_zero(self, fitted):
        model, X, y = fitted
        results = permutation_importance(
            model, X, y, feature_names=["a", "b", "c", "d"], random_state=1
        )
        by_name = {r.feature: r.importance for r in results}
        assert abs(by_name["c"]) < 0.05
        assert abs(by_name["d"]) < 0.05
        assert by_name["b"] > 0.15

    def test_default_names(self, fitted):
        model, X, y = fitted
        results = permutation_importance(model, X, y, random_state=1)
        assert {r.feature for r in results} == {
            "feature_0", "feature_1", "feature_2", "feature_3",
        }

    def test_sorted_descending(self, fitted):
        model, X, y = fitted
        results = permutation_importance(model, X, y, random_state=1)
        importances = [r.importance for r in results]
        assert importances == sorted(importances, reverse=True)

    def test_validation(self, fitted):
        model, X, y = fitted
        with pytest.raises(TrainingError):
            permutation_importance(model, X, y, feature_names=["only-one"])
        with pytest.raises(TrainingError):
            permutation_importance(model, X, y, n_repeats=0)
        with pytest.raises(TrainingError):
            permutation_importance(model, X[:10], y[:5])

    def test_fwb_features_matter_on_ground_truth(self, ground_truth):
        """On FWB data the paper's two added features carry real signal."""
        from repro.core.features import FWB_FEATURE_NAMES

        X, y = ground_truth.split_arrays(FWB_FEATURE_NAMES)
        model = RandomForestClassifier(n_estimators=30, random_state=0).fit(X, y)
        results = permutation_importance(
            model, X, y, feature_names=FWB_FEATURE_NAMES, random_state=1
        )
        ranks = {r.feature: i for i, r in enumerate(results)}
        # At least one of the two FWB features lands in the top half.
        assert min(
            ranks["obfuscated_fwb_banner"], ranks["has_noindex"]
        ) < len(FWB_FEATURE_NAMES) // 2
