"""XGBoost-style internals: regularized gain, gamma pruning, subsampling."""

import numpy as np
import pytest

from repro.ml.xgb import XGBoostClassifier, _XGBTree


def _split_problem(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = (X[:, 0] > 0).astype(float)
    p = np.full(n, 0.5)
    grad = p - y
    hess = p * (1 - p)
    return X, grad, hess


class TestXGBTree:
    def test_finds_true_split_feature(self):
        X, grad, hess = _split_problem()
        tree = _XGBTree(max_depth=1, min_child_weight=1.0, reg_lambda=1.0,
                        gamma=0.0, colsample=1.0,
                        rng=np.random.default_rng(0))
        tree.fit(X, grad, hess)
        assert not tree.root.is_leaf
        assert tree.root.feature == 0
        assert abs(tree.root.threshold) < 0.15

    def test_gamma_prunes_weak_splits(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(size=(200, 2))
        grad = rng.normal(scale=0.01, size=200)  # almost no signal
        hess = np.full(200, 0.25)
        strict = _XGBTree(max_depth=3, min_child_weight=1.0, reg_lambda=1.0,
                          gamma=10.0, colsample=1.0,
                          rng=np.random.default_rng(0))
        strict.fit(X, grad, hess)
        assert strict.root.is_leaf  # nothing clears the gamma bar

    def test_leaf_value_is_newton_step(self):
        X = np.zeros((10, 1))
        grad = np.full(10, 2.0)
        hess = np.full(10, 1.0)
        tree = _XGBTree(max_depth=0, min_child_weight=1.0, reg_lambda=1.0,
                        gamma=0.0, colsample=1.0,
                        rng=np.random.default_rng(0))
        tree.fit(X, grad, hess)
        # -G / (H + lambda) = -20 / (10 + 1)
        assert tree.root.value == pytest.approx(-20 / 11)

    def test_min_child_weight_blocks_tiny_children(self):
        X = np.array([[0.0]] * 99 + [[10.0]])
        y = np.array([0.0] * 99 + [1.0])
        p = np.full(100, 0.5)
        grad, hess = p - y, p * (1 - p)
        tree = _XGBTree(max_depth=2, min_child_weight=5.0, reg_lambda=1.0,
                        gamma=0.0, colsample=1.0,
                        rng=np.random.default_rng(0))
        tree.fit(X, grad, hess)
        # The lone outlier row carries hessian 0.25 < 5.0: unsplittable.
        assert tree.root.is_leaf


class TestColumnSubsampling:
    def test_colsample_restricts_candidate_features(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(300, 8))
        y = (X[:, 0] > 0).astype(int)
        model = XGBoostClassifier(
            n_estimators=12, colsample_bytree=0.25, random_state=0
        ).fit(X, y)
        used = set()
        for tree in model._trees:
            stack = [tree.root]
            while stack:
                node = stack.pop()
                if node is None or node.is_leaf:
                    continue
                used.add(node.feature)
                stack.extend((node.left, node.right))
        # With 2-of-8 columns per tree, not every feature can be used by
        # every tree — and the signal feature is found by some tree.
        assert used, "no splits at all"
        assert 0 in used

    def test_subsample_rows_still_learns(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(400, 3))
        y = (X[:, 1] > 0).astype(int)
        model = XGBoostClassifier(
            n_estimators=30, subsample=0.5, random_state=0
        ).fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.9
