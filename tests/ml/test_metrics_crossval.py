"""Metrics and cross-validation utilities."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml import (
    accuracy_score,
    classification_summary,
    confusion_matrix,
    cross_val_predict,
    f1_score,
    kfold_indices,
    precision_score,
    recall_score,
    train_test_split,
)
from repro.ml.metrics import roc_auc_score


class TestMetrics:
    Y_TRUE = [1, 1, 1, 1, 0, 0, 0, 0]
    Y_PRED = [1, 1, 0, 0, 0, 0, 0, 1]

    def test_confusion_matrix(self):
        matrix = confusion_matrix(self.Y_TRUE, self.Y_PRED)
        assert matrix.tolist() == [[3, 1], [2, 2]]

    def test_scores(self):
        assert accuracy_score(self.Y_TRUE, self.Y_PRED) == pytest.approx(5 / 8)
        assert precision_score(self.Y_TRUE, self.Y_PRED) == pytest.approx(2 / 3)
        assert recall_score(self.Y_TRUE, self.Y_PRED) == pytest.approx(1 / 2)
        expected_f1 = 2 * (2 / 3) * (1 / 2) / (2 / 3 + 1 / 2)
        assert f1_score(self.Y_TRUE, self.Y_PRED) == pytest.approx(expected_f1)

    def test_degenerate_precision_recall(self):
        assert precision_score([0, 0], [0, 0]) == 0.0
        assert recall_score([0, 0], [0, 0]) == 0.0
        assert f1_score([1, 0], [0, 1]) == 0.0

    def test_summary_object(self):
        summary = classification_summary(self.Y_TRUE, self.Y_PRED)
        assert summary.as_dict()["accuracy"] == pytest.approx(5 / 8)

    def test_shape_mismatch(self):
        with pytest.raises(TrainingError):
            accuracy_score([1, 0], [1])
        with pytest.raises(TrainingError):
            accuracy_score([], [])

    def test_auc_perfect_and_random(self):
        y = [0, 0, 1, 1]
        assert roc_auc_score(y, [0.1, 0.2, 0.8, 0.9]) == 1.0
        assert roc_auc_score(y, [0.9, 0.8, 0.2, 0.1]) == 0.0
        assert roc_auc_score(y, [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_auc_requires_both_classes(self):
        with pytest.raises(TrainingError):
            roc_auc_score([1, 1], [0.1, 0.2])


class TestSplits:
    def test_train_test_split_sizes_and_stratification(self):
        X = np.arange(100).reshape(-1, 1)
        y = np.array([0] * 70 + [1] * 30)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.3, random_state=0)
        assert len(Xte) == 30
        assert yte.sum() == 9  # 30% of the 30 positives
        assert set(Xtr.ravel()) | set(Xte.ravel()) == set(range(100))
        assert not set(Xtr.ravel()) & set(Xte.ravel())

    def test_invalid_test_size(self):
        with pytest.raises(TrainingError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), test_size=1.5)

    def test_kfold_partitions(self):
        folds = kfold_indices(23, n_splits=4, random_state=1)
        assert len(folds) == 4
        all_test = np.concatenate([test for _train, test in folds])
        assert sorted(all_test) == list(range(23))
        for train, test in folds:
            assert not set(train) & set(test)
            assert len(train) + len(test) == 23

    def test_kfold_validation(self):
        with pytest.raises(TrainingError):
            kfold_indices(3, n_splits=5)
        with pytest.raises(TrainingError):
            kfold_indices(10, n_splits=1)

    def test_cross_val_predict_covers_all_and_is_out_of_fold(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(120, 4))
        y = (X[:, 0] > 0).astype(int)

        from repro.ml import DecisionTreeClassifier

        preds = cross_val_predict(
            lambda: DecisionTreeClassifier(max_depth=3), X, y,
            n_splits=5, random_state=0,
        )
        assert preds.shape == (120,)
        assert (preds >= 0).all() and (preds <= 1).all()
        # A depth-3 tree easily learns x0>0, so OOF predictions are good.
        assert np.mean((preds >= 0.5).astype(int) == y) > 0.9
