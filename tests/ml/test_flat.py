"""FlatForest: vectorized inference must be bit-identical to the per-row
reference walk, for every backend and the stacked model.

These are property-style checks: each case fits a model on one random
problem and asserts ``np.array_equal`` (not ``allclose``) between the flat
path and the reference walk over matrices drawn from SeedBank-derived
streams — including NaN contamination, values sitting exactly on learned
thresholds, single-row batches, and the empty batch.
"""

import numpy as np
import pytest

from repro.config import SeedBank
from repro.errors import TrainingError
from repro.ml import (
    FlatForest,
    GradientBoostingClassifier,
    LightGBMClassifier,
    RandomForestClassifier,
    StackModel,
    XGBoostClassifier,
)

SEEDS = SeedBank(20231024)


def _training_data(n=400, d=8, stream="flat.train"):
    rng = SEEDS.child(stream)
    X = rng.normal(size=(n, d))
    logits = 1.2 * X[:, 0] - X[:, 1] + 1.5 * (X[:, 2] > 0.2) + X[:, 3] * X[:, 4]
    y = (logits + rng.normal(scale=0.5, size=n) > 0).astype(int)
    return X, y


def _query_matrices(d=8):
    """Batches the equivalence property is checked over."""
    rng = SEEDS.child("flat.query")
    dense = rng.normal(size=(300, d))
    single = rng.normal(size=(1, d))
    contaminated = rng.normal(size=(120, d))
    mask = rng.random(size=contaminated.shape) < 0.05
    contaminated[mask] = np.nan
    return [dense, single, contaminated, np.empty((0, d))]


BACKENDS = [
    ("gbdt", lambda: GradientBoostingClassifier(n_estimators=25, random_state=3)),
    ("xgb", lambda: XGBoostClassifier(n_estimators=25, random_state=3)),
    ("lgbm", lambda: LightGBMClassifier(n_estimators=25, random_state=3)),
    ("rf", lambda: RandomForestClassifier(n_estimators=20, random_state=3)),
]


@pytest.mark.parametrize("name,factory", BACKENDS)
class TestBackendEquivalence:
    def test_predict_proba_bit_identical(self, name, factory):
        X, y = _training_data()
        model = factory().fit(X, y)
        for Q in _query_matrices():
            assert np.array_equal(
                model.predict_proba(Q), model.predict_proba_reference(Q)
            )

    def test_predict_matches_reference(self, name, factory):
        X, y = _training_data()
        model = factory().fit(X, y)
        for Q in _query_matrices():
            reference = (
                model.predict_proba_reference(Q)[:, 1] >= 0.5
            ).astype(np.int64)
            assert np.array_equal(model.predict(Q), reference)

    def test_batch_equals_rowwise(self, name, factory):
        """Scoring a batch must equal scoring its rows one at a time."""
        X, y = _training_data()
        model = factory().fit(X, y)
        Q = _query_matrices()[2][:40]  # NaN-contaminated slice
        batched = model.predict_proba(Q)
        rowwise = np.vstack([model.predict_proba(row[None, :]) for row in Q])
        assert np.array_equal(batched, rowwise)

    def test_refit_invalidates_compiled_forest(self, name, factory):
        X, y = _training_data()
        model = factory().fit(X, y)
        first = model.predict_proba(X[:50])
        X2, y2 = _training_data(stream="flat.retrain")
        model.fit(X2, y2)
        assert np.array_equal(
            model.predict_proba(X[:50]), model.predict_proba_reference(X[:50])
        )
        # The second fit saw different data; identical output would mean
        # the stale compiled forest survived the refit.
        assert not np.array_equal(model.predict_proba(X[:50]), first)


class TestStackedEquivalence:
    def test_stack_model_bit_identical(self):
        X, y = _training_data()
        model = StackModel(n_estimators=10, n_splits=3, random_state=7).fit(X, y)
        for Q in _query_matrices():
            assert np.array_equal(
                model.predict_proba(Q), model.predict_proba_reference(Q)
            )

    def test_stack_single_row(self):
        X, y = _training_data()
        model = StackModel(n_estimators=10, n_splits=3, random_state=7).fit(X, y)
        row = X[:1]
        assert np.array_equal(
            model.predict_proba(row), model.predict_proba_reference(row)
        )


class TestThresholdEdges:
    def test_values_on_learned_thresholds(self):
        """x == threshold must route left on both paths (<= semantics)."""
        X, y = _training_data()
        model = GradientBoostingClassifier(n_estimators=15, random_state=3)
        model.fit(X, y)
        flat = model._compiled()
        internal = flat.threshold[flat.feature >= 0]
        rng = SEEDS.child("flat.edges")
        Q = rng.normal(size=(64, X.shape[1]))
        # Plant exact threshold values at random positions.
        rows = rng.integers(0, Q.shape[0], size=min(64, internal.size))
        cols = rng.integers(0, Q.shape[1], size=rows.size)
        Q[rows, cols] = internal[: rows.size]
        assert np.array_equal(
            model.predict_proba(Q), model.predict_proba_reference(Q)
        )

    def test_all_nan_rows(self):
        X, y = _training_data()
        model = RandomForestClassifier(n_estimators=10, random_state=3).fit(X, y)
        Q = np.full((5, X.shape[1]), np.nan)
        assert np.array_equal(
            model.predict_proba(Q), model.predict_proba_reference(Q)
        )


class TestFlatForestStructure:
    def _compiled(self):
        X, y = _training_data()
        model = GradientBoostingClassifier(n_estimators=8, random_state=3)
        model.fit(X, y)
        return model._compiled(), X

    def test_leaves_self_loop(self):
        flat, _ = self._compiled()
        leaves = np.flatnonzero(flat.feature < 0)
        assert leaves.size > 0
        assert np.array_equal(flat.left[leaves], leaves)
        assert np.array_equal(flat.right[leaves], leaves)

    def test_tree_count(self):
        flat, _ = self._compiled()
        assert flat.n_trees == 8
        assert flat.n_nodes == flat.feature.size

    def test_leaf_values_shape(self):
        flat, X = self._compiled()
        values = flat.leaf_values(X[:17])
        assert values.shape == (8, 17)

    def test_rejects_wrong_width(self):
        flat, X = self._compiled()
        with pytest.raises(TrainingError):
            flat.leaf_values(X[:, :-1])

    def test_rejects_1d_input(self):
        flat, X = self._compiled()
        with pytest.raises(TrainingError):
            flat.leaf_values(X[0])

    def test_accumulate_matches_sequential_loop(self):
        flat, X = self._compiled()
        Q = X[:31]
        values = flat.leaf_values(Q)
        expected = np.full(Q.shape[0], 0.125)
        for t in range(values.shape[0]):
            expected = expected + 0.3 * values[t]
        assert np.array_equal(flat.accumulate(Q, 0.125, 0.3), expected)

    def test_empty_batch(self):
        flat, X = self._compiled()
        assert flat.leaf_values(np.empty((0, X.shape[1]))).shape == (8, 0)
        assert flat.accumulate(np.empty((0, X.shape[1])), 0.0, 0.1).shape == (0,)
