"""LightGBM internals: the binner and leaf-wise tree growth."""

import numpy as np
import pytest

from repro.ml.lgbm import _Binner, _LGBMTree, LightGBMClassifier


class TestBinner:
    def test_transform_monotone_in_feature(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 1))
        binner = _Binner(max_bins=16).fit(X)
        binned = binner.transform(X)
        order = np.argsort(X[:, 0])
        assert (np.diff(binned[order, 0]) >= 0).all()

    def test_bin_count_bounded(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 2))
        binned = _Binner(max_bins=8).fit(X).transform(X)
        assert binned.max() <= 8

    def test_constant_feature_single_bin(self):
        X = np.ones((50, 1))
        binner = _Binner(max_bins=8).fit(X)
        binned = binner.transform(X)
        assert np.unique(binned).size == 1

    def test_threshold_maps_bins_to_raw_space(self):
        X = np.arange(100, dtype=float).reshape(-1, 1)
        binner = _Binner(max_bins=4).fit(X)
        binned = binner.transform(X)
        for bin_index in range(int(binned.max())):
            threshold = binner.threshold(0, bin_index)
            # Everything in bins <= bin_index sits at/below the threshold.
            assert X[binned[:, 0] <= bin_index, 0].max() <= threshold

    def test_unseen_values_clamp_into_range(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        binner = _Binner(max_bins=8).fit(X)
        extremes = binner.transform(np.array([[-100.0], [100.0]]))
        assert extremes[0, 0] == 0
        assert extremes[1, 0] == binner.transform(X).max()


class TestLeafWiseTree:
    def test_grows_best_first(self):
        """With a budget of 3 leaves, the tree spends its splits on the
        dimension with the largest gain."""
        rng = np.random.default_rng(2)
        X = rng.uniform(size=(400, 2))
        # Feature 0 explains most variance; feature 1 a little.
        y = (X[:, 0] > 0.5).astype(float) * 2.0 + (X[:, 1] > 0.5) * 0.2
        grad = y - y.mean()
        hess = np.ones_like(grad)
        binner = _Binner(max_bins=32).fit(X)
        tree = _LGBMTree(num_leaves=2, min_data_in_leaf=5, reg_lambda=1.0,
                         min_gain=0.0)
        tree.fit(binner.transform(X), grad, hess)
        assert tree.root.feature == 0  # the first (only) split uses f0

    def test_prediction_partitions_all_rows(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(200, 3))
        y = (X[:, 0] > 0).astype(float)
        model = LightGBMClassifier(n_estimators=5, num_leaves=8,
                                   random_state=0).fit(X, y)
        proba = model.predict_proba(X)
        assert np.isfinite(proba).all()

    def test_min_data_in_leaf_respected(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(60, 2))
        grad = rng.normal(size=60)
        hess = np.ones(60)
        binned = _Binner(max_bins=16).fit(X).transform(X)
        tree = _LGBMTree(num_leaves=32, min_data_in_leaf=20, reg_lambda=1.0,
                         min_gain=0.0)
        tree.fit(binned, grad, hess)

        def leaf_sizes(node, indices):
            if node.is_leaf:
                return [len(indices)]
            mask = binned[indices, node.feature] <= node.threshold_bin
            return leaf_sizes(node.left, indices[mask]) + leaf_sizes(
                node.right, indices[~mask]
            )

        sizes = leaf_sizes(tree.root, np.arange(60))
        assert all(size >= 20 for size in sizes)
        assert sum(sizes) == 60
