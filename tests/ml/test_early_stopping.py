"""Early stopping in gradient boosting."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml import GradientBoostingClassifier, accuracy_score, train_test_split


def _easy_data(n=400, seed=1):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = (X[:, 0] > 0).astype(int)  # trivially separable
    return X, y


def _noisy_data(n=400, seed=1):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = ((X[:, 0] + rng.normal(scale=1.5, size=n)) > 0).astype(int)
    return X, y


class TestEarlyStopping:
    def test_stops_when_validation_loss_degrades(self):
        # Pure-noise labels: additional stages only overfit, so the
        # validation loss turns upward quickly and stopping must trigger.
        rng = np.random.default_rng(0)
        X = rng.normal(size=(300, 4))
        y = rng.integers(0, 2, size=300)
        model = GradientBoostingClassifier(
            n_estimators=200, early_stopping_rounds=5, random_state=0
        ).fit(X, y)
        assert model.n_fitted_trees < 200
        # The ensemble is truncated to (roughly) the best stage, which is
        # early_stopping_rounds before the stop point.
        assert len(model.validation_curve) - model.n_fitted_trees >= 5

    def test_accuracy_preserved_after_truncation(self):
        X, y = _noisy_data()
        Xtr, Xte, ytr, yte = train_test_split(X, y, 0.3, random_state=2)
        stopped = GradientBoostingClassifier(
            n_estimators=150, early_stopping_rounds=10, random_state=0
        ).fit(Xtr, ytr)
        full = GradientBoostingClassifier(
            n_estimators=150, random_state=0
        ).fit(Xtr, ytr)
        acc_stopped = accuracy_score(yte, stopped.predict(Xte))
        acc_full = accuracy_score(yte, full.predict(Xte))
        assert acc_stopped >= acc_full - 0.05

    def test_validation_curve_recorded(self):
        X, y = _noisy_data()
        model = GradientBoostingClassifier(
            n_estimators=40, early_stopping_rounds=40, random_state=0
        ).fit(X, y)
        assert model.validation_curve
        assert all(np.isfinite(v) for v in model.validation_curve)

    def test_no_early_stopping_by_default(self):
        X, y = _easy_data(120)
        model = GradientBoostingClassifier(n_estimators=25, random_state=0).fit(X, y)
        assert model.n_fitted_trees == 25
        assert model.validation_curve == []

    def test_parameter_validation(self):
        with pytest.raises(TrainingError):
            GradientBoostingClassifier(early_stopping_rounds=0)
        with pytest.raises(TrainingError):
            GradientBoostingClassifier(validation_fraction=1.5)

    def test_too_few_samples(self):
        X = np.zeros((3, 2))
        y = np.array([0, 1, 0])
        model = GradientBoostingClassifier(
            n_estimators=5, early_stopping_rounds=2, validation_fraction=0.5
        )
        with pytest.raises(TrainingError):
            model.fit(X, y)
