"""CART tree tests."""

import numpy as np
import pytest

from repro.errors import NotFittedError, TrainingError
from repro.ml import DecisionTreeClassifier, DecisionTreeRegressor


def _step_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 3))
    y = np.where(X[:, 0] > 0.2, 1.0, -1.0)
    return X, y


class TestRegressor:
    def test_fits_step_function(self):
        X, y = _step_data()
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        assert np.mean((tree.predict(X) - y) ** 2) < 0.01

    def test_depth_zero_predicts_mean(self):
        X, y = _step_data()
        tree = DecisionTreeRegressor(max_depth=0).fit(X, y)
        assert np.allclose(tree.predict(X), y.mean())
        assert tree.depth == 0 and tree.n_leaves == 1

    def test_min_samples_leaf_respected(self):
        X, y = _step_data(40)
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=15).fit(X, y)
        # With 40 samples and 15-per-leaf, at most 2 leaves are possible
        # along any root split; depth is bounded accordingly.
        assert tree.n_leaves <= 2

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(0).normal(size=(50, 2))
        tree = DecisionTreeRegressor(max_depth=5).fit(X, np.ones(50))
        assert tree.n_leaves == 1

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_shape_validation(self):
        with pytest.raises(TrainingError):
            DecisionTreeRegressor().fit(np.zeros(5), np.zeros(5))
        with pytest.raises(TrainingError):
            DecisionTreeRegressor().fit(np.zeros((5, 2)), np.zeros(4))
        tree = DecisionTreeRegressor().fit(np.zeros((5, 2)), np.zeros(5))
        with pytest.raises(TrainingError):
            tree.predict(np.zeros((3, 7)))

    def test_deterministic_given_seed(self):
        X, y = _step_data(100)
        a = DecisionTreeRegressor(max_depth=4, max_features=2, random_state=1)
        b = DecisionTreeRegressor(max_depth=4, max_features=2, random_state=1)
        assert np.array_equal(a.fit(X, y).predict(X), b.fit(X, y).predict(X))

    def test_duplicate_feature_values_handled(self):
        X = np.array([[1.0], [1.0], [1.0], [2.0]])
        y = np.array([0.0, 0.0, 0.0, 1.0])
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert tree.predict(np.array([[2.0]]))[0] == pytest.approx(1.0)


class TestClassifier:
    def test_binary_classification(self):
        X, y = _step_data()
        labels = (y > 0).astype(int)
        clf = DecisionTreeClassifier(max_depth=3).fit(X, labels)
        assert np.mean(clf.predict(X) == labels) > 0.98

    def test_predict_proba_valid(self):
        X, y = _step_data()
        labels = (y > 0).astype(int)
        proba = DecisionTreeClassifier(max_depth=3).fit(X, labels).predict_proba(X)
        assert proba.shape == (len(X), 2)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all() and (proba <= 1).all()

    def test_rejects_non_binary_labels(self):
        X = np.zeros((6, 2))
        with pytest.raises(TrainingError):
            DecisionTreeClassifier().fit(X, np.array([0, 1, 2, 0, 1, 2]))
