"""Configuration, RNG determinism, and the error hierarchy."""

import numpy as np
import pytest

import repro
from repro import errors
from repro.config import (
    DEFAULT_SEED,
    RngFactory,
    SimulationConfig,
    hhmm_to_minutes,
    minutes_to_hhmm,
)
from repro.errors import ConfigError, ReproError


class TestRngFactory:
    def test_same_name_same_stream(self):
        a = RngFactory(1).child("x").random(5)
        b = RngFactory(1).child("x").random(5)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        factory = RngFactory(1)
        a = factory.child("alpha").random(5)
        b = factory.child("beta").random(5)
        assert not np.array_equal(a, b)

    def test_child_is_cached_and_stateful(self):
        factory = RngFactory(1)
        first = factory.child("x")
        assert factory.child("x") is first
        draw_one = first.random()
        draw_two = factory.child("x").random()
        assert draw_one != draw_two  # stream continues, not restarts

    def test_fresh_restarts_stream(self):
        factory = RngFactory(1)
        factory.child("x").random(10)
        fresh = factory.fresh("x").random(3)
        assert np.array_equal(fresh, RngFactory(1).fresh("x").random(3))

    def test_different_seeds_differ(self):
        a = RngFactory(1).child("x").random(5)
        b = RngFactory(2).child("x").random(5)
        assert not np.array_equal(a, b)

    def test_seed_type_validated(self):
        with pytest.raises(ConfigError):
            RngFactory("not-an-int")


class TestTimeFormatting:
    @pytest.mark.parametrize("minutes,expected", [
        (0, "00:00"),
        (51, "00:51"),
        (361, "06:01"),
        (583, "09:43"),
        (7 * 24 * 60, "168:00"),
    ])
    def test_minutes_to_hhmm(self, minutes, expected):
        assert minutes_to_hhmm(minutes) == expected

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            minutes_to_hhmm(-1)

    @pytest.mark.parametrize("bad", ["", "12", "1:99", "-1:00", "x:y", None])
    def test_bad_hhmm_rejected(self, bad):
        with pytest.raises(ConfigError):
            hhmm_to_minutes(bad)


class TestSimulationConfig:
    def test_defaults_match_paper(self):
        config = SimulationConfig()
        assert config.duration_days == 180
        assert config.target_fwb_phishing == 31405
        assert abs(config.twitter_share - 19724 / 31405) < 1e-12
        assert config.stream_interval_minutes == 10

    def test_duration_minutes(self):
        assert SimulationConfig(duration_days=2).duration_minutes == 2 * 24 * 60

    def test_rng_factory_uses_seed(self):
        config = SimulationConfig(seed=99)
        assert config.rng_factory().seed == 99

    def test_scaled_copies_extra(self):
        config = SimulationConfig(extra={"note": "x"})
        scaled = config.scaled(0.5)
        assert scaled.extra == {"note": "x"}
        assert scaled.extra is not config.extra


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, ReproError), name

    def test_specific_parentage(self):
        assert issubclass(errors.DomainTakenError, errors.DNSError)
        assert issubclass(errors.SiteRemovedError, errors.FetchError)

    def test_catchable_as_base(self):
        from repro.simnet.url import parse_url

        with pytest.raises(ReproError):
            parse_url("not a url")


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_public_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_default_seed_constant(self):
        assert DEFAULT_SEED == 20231024
