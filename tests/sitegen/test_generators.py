"""Site generators: templates, benign sites, phishing sites, kits."""

import numpy as np
import pytest

from repro.sitegen import (
    ContentBlock,
    PageSpec,
    PhishingSiteGenerator,
    PhishingVariant,
    TemplateLibrary,
)
from repro.sitegen.phishing import PhishingMixture
from repro.simnet import Web
from repro.simnet.fwb import fwb_by_name
from repro.webdoc import parse_html


@pytest.fixture()
def templates():
    return TemplateLibrary()


class TestTemplates:
    def test_templated_render_contains_banner(self, templates, rng):
        service = fwb_by_name("weebly")
        spec = PageSpec(title="T", blocks=[ContentBlock("heading", text="H")])
        markup = templates.render(service, spec, rng)
        doc = parse_html(markup)
        assert "Powered by Weebly" in markup
        assert doc.title == "T"

    def test_banner_obfuscation(self, templates, rng):
        service = fwb_by_name("weebly")
        spec = PageSpec(title="T", blocks=[], obfuscate_banner=True)
        doc = parse_html(templates.render(service, spec, rng))
        banner = doc.find(predicate=lambda e: "fwb-banner" in e.classes)
        assert banner is not None and banner.is_hidden()

    def test_noindex_meta(self, templates, rng):
        service = fwb_by_name("wix")
        spec = PageSpec(title="T", blocks=[], noindex=True)
        assert parse_html(templates.render(service, spec, rng)).has_noindex()

    def test_bare_render_for_github(self, templates, rng):
        service = fwb_by_name("github_io")
        spec = PageSpec(title="T", blocks=[ContentBlock("paragraph", text="p")])
        markup = templates.render(service, spec, rng)
        assert "fwb-banner" not in markup
        assert "wsite-section" not in markup

    def test_form_block_renders_fields(self, templates, rng):
        spec = PageSpec(
            title="T",
            blocks=[ContentBlock("form", fields=["email", "password", "ssn"])],
        )
        doc = parse_html(templates.render(fwb_by_name("weebly"), spec, rng))
        types = [i.get("type") for i in doc.inputs()]
        assert "password" in types and "email" in types

    def test_same_service_shares_boilerplate(self, templates, rng):
        service = fwb_by_name("weebly")
        a = templates.render(
            service, PageSpec(title="A", blocks=[ContentBlock("paragraph", text="x")]), rng
        )
        b = templates.render(
            service, PageSpec(title="B", blocks=[ContentBlock("paragraph", text="y")]), rng
        )
        assert "wsite-section-wrap" in a and "wsite-section-wrap" in b


class TestBenignGenerator:
    def test_site_metadata(self, web, benign_generator, rng):
        site = benign_generator.create_fwb_site(web.fwb_providers["weebly"], 0, rng)
        assert site.metadata["is_phishing"] is False
        assert site.metadata["brand"] is None
        assert "/" in site.pages and "/about" in site.pages

    def test_archetype_distribution_includes_members(self, web, benign_generator, rng):
        archetypes = {
            benign_generator.create_fwb_site(
                web.fwb_providers["weebly"], 0, rng
            ).metadata["archetype"]
            for _ in range(60)
        }
        assert "members" in archetypes and "business" in archetypes

    def test_self_hosted_benign_has_age(self, web, benign_generator, rng):
        site = benign_generator.create_self_hosted_site(web.self_hosting, 1000, rng)
        record = web.whois.lookup(site.root_url, now=1000)
        assert record.age_days >= 180

    def test_populate_web(self, web, benign_generator, rng):
        sites = benign_generator.populate_web(web, per_fwb=2, now=0, rng=rng)
        assert len(sites) == 2 * 17


class TestPhishingGenerator:
    def test_credential_site_structure(self, web, rng):
        gen = PhishingSiteGenerator()
        provider = web.fwb_providers["weebly"]
        spec = gen.sample_spec(provider.service, rng,
                               variant=PhishingVariant.CREDENTIAL)
        spec.cloaked = False
        site = gen.create_site(provider, 0, rng, spec=spec)
        doc = parse_html(site.pages["/"])
        assert doc.password_inputs() or len(doc.credential_inputs()) >= 2
        assert site.metadata["is_phishing"] is True
        assert site.metadata["has_credential_form"] is True

    def test_two_step_has_button_no_credentials(self, web, rng):
        gen = PhishingSiteGenerator()
        provider = web.fwb_providers["google_sites"]
        spec = gen.sample_spec(
            provider.service, rng, variant=PhishingVariant.TWO_STEP,
            target_url="https://evil.example.xyz/login",
        )
        site = gen.create_site(provider, 0, rng, spec=spec)
        doc = parse_html(site.pages["/"])
        assert not doc.password_inputs()
        hrefs = [a.get("href") for a in doc.links()]
        assert "https://evil.example.xyz/login" in hrefs

    def test_iframe_variant_embeds_external(self, web, rng):
        gen = PhishingSiteGenerator()
        provider = web.fwb_providers["blogspot"]
        spec = gen.sample_spec(
            provider.service, rng, variant=PhishingVariant.IFRAME,
            target_url="https://evil.example.xyz/frame",
        )
        site = gen.create_site(provider, 0, rng, spec=spec)
        doc = parse_html(site.pages["/"])
        assert doc.iframes()[0].get("src") == "https://evil.example.xyz/frame"

    def test_driveby_attaches_malicious_file(self, web, rng):
        gen = PhishingSiteGenerator()
        provider = web.fwb_providers["sharepoint"]
        spec = gen.sample_spec(provider.service, rng,
                               variant=PhishingVariant.DRIVEBY)
        site = gen.create_site(provider, 0, rng, spec=spec)
        assert "/invoice.zip" in site.files
        assert site.files["/invoice.zip"].vt_detections >= 4

    def test_no_credential_service_degrades_to_two_step(self, web, rng):
        gen = PhishingSiteGenerator(mixture=PhishingMixture(cloak_rate=0.0))
        service = web.fwb_providers["sharepoint"].service
        variants = {gen.sample_variant(service, rng) for _ in range(100)}
        assert PhishingVariant.CREDENTIAL not in variants

    def test_mixture_rates_respected(self, web, rng):
        gen = PhishingSiteGenerator(
            mixture=PhishingMixture(noindex_rate=1.0, banner_obfuscation_rate=1.0)
        )
        provider = web.fwb_providers["weebly"]
        site = gen.create_site(provider, 0, rng)
        assert site.metadata["noindex"] is True
        doc = parse_html(site.pages["/"])
        assert doc.has_noindex()

    def test_cloaked_pages_use_benign_names(self, web, rng):
        gen = PhishingSiteGenerator(mixture=PhishingMixture(cloak_rate=1.0))
        provider = web.fwb_providers["weebly"]
        spec = gen.sample_spec(provider.service, rng,
                               variant=PhishingVariant.CREDENTIAL)
        assert spec.cloaked
        site = gen.create_site(provider, 0, rng, spec=spec)
        assert "Member Login" in parse_html(site.pages["/"]).title


class TestKitGenerator:
    def test_kit_site_fresh_domain_and_form(self, web, kit_generator, rng):
        site = kit_generator.create_site(web.self_hosting, now=500, rng=rng)
        record = web.whois.lookup(site.root_url, now=500)
        assert record.age_minutes == 0
        doc = parse_html(site.pages["/"])
        assert doc.password_inputs()
        assert site.metadata["variant"] == "credential"

    def test_https_mix(self, web, kit_generator, rng):
        schemes = [
            kit_generator.create_site(web.self_hosting, now=i, rng=rng).root_url.scheme
            for i in range(60)
        ]
        assert "https" in schemes and "http" in schemes

    def test_create_many(self, web, kit_generator, rng):
        sites = kit_generator.create_many(web.self_hosting, 5, now=0, rng=rng)
        assert len(sites) == 5
        assert len({s.host for s in sites}) == 5
