"""Brand catalogue and name-generation tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sitegen import names
from repro.sitegen.brands import (
    Brand,
    BrandCatalog,
    PAPER_BRAND_COUNT,
    default_brand_catalog,
)


@pytest.fixture(scope="module")
def catalog():
    return default_brand_catalog()


class TestCatalog:
    def test_exactly_109_brands(self, catalog):
        assert len(catalog) == PAPER_BRAND_COUNT

    def test_slugs_unique(self, catalog):
        slugs = [b.slug for b in catalog]
        assert len(set(slugs)) == len(slugs)

    def test_zipf_head_dominates(self, catalog):
        weights = sorted((b.weight for b in catalog), reverse=True)
        assert weights[0] > 10 * weights[40]

    def test_sampling_follows_weights(self, catalog):
        rng = np.random.default_rng(0)
        sampled = catalog.sample_many(rng, 3000)
        counts = {}
        for brand in sampled:
            counts[brand.slug] = counts.get(brand.slug, 0) + 1
        top = max(counts, key=counts.get)
        # The most-sampled brand should be one of the head entries.
        head = [b.slug for b in catalog][:5]
        assert top in head

    def test_by_slug(self, catalog):
        assert catalog.by_slug("paypaul").name == "PayPaul"
        with pytest.raises(ConfigError):
            catalog.by_slug("nonexistent")

    def test_tokens_ascii_and_nongeneric(self, catalog):
        for brand in catalog:
            tokens = brand.tokens()
            assert tokens, brand.slug
            assert all(t.isascii() for t in tokens)
            assert "bank" not in tokens

    def test_name_words_included_in_tokens(self, catalog):
        office = catalog.by_slug("office365")
        assert "office" in office.tokens()

    def test_catalog_validation(self):
        with pytest.raises(ConfigError):
            BrandCatalog([])
        brand = Brand("X", "x", "cat", "x.com", "#fff", weight=1.0)
        with pytest.raises(ConfigError):
            BrandCatalog([brand, brand])  # duplicate slug


class TestNames:
    def test_gibberish_length_and_charset(self, rng):
        for _ in range(50):
            token = names.gibberish(rng)
            assert 8 <= len(token) <= 14
            assert token.isalpha() and token.islower()

    def test_deceptive_name_embeds_brand(self, rng):
        for _ in range(30):
            name = names.deceptive_site_name(rng, ["paypaul"])
            assert "paypaul" in name

    def test_benign_names_look_benign(self, rng):
        for _ in range(30):
            name = names.benign_site_name(rng)
            assert not any(w in name for w in ("login", "verify", "secure"))

    def test_kit_domain_tld_mix(self, rng):
        tlds = [names.kit_domain(rng, ["acme"]).rsplit(".", 1)[1]
                for _ in range(300)]
        cheap = sum(1 for t in tlds if t in names.CHEAP_TLDS)
        assert cheap > 200  # cheap TLDs dominate (§6)
        assert any(t in names.PREMIUM_TLDS for t in tlds)  # but some .com exist

    def test_benign_domain_premium_tld(self, rng):
        for _ in range(20):
            domain = names.benign_domain(rng)
            assert domain.rsplit(".", 1)[1] in names.PREMIUM_TLDS
