"""Seed-robustness regression: the paper's headline shapes must hold on a
campaign run with a *different* seed than every other test/bench uses.

If a future calibration change makes any of these fail, the reproduction
has drifted from the paper — these are the claims EXPERIMENTS.md records.
"""

import numpy as np
import pytest

from repro.analysis import build_table3
from repro.config import SimulationConfig
from repro.sim import CampaignWorld


@pytest.fixture(scope="module")
def alt_seed_run():
    config = SimulationConfig(seed=555, duration_days=3, target_fwb_phishing=300)
    world = CampaignWorld(config, train_samples_per_class=120)
    return world.run()


@pytest.fixture(scope="module")
def table3(alt_seed_run):
    return {row.entity: row for row in build_table3(alt_seed_run.timelines)}


class TestHeadlineShapes:
    def test_every_entity_prefers_self_hosted(self, table3):
        for entity, row in table3.items():
            assert row.self_hosted.coverage > row.fwb.coverage, entity

    def test_gsb_dominates_self_hosted_detection(self, table3):
        gsb = table3["gsb"]
        assert gsb.self_hosted.coverage > 0.6
        assert gsb.self_hosted.coverage > 2.5 * gsb.fwb.coverage

    def test_phishtank_weakest_on_fwb(self, table3):
        phishtank = table3["phishtank"].fwb.coverage
        for other in ("openphish", "gsb", "ecrimex"):
            assert phishtank <= table3[other].fwb.coverage + 0.02

    def test_ecrimex_broadest_fwb_blocklist(self, table3):
        ecrimex = table3["ecrimex"].fwb.coverage
        for other in ("phishtank", "openphish", "gsb"):
            assert ecrimex >= table3[other].fwb.coverage - 0.02

    def test_blocklist_response_time_gap(self, table3):
        for entity in ("gsb", "ecrimex"):
            row = table3[entity]
            assert row.fwb.median_minutes > row.self_hosted.median_minutes

    def test_vt_detection_gap(self, alt_seed_run):
        fwb = np.median([t.vt_final() for t in alt_seed_run.fwb_timelines])
        self_hosted = np.median(
            [t.vt_final() for t in alt_seed_run.self_hosted_timelines]
        )
        assert self_hosted >= fwb + 3

    def test_fwb_sites_persist(self, alt_seed_run):
        def removal_rate(timelines):
            return np.mean([t.site_removal_offset is not None for t in timelines])

        assert removal_rate(alt_seed_run.self_hosted_timelines) > removal_rate(
            alt_seed_run.fwb_timelines
        ) + 0.2

    def test_responsive_services_remove_most(self, alt_seed_run):
        from repro.analysis import build_table4

        table4 = {row.fwb: row for row in build_table4(alt_seed_run.timelines)}
        responsive = [
            table4[name].entities["domain"].coverage
            for name in ("weebly", "000webhost", "wix")
            if name in table4
        ]
        laggards = [
            table4[name].entities["domain"].coverage
            for name in ("google_sites", "sharepoint", "wordpress")
            if name in table4 and table4[name].n_urls >= 5
        ]
        assert responsive and min(responsive) > 0.3
        if laggards:
            assert max(laggards) < min(responsive)
