"""Multi-hop two-step chains (the §5.5 escalation)."""

import numpy as np
import pytest

from repro.core.evasive import EvasiveVector, classify_evasive
from repro.sim import AttackerModel
from repro.simnet import Browser, Web
from repro.simnet.url import parse_url
from repro.social import FacebookPlatform, TwitterPlatform


@pytest.fixture()
def deep_world(rng):
    web = Web()
    platforms = {
        "twitter": TwitterPlatform(rng),
        "facebook": FacebookPlatform(rng),
    }
    attacker = AttackerModel(
        web, platforms, rng, fwb_target_share=1.0, deep_chain_rate=1.0
    )
    return web, attacker


def _find_two_step(attacker, n=200):
    for i in range(n):
        attack = attacker.launch_fwb_attack(now=10 * i)
        if attack.site.metadata["variant"] == "two_step":
            return attack
    pytest.fail("no two-step attack generated")


class TestDeepChains:
    def test_chain_reaches_credentials_within_three_hops(self, deep_world):
        web, attacker = deep_world
        attack = _find_two_step(attacker)
        browser = Browser(web)
        chain = browser.follow_workflow(attack.site.root_url, now=10 ** 6,
                                        max_hops=4)
        assert len(chain) >= 2
        final = chain[-1]
        assert final.document.password_inputs() or final.document.credential_inputs()

    def test_relay_page_is_marked_linked_only(self, deep_world):
        web, attacker = deep_world
        attack = _find_two_step(attacker)
        relay_url = parse_url(attack.site.metadata["target_url"])
        relay = web.site_for(relay_url)
        assert relay is not None
        assert relay.metadata.get("linked_only") is True
        assert relay.metadata.get("chain_depth") == 1

    def test_entry_page_still_classified_two_step(self, deep_world):
        web, attacker = deep_world
        attack = _find_two_step(attacker)
        browser = Browser(web)
        snapshot = browser.snapshot(attack.site.root_url, now=10 ** 6)
        assert classify_evasive(snapshot, browser, 10 ** 6) is EvasiveVector.TWO_STEP

    def test_phishintention_survives_deep_chains(self, deep_world, ground_truth):
        """The dynamic analyzer follows the relay and finds the credential
        page — the capability the paper credits for its top recall."""
        from repro.baselines import PhishIntentionDetector
        from repro.core.preprocess import Preprocessor

        web, attacker = deep_world
        attack = _find_two_step(attacker)
        detector = PhishIntentionDetector(Browser(web), random_state=2,
                                          max_hops=4)
        detector.fit_pages(ground_truth.pages, ground_truth.labels)
        page = Preprocessor(web).process(attack.site.root_url, now=10 ** 6)
        assert detector.predict_page(page) == 1

    def test_depth_bounded(self, deep_world):
        web, attacker = deep_world
        # Even at deep_chain_rate=1.0 recursion stops after one relay.
        for _ in range(40):
            attacker.launch_fwb_attack(now=int(attacker.rng.integers(10 ** 6)))
        depths = [
            site.metadata.get("chain_depth", 0)
            for site in web.iter_sites()
            if site.metadata.get("linked_only")
        ]
        assert depths and max(depths) <= 2
