"""§2 historical pipeline: SLD filtering, VT labelling, D1 construction."""

import pytest

from repro.sim.historical import (
    D1Dataset,
    DYNDNS_PROVIDERS,
    HistoricalPipeline,
    VT_PHISHING_THRESHOLD,
)


@pytest.fixture(scope="module")
def pipeline_run():
    pipeline = HistoricalPipeline(seed=23)
    dataset = pipeline.run(scale=0.012)
    return pipeline, dataset


class TestPipeline:
    def test_threshold_matches_literature(self):
        assert VT_PHISHING_THRESHOLD == 2

    def test_apex_urls_dropped_by_sld_filter(self, pipeline_run):
        _pipeline, dataset = pipeline_run
        assert dataset.dropped_no_sld > 0
        # Nothing without a subdomain survives into D1.
        assert all(s.url.has_subdomain for s in dataset.fwb_phishing)

    def test_dyndns_separated_from_fwb(self, pipeline_run):
        """DuckDNS/Netlify-style hosts are recognised but set aside (§2)."""
        _pipeline, dataset = pipeline_run
        assert dataset.dyndns_phishing
        dyndns_domains = {domain for _name, domain in DYNDNS_PROVIDERS}
        for sample in dataset.dyndns_phishing:
            assert sample.url.registered_domain in dyndns_domains
        for sample in dataset.fwb_phishing:
            assert sample.url.registered_domain not in dyndns_domains

    def test_d1_is_mostly_true_phishing(self, pipeline_run):
        """VT >= 2 labelling yields a high-purity dataset (the coders later
        confirm ~93% of a sample, §3)."""
        pipeline, dataset = pipeline_run
        phishing = benign = 0
        for sample in dataset.fwb_phishing:
            site = pipeline.web.site_for(sample.url)
            if site is not None and site.metadata.get("is_phishing"):
                phishing += 1
            else:
                benign += 1
        assert phishing / max(phishing + benign, 1) > 0.8

    def test_twitter_dominates_platform_split(self, pipeline_run):
        _pipeline, dataset = pipeline_run
        assert dataset.n_twitter > dataset.n_facebook

    def test_quarterly_counts_rise(self, pipeline_run):
        _pipeline, dataset = pipeline_run
        counts = dataset.quarterly_counts()
        early = sum(v for (q, _p), v in counts.items() if q <= 2)
        late = sum(v for (q, _p), v in counts.items() if q >= 8)
        assert late > early

    def test_fwb_mix_shifts_to_new_services(self, pipeline_run):
        _pipeline, dataset = pipeline_run
        mix = dataset.fwb_mix_by_quarter()
        first = mix[min(mix)]
        last = mix[max(mix)]
        assert set(last) - set(first), "new SLDs appear in later quarters"

    def test_benign_mass_filtered(self, pipeline_run):
        _pipeline, dataset = pipeline_run
        assert dataset.benign_or_undetected > 0


class TestD1Dataset:
    def test_empty_dataset_properties(self):
        dataset = D1Dataset()
        assert dataset.n_twitter == 0
        assert dataset.quarterly_counts() == {}
        assert dataset.fwb_mix_by_quarter() == {}
