"""CampaignWorld internals: arrival rates, housekeeping, bookkeeping."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.sim import CampaignWorld


@pytest.fixture(scope="module")
def world_and_result(campaign_world_and_result):
    return campaign_world_and_result


class TestArrivalRate:
    def test_rate_matches_target(self):
        config = SimulationConfig(seed=1, duration_days=10,
                                  target_fwb_phishing=1440)
        world = CampaignWorld(config, train_samples_per_class=10)
        # 10 days = 1440 ticks of 10 minutes -> exactly 1 arrival per tick.
        assert world._arrivals_per_tick() == pytest.approx(1.0)

    def test_poisson_totals_near_target(self, world_and_result):
        world, result = world_and_result
        target = world.config.target_fwb_phishing
        fwb_launched = sum(1 for a in world.attacker.launched if a.is_fwb)
        assert 0.5 * target < fwb_launched < 1.8 * target


class TestBookkeeping:
    def test_truth_covers_all_stream_urls(self, world_and_result):
        world, result = world_and_result
        for timeline in result.timelines:
            assert timeline.url in world.truth

    def test_benign_sites_recorded_as_benign(self, world_and_result):
        world, _result = world_and_result
        benign_urls = [str(site.root_url) for site, _pid in world.benign_users.posted]
        assert benign_urls
        assert all(world.truth[u] is False for u in benign_urls)

    def test_housekeeping_idempotent(self, world_and_result):
        world, _result = world_and_result
        horizon = world.config.duration_minutes + world.config.takedown_window_minutes
        removed_before = sum(
            1 for site in world.web.iter_sites() if site.removed_at is not None
        )
        world._housekeeping(horizon + 10_000)
        removed_after = sum(
            1 for site in world.web.iter_sites() if site.removed_at is not None
        )
        assert removed_after == removed_before

    def test_ground_truth_trained_once(self, world_and_result):
        world, result = world_and_result
        assert world._ground_truth is not None
        assert result.ground_truth_size == len(world._ground_truth)

    def test_linked_only_sites_not_tracked(self, world_and_result):
        """Two-step targets exist on the web but never enter the dataset
        directly (the paper: the linked page is not shared on social)."""
        world, result = world_and_result
        tracked = {t.url for t in result.timelines}
        for site in world.web.iter_sites():
            if site.metadata.get("linked_only"):
                assert str(site.root_url) not in tracked
